//! The intuitive comparators of the paper's Section 5.3.
//!
//! > "The first deployment is a simple star type, where one node acts as an
//! > agent and all the rest are directly connected to the agent node. In
//! > the second deployment, we deployed a balanced graph, one top agent
//! > connected to 14 agents and each agent connected to 14 servers…"

use super::{Planner, PlannerError};
use adept_hierarchy::builder;
use adept_hierarchy::DeploymentPlan;
use adept_platform::Platform;
use adept_workload::{ClientDemand, ServiceSpec};

/// Star deployment: the most powerful node is the agent, every other node
/// is a server attached to it.
#[derive(Debug, Clone, Copy, Default)]
pub struct StarPlanner;

impl Planner for StarPlanner {
    fn name(&self) -> &str {
        "star"
    }

    fn plan(
        &self,
        platform: &Platform,
        _service: &ServiceSpec,
        _demand: ClientDemand,
    ) -> Result<DeploymentPlan, PlannerError> {
        if platform.node_count() < 2 {
            return Err(PlannerError::NotEnoughNodes {
                needed: 2,
                available: platform.node_count(),
            });
        }
        Ok(builder::star(&platform.ids_by_power_desc()))
    }
}

/// Balanced two-level deployment: the most powerful node as root, the next
/// `mid_agents` nodes as middle agents, the rest as servers distributed
/// evenly. The paper's Figure 6/7 comparator uses 14 middle agents on 200
/// nodes.
#[derive(Debug, Clone, Copy)]
pub struct BalancedPlanner {
    /// Number of middle agents.
    pub mid_agents: usize,
}

impl BalancedPlanner {
    /// The paper's configuration (14 middle agents).
    pub fn paper() -> Self {
        Self { mid_agents: 14 }
    }
}

impl Default for BalancedPlanner {
    fn default() -> Self {
        Self::paper()
    }
}

impl Planner for BalancedPlanner {
    fn name(&self) -> &str {
        "balanced"
    }

    fn plan(
        &self,
        platform: &Platform,
        _service: &ServiceSpec,
        _demand: ClientDemand,
    ) -> Result<DeploymentPlan, PlannerError> {
        if self.mid_agents == 0 {
            return Err(PlannerError::InvalidConfig(
                "balanced planner needs at least one middle agent".into(),
            ));
        }
        let needed = 1 + 2 * self.mid_agents;
        if platform.node_count() < needed {
            return Err(PlannerError::NotEnoughNodes {
                needed,
                available: platform.node_count(),
            });
        }
        Ok(builder::balanced_two_level(
            &platform.ids_by_power_desc(),
            self.mid_agents,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adept_platform::generator::{lyon_cluster, uniform_random_cluster};
    use adept_platform::MflopRate;
    use adept_workload::Dgemm;

    #[test]
    fn star_planner_uses_strongest_as_agent() {
        let platform = uniform_random_cluster("u", 10, MflopRate(100.0), MflopRate(900.0), 5);
        let plan = StarPlanner
            .plan(
                &platform,
                &Dgemm::new(100).service(),
                ClientDemand::Unbounded,
            )
            .unwrap();
        let root_power = platform.power(plan.node(plan.root()));
        for n in platform.nodes() {
            assert!(n.power.value() <= root_power.value() + 1e-9);
        }
        assert_eq!(plan.server_count(), 9);
    }

    #[test]
    fn star_planner_needs_two_nodes() {
        let platform = lyon_cluster(1);
        assert_eq!(
            StarPlanner
                .plan(
                    &platform,
                    &Dgemm::new(10).service(),
                    ClientDemand::Unbounded
                )
                .unwrap_err(),
            PlannerError::NotEnoughNodes {
                needed: 2,
                available: 1
            }
        );
    }

    #[test]
    fn balanced_planner_paper_shape_on_200_nodes() {
        let platform = lyon_cluster(200);
        let plan = BalancedPlanner::paper()
            .plan(
                &platform,
                &Dgemm::new(310).service(),
                ClientDemand::Unbounded,
            )
            .unwrap();
        assert_eq!(plan.agent_count(), 15);
        assert_eq!(plan.server_count(), 185);
        assert_eq!(plan.depth(), 3);
        assert_eq!(plan.degree(plan.root()), 14);
    }

    #[test]
    fn balanced_planner_rejects_small_platforms() {
        let platform = lyon_cluster(10);
        assert!(matches!(
            BalancedPlanner::paper().plan(
                &platform,
                &Dgemm::new(10).service(),
                ClientDemand::Unbounded
            ),
            Err(PlannerError::NotEnoughNodes { needed: 29, .. })
        ));
    }

    #[test]
    fn balanced_planner_rejects_zero_agents() {
        let platform = lyon_cluster(10);
        assert!(matches!(
            BalancedPlanner { mid_agents: 0 }.plan(
                &platform,
                &Dgemm::new(10).service(),
                ClientDemand::Unbounded
            ),
            Err(PlannerError::InvalidConfig(_))
        ));
    }

    #[test]
    fn planner_names() {
        assert_eq!(StarPlanner.name(), "star");
        assert_eq!(BalancedPlanner::paper().name(), "balanced");
    }
}
