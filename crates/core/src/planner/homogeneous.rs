//! The homogeneous-cluster optimal of the authors' prior work \[10\]
//! (Chouhan, Dail, Caron, Vivien, *Automatic middleware deployment planning
//! on clusters*, IJHPCA 2006).
//!
//! \[10\] proves that on a homogeneous cluster a **complete spanning d-ary
//! tree** maximizes steady-state throughput, and derives the optimal degree
//! from the platform model. We reproduce it by sweeping the degree and
//! evaluating each CSD tree under the Section 3 model — exactly the
//! comparison Table 4 makes ("Homo. Deg." column).
//!
//! On a heterogeneous platform the planner still runs (nodes are sorted
//! most-powerful-first so the strongest nodes become interior agents), but
//! its optimality guarantee only holds for homogeneous clusters.

use super::{resolve_params, Planner, PlannerError};
use crate::model::ModelParams;
use adept_hierarchy::builder::csd_tree;
use adept_hierarchy::DeploymentPlan;
use adept_platform::Platform;
use adept_workload::{ClientDemand, ServiceSpec};

/// Planner producing the best complete spanning d-ary tree.
#[derive(Debug, Clone, Copy, Default)]
pub struct HomogeneousCsdPlanner {
    /// Optional model-parameter override (defaults to the platform's
    /// network and the Lyon 2008 calibration).
    pub params: Option<ModelParams>,
}

impl HomogeneousCsdPlanner {
    /// The degree the model considers optimal for this platform/service,
    /// together with its predicted throughput. Ties prefer the smaller
    /// degree — with equal throughput, the shallower fan-out uses fewer
    /// agent levels ("the preferred deployment is the one using the least
    /// resources", Section 4: a tie at lower degree never uses more nodes).
    ///
    /// # Errors
    /// [`PlannerError::NotEnoughNodes`] below two nodes.
    pub fn optimal_degree(
        &self,
        platform: &Platform,
        service: &ServiceSpec,
    ) -> Result<(usize, f64), PlannerError> {
        let n = platform.node_count();
        if n < 2 {
            return Err(PlannerError::NotEnoughNodes {
                needed: 2,
                available: n,
            });
        }
        let params = resolve_params(self.params, platform);
        let nodes = platform.ids_by_power_desc();
        let mut best = (1usize, f64::NEG_INFINITY);
        for d in 1..n {
            let plan = csd_tree(&nodes, d);
            let report = params.evaluate(platform, &plan, service);
            if report.rho > best.1 + 1e-12 {
                best = (d, report.rho);
            }
        }
        Ok(best)
    }
}

impl Planner for HomogeneousCsdPlanner {
    fn name(&self) -> &str {
        "homogeneous-csd"
    }

    fn plan(
        &self,
        platform: &Platform,
        service: &ServiceSpec,
        _demand: ClientDemand,
    ) -> Result<DeploymentPlan, PlannerError> {
        let (degree, _) = self.optimal_degree(platform, service)?;
        Ok(csd_tree(&platform.ids_by_power_desc(), degree))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adept_platform::generator::lyon_cluster;
    use adept_workload::Dgemm;

    #[test]
    fn dgemm10_on_21_nodes_gives_degree_1() {
        // Paper Table 4 row 1: tiny requests are agent-limited; one agent
        // and one server are optimal.
        let platform = lyon_cluster(21);
        let planner = HomogeneousCsdPlanner::default();
        let (d, _) = planner
            .optimal_degree(&platform, &Dgemm::new(10).service())
            .unwrap();
        assert_eq!(d, 1);
        let plan = planner
            .plan(
                &platform,
                &Dgemm::new(10).service(),
                ClientDemand::Unbounded,
            )
            .unwrap();
        assert_eq!(plan.len(), 2);
    }

    #[test]
    fn dgemm1000_on_21_nodes_gives_star() {
        // Paper Table 4 row 4: huge requests are server-limited; the star
        // (degree 20) wins.
        let platform = lyon_cluster(21);
        let (d, _) = HomogeneousCsdPlanner::default()
            .optimal_degree(&platform, &Dgemm::new(1000).service())
            .unwrap();
        assert_eq!(d, 20);
    }

    #[test]
    fn dgemm100_on_25_nodes_gives_small_degree() {
        // Paper Table 4 row 2 reports degree 2.
        let platform = lyon_cluster(25);
        let (d, _) = HomogeneousCsdPlanner::default()
            .optimal_degree(&platform, &Dgemm::new(100).service())
            .unwrap();
        assert_eq!(d, 2, "intermediate regime favors a deep low-degree tree");
    }

    #[test]
    fn dgemm310_on_45_nodes_gives_intermediate_degree() {
        // Paper Table 4 row 3 reports an intermediate degree (22 for the
        // homogeneous model). The exact value depends on calibration; the
        // shape requirement is: strictly between 2 and the star.
        let platform = lyon_cluster(45);
        let (d, _) = HomogeneousCsdPlanner::default()
            .optimal_degree(&platform, &Dgemm::new(310).service())
            .unwrap();
        assert!(d > 2 && d < 44, "expected intermediate degree, got {d}");
    }

    #[test]
    fn too_small_platform_errors() {
        let platform = lyon_cluster(1);
        assert!(HomogeneousCsdPlanner::default()
            .optimal_degree(&platform, &Dgemm::new(10).service())
            .is_err());
    }
}
