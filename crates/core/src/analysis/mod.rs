//! Throughput reports and bottleneck identification.
//!
//! The paper's Eq. 16 takes a three-way minimum; knowing *which* term binds
//! is what drives both the heuristic (grow servers vs. stop) and the
//! iterative improvement of the authors' earlier work \[7\] ("identify the
//! primary bottleneck, and remove the bottleneck by adding resources in the
//! appropriate area of the system").

use adept_hierarchy::Slot;
use adept_platform::NodeId;
use std::fmt;

pub mod sensitivity;

pub use sensitivity::{sensitivities, Sensitivity, SensitivityReport};

/// The element limiting a deployment's throughput.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Bottleneck {
    /// An agent's scheduling cycle binds (second term of Eq. 14): the
    /// deployment is **agent-limited**, as in the paper's DGEMM 10
    /// experiments (Figures 2–3).
    AgentSched {
        /// Plan slot of the limiting agent.
        slot: Slot,
        /// Platform node of the limiting agent.
        node: NodeId,
    },
    /// A server's prediction cycle binds (first term of Eq. 14). With the
    /// paper's calibration this never happens (predictions are cheap), but
    /// the model supports it.
    ServerPrediction {
        /// Plan slot of the limiting server.
        slot: Slot,
        /// Platform node of the limiting server.
        node: NodeId,
    },
    /// The collective service capacity binds (Eq. 15): the deployment is
    /// **server-limited**, as in the paper's DGEMM 200/1000 experiments
    /// (Figures 4–5, 7).
    ServiceCapacity,
}

impl fmt::Display for Bottleneck {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Bottleneck::AgentSched { slot, node } => {
                write!(f, "agent-limited (agent {slot} on {node})")
            }
            Bottleneck::ServerPrediction { slot, node } => {
                write!(f, "prediction-limited (server {slot} on {node})")
            }
            Bottleneck::ServiceCapacity => write!(f, "server-limited (service capacity)"),
        }
    }
}

/// Model evaluation of one deployment (Eq. 13–16).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThroughputReport {
    /// Completed-request throughput `ρ = min(ρ_sched, ρ_service)` (Eq. 16).
    pub rho: f64,
    /// Scheduling throughput `ρ_sched` (Eq. 14).
    pub rho_sched: f64,
    /// Service throughput `ρ_service` (Eq. 15).
    pub rho_service: f64,
    /// The binding element.
    pub bottleneck: Bottleneck,
}

impl ThroughputReport {
    /// True when the deployment is limited by scheduling (agent or
    /// prediction), i.e. adding servers will not help.
    pub fn is_sched_limited(&self) -> bool {
        !matches!(self.bottleneck, Bottleneck::ServiceCapacity)
    }
}

impl fmt::Display for ThroughputReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ρ = {:.2} req/s (sched {:.2}, service {:.2}; {})",
            self.rho, self.rho_sched, self.rho_service, self.bottleneck
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let r = ThroughputReport {
            rho: 100.0,
            rho_sched: 100.0,
            rho_service: 250.0,
            bottleneck: Bottleneck::AgentSched {
                slot: Slot(0),
                node: NodeId(3),
            },
        };
        let s = r.to_string();
        assert!(s.contains("100.00"));
        assert!(s.contains("agent-limited"));
        assert!(s.contains("n3"));
        assert!(r.is_sched_limited());
    }

    #[test]
    fn service_capacity_is_not_sched_limited() {
        let r = ThroughputReport {
            rho: 10.0,
            rho_sched: 50.0,
            rho_service: 10.0,
            bottleneck: Bottleneck::ServiceCapacity,
        };
        assert!(!r.is_sched_limited());
        assert!(r.to_string().contains("server-limited"));
    }
}
