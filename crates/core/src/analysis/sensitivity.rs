//! Sensitivity analysis: how much does the modelled throughput move when
//! one calibration parameter moves?
//!
//! Deployment planning is only as good as its calibration (the paper
//! spent a whole section measuring Table 3). This module quantifies the
//! exposure: for each scalar input it computes the **elasticity**
//! `(dρ/ρ)/(dp/p)` by central finite differences, telling the operator
//! which parameters are worth re-measuring carefully and which barely
//! matter for a given deployment.

use crate::model::ModelParams;
use adept_hierarchy::DeploymentPlan;
use adept_platform::{Mbit, MbitRate, Mflop, Platform};
use adept_workload::ServiceSpec;
use std::fmt;

/// One parameter's sensitivity.
#[derive(Debug, Clone, PartialEq)]
pub struct Sensitivity {
    /// Parameter name (as in the paper's Table 3).
    pub parameter: &'static str,
    /// Elasticity of ρ with respect to the parameter: +1 means "1 %
    /// more of this gives 1 % more throughput"; 0 means insensitive.
    pub elasticity: f64,
}

/// Sensitivity report over all calibration scalars plus bandwidth.
#[derive(Debug, Clone, PartialEq)]
pub struct SensitivityReport {
    /// One entry per parameter, sorted by descending |elasticity|.
    pub entries: Vec<Sensitivity>,
}

impl SensitivityReport {
    /// The most influential parameter.
    pub fn dominant(&self) -> &Sensitivity {
        &self.entries[0]
    }
}

impl fmt::Display for SensitivityReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for e in &self.entries {
            writeln!(f, "{:>6}: elasticity {:+.3}", e.parameter, e.elasticity)?;
        }
        Ok(())
    }
}

/// Relative step for the central differences.
const STEP: f64 = 1e-3;

fn elasticity<F>(base_rho: f64, base_value: f64, mut eval_with: F) -> f64
where
    F: FnMut(f64) -> f64,
{
    if base_value == 0.0 || base_rho == 0.0 {
        return 0.0;
    }
    let up = eval_with(base_value * (1.0 + STEP));
    let down = eval_with(base_value * (1.0 - STEP));
    ((up - down) / base_rho) / (2.0 * STEP)
}

/// Computes the sensitivity of a deployment's modelled ρ (Eq. 16) to each
/// calibration parameter and to the bandwidth `B`.
pub fn sensitivities(
    params: &ModelParams,
    platform: &Platform,
    plan: &DeploymentPlan,
    service: &ServiceSpec,
) -> SensitivityReport {
    let base = params.evaluate(platform, plan, service).rho;
    let rho_with = |p: ModelParams| p.evaluate(platform, plan, service).rho;

    let mut entries = vec![
        Sensitivity {
            parameter: "Wreq",
            elasticity: elasticity(base, params.calibration.agent.wreq.value(), |v| {
                let mut p = *params;
                p.calibration.agent.wreq = Mflop(v);
                rho_with(p)
            }),
        },
        Sensitivity {
            parameter: "Wfix",
            elasticity: elasticity(base, params.calibration.agent.wfix.value(), |v| {
                let mut p = *params;
                p.calibration.agent.wfix = Mflop(v);
                rho_with(p)
            }),
        },
        Sensitivity {
            parameter: "Wsel",
            elasticity: elasticity(base, params.calibration.agent.wsel.value(), |v| {
                let mut p = *params;
                p.calibration.agent.wsel = Mflop(v);
                rho_with(p)
            }),
        },
        Sensitivity {
            parameter: "Wpre",
            elasticity: elasticity(base, params.calibration.server.wpre.value(), |v| {
                let mut p = *params;
                p.calibration.server.wpre = Mflop(v);
                rho_with(p)
            }),
        },
        Sensitivity {
            parameter: "Sreq_a",
            elasticity: elasticity(base, params.calibration.agent.sreq.value(), |v| {
                let mut p = *params;
                p.calibration.agent.sreq = Mbit(v);
                rho_with(p)
            }),
        },
        Sensitivity {
            parameter: "Srep_a",
            elasticity: elasticity(base, params.calibration.agent.srep.value(), |v| {
                let mut p = *params;
                p.calibration.agent.srep = Mbit(v);
                rho_with(p)
            }),
        },
        Sensitivity {
            parameter: "B",
            elasticity: elasticity(base, params.bandwidth.value(), |v| {
                let mut p = *params;
                p.bandwidth = MbitRate(v);
                rho_with(p)
            }),
        },
        Sensitivity {
            parameter: "Wapp",
            elasticity: elasticity(base, service.wapp.value(), |v| {
                let svc = ServiceSpec::new(service.name.clone(), Mflop(v));
                params.evaluate(platform, plan, &svc).rho
            }),
        },
    ];
    entries.sort_by(|a, b| {
        b.elasticity
            .abs()
            .partial_cmp(&a.elasticity.abs())
            // audit: allow(unwrap, "elasticities are ratios of finite model
            // rates; input validation keeps them finite")
            .expect("finite elasticities")
    });
    SensitivityReport { entries }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adept_hierarchy::builder::star;
    use adept_platform::generator::lyon_cluster;
    use adept_platform::NodeId;
    use adept_workload::Dgemm;

    fn ids(n: u32) -> Vec<NodeId> {
        (0..n).map(NodeId).collect()
    }

    fn report(n: u32, dgemm: u32) -> SensitivityReport {
        let platform = lyon_cluster(n as usize);
        let plan = star(&ids(n));
        let svc = Dgemm::new(dgemm).service();
        sensitivities(
            &ModelParams::from_platform(&platform),
            &platform,
            &plan,
            &svc,
        )
    }

    fn entry<'r>(r: &'r SensitivityReport, name: &str) -> &'r Sensitivity {
        r.entries
            .iter()
            .find(|e| e.parameter == name)
            .expect("parameter present")
    }

    #[test]
    fn agent_limited_deployment_is_wreq_sensitive() {
        // DGEMM 10 star: agent-bound; Wreq dominates the agent cycle.
        let r = report(3, 10);
        assert!(entry(&r, "Wreq").elasticity < -0.5, "{r}");
        // Wapp is irrelevant when service capacity is not binding.
        assert_eq!(entry(&r, "Wapp").elasticity, 0.0, "{r}");
        assert_eq!(r.dominant().parameter, "Wreq");
    }

    #[test]
    fn server_limited_deployment_is_wapp_sensitive() {
        // DGEMM 1000 star: service-bound; Wapp is everything.
        let r = report(3, 1000);
        assert!(entry(&r, "Wapp").elasticity < -0.9, "{r}");
        assert_eq!(entry(&r, "Wreq").elasticity, 0.0, "{r}");
    }

    #[test]
    fn elasticity_signs_are_physical() {
        let r = report(5, 310);
        // Cost parameters can only reduce throughput; bandwidth can only
        // raise it.
        for name in ["Wreq", "Wfix", "Wsel", "Wpre", "Sreq_a", "Srep_a", "Wapp"] {
            assert!(
                entry(&r, name).elasticity <= 1e-9,
                "{name} must not have positive elasticity\n{r}"
            );
        }
        assert!(entry(&r, "B").elasticity >= 0.0, "{r}");
    }

    #[test]
    fn report_sorted_by_magnitude_and_displays() {
        let r = report(4, 310);
        for w in r.entries.windows(2) {
            assert!(w[0].elasticity.abs() >= w[1].elasticity.abs());
        }
        let text = r.to_string();
        assert!(text.contains("elasticity"));
    }
}
