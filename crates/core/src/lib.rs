//! # adept-core
//!
//! The paper's primary contribution, as a library:
//!
//! 1. the **steady-state throughput model** of a hierarchical NES
//!    middleware deployment (paper Section 3, Equations 1–16) — module
//!    [`model`];
//! 2. the **deployment planners** (paper Section 4, Algorithm 1, plus the
//!    baselines the evaluation compares against) — module [`planner`];
//! 3. **bottleneck analysis** of a deployment under the model — module
//!    [`analysis`].
//!
//! ## The problem
//!
//! Given heterogeneous nodes (power `w_i` MFlop/s) with homogeneous links
//! (bandwidth `B` Mb/s), arrange a subset into a hierarchy of agents and
//! servers maximizing the steady-state rate `ρ` of *completed* requests —
//! requests that finish both the scheduling phase (down and up the agent
//! tree) and the service phase (application execution on the selected
//! server):
//!
//! ```text
//! ρ = min(ρ_sched, ρ_service)                      (Eq. 16)
//! ```
//!
//! ## Quick example
//!
//! ```
//! use adept_core::model::ModelParams;
//! use adept_core::planner::{HeuristicPlanner, Planner};
//! use adept_platform::generator::lyon_cluster;
//! use adept_workload::{ClientDemand, Dgemm};
//!
//! let platform = lyon_cluster(21);
//! let service = Dgemm::new(310).service();
//! let planner = HeuristicPlanner::default();
//! let plan = planner
//!     .plan(&platform, &service, ClientDemand::Unbounded)
//!     .expect("21 nodes are plenty");
//! let report = ModelParams::from_platform(&platform)
//!     .evaluate(&platform, &plan, &service);
//! assert!(report.rho > 0.0);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod analysis;
pub mod model;
pub mod planner;

pub use analysis::{Bottleneck, ThroughputReport};
pub use model::ModelParams;
pub use planner::{Planner, PlannerError};
