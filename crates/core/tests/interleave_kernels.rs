//! Exhaustive model checks (via the vendored `interleave` checker) of
//! the two lock-free kernels the parallel sweeps rely on:
//!
//! 1. the shared-incumbent protocol — `f64` objectives mapped through
//!    the order-preserving `ordered_bits` into a single `AtomicU64`
//!    advanced with `fetch_max` (`sweep_mix.rs`, and the per-`k` sweep
//!    in `sweep.rs`), and
//! 2. the `fetch_add` work-queue claim counter handing grid indices to
//!    workers (`sweep.rs` `next.fetch_add(1)` / `next_k.fetch_add(1)`,
//!    `sweep_mix.rs` `next_i`).
//!
//! Each positive test explores *every* interleaving (and every weak-
//! memory-legal load result) of a small instance of the kernel; a
//! companion negative test replaces the RMW with the tempting broken
//! variant and asserts the checker refutes it, so we know the harness
//! has the power to see the bug class the kernel avoids.
//!
//! Models are deliberately tiny (2 threads, 2-3 operations each):
//! state-space growth is factorial and the checker runs real OS
//! threads under a token scheduler, so small models keep the suite
//! fast while still covering every ordering of the primitive pair
//! whose correctness is in question.

use interleave::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use interleave::{model, thread};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

/// Runs `f` under the checker expecting it to FAIL; returns the panic
/// message of the refuting schedule.
fn expect_caught(f: impl Fn() + Send + Sync + 'static) -> String {
    match catch_unwind(AssertUnwindSafe(|| model(f))) {
        Ok(report) => panic!(
            "expected the model check to catch a bug, but {} schedules all passed",
            report.schedules
        ),
        Err(payload) => {
            if let Some(s) = payload.downcast_ref::<String>() {
                s.clone()
            } else if let Some(s) = payload.downcast_ref::<&str>() {
                (*s).to_string()
            } else {
                String::from("(non-string panic)")
            }
        }
    }
}

/// Mirror of `sweep_mix::ordered_bits`: order-preserving `f64 → u64`
/// (sign-magnitude to biased), so integer `max` is float `max`.
fn ordered_bits(x: f64) -> u64 {
    let b = x.to_bits();
    if b >> 63 == 1 {
        !b
    } else {
        b | (1 << 63)
    }
}

fn from_ordered_bits(b: u64) -> f64 {
    f64::from_bits(if b >> 63 == 1 { b & !(1 << 63) } else { !b })
}

/// The incumbent kernel as written: each worker publishes its local
/// best with `fetch_max(ordered_bits(obj), Relaxed)`. Across every
/// interleaving the final incumbent is the true maximum — no update is
/// ever lost, even at `Relaxed`, because `fetch_max` is a read-modify-
/// write and C11 RMWs always operate on the latest value in
/// modification order.
#[test]
fn incumbent_fetch_max_never_loses_an_update() {
    // Negative objectives: makespans are minimized as -cost upstream,
    // so the sign-handling branch of ordered_bits is the one that
    // matters.
    let objs = [-3.5_f64, -1.25, -2.0];
    let report = model(move || {
        let shared = Arc::new(AtomicU64::new(ordered_bits(objs[0])));
        let handles: Vec<_> = objs[1..]
            .iter()
            .map(|&obj| {
                let shared = Arc::clone(&shared);
                thread::spawn(move || {
                    shared.fetch_max(ordered_bits(obj), Ordering::Relaxed);
                })
            })
            .collect();
        for h in handles {
            h.join();
        }
        let winner = from_ordered_bits(shared.load(Ordering::Relaxed));
        assert_eq!(winner, -1.25, "incumbent must end at the true max");
    });
    assert!(report.schedules > 1, "expected multiple interleavings");
}

/// Workers also *read* the incumbent to tighten their pruning bound
/// (`shared.load(Relaxed)` before `scan_k_mix`). The bound only prunes
/// candidates `<=` the observed incumbent, so correctness needs the
/// observed value to be *some* published objective (never garbage,
/// never above the true max) — staleness is safe, over-reporting is
/// not. The model lets one worker race its load against the other's
/// fetch_max and asserts every readable value is a real published one.
#[test]
fn incumbent_reads_are_always_published_objectives() {
    model(|| {
        let shared = Arc::new(AtomicU64::new(ordered_bits(-10.0)));
        let publisher = {
            let shared = Arc::clone(&shared);
            thread::spawn(move || {
                shared.fetch_max(ordered_bits(-4.0), Ordering::Relaxed);
                shared.fetch_max(ordered_bits(-2.0), Ordering::Relaxed);
            })
        };
        let observed = from_ordered_bits(shared.load(Ordering::Relaxed));
        assert!(
            observed == -10.0 || observed == -4.0 || observed == -2.0,
            "read a value nobody published: {observed}"
        );
        publisher.join();
        // After the join (happens-before), staleness is gone.
        let settled = from_ordered_bits(shared.load(Ordering::Relaxed));
        assert_eq!(settled, -2.0);
    });
}

/// The tempting broken incumbent: `load` + compare + `store` instead
/// of `fetch_max`. Two workers interleave between the load and the
/// store and one update is lost. The checker must find that schedule —
/// this is the certificate that the positive test above is meaningful.
#[test]
fn load_then_store_incumbent_is_refuted() {
    let msg = expect_caught(|| {
        let shared = Arc::new(AtomicU64::new(ordered_bits(-10.0)));
        let handles: Vec<_> = [-4.0_f64, -2.0]
            .iter()
            .map(|&obj| {
                let shared = Arc::clone(&shared);
                thread::spawn(move || {
                    let cur = shared.load(Ordering::Relaxed);
                    let cand = ordered_bits(obj);
                    if cand > cur {
                        shared.store(cand, Ordering::Relaxed); // lost-update window
                    }
                })
            })
            .collect();
        for h in handles {
            h.join();
        }
        let winner = from_ordered_bits(shared.load(Ordering::Relaxed));
        assert_eq!(winner, -2.0);
    });
    assert!(msg.contains("-2"), "unexpected refutation message: {msg}");
}

/// The work-queue claim counter as written: every worker loops on
/// `next.fetch_add(1, Relaxed)` until the index runs off the end of
/// the queue. Across every interleaving each queue slot is claimed by
/// exactly one worker and no slot is skipped.
#[test]
fn fetch_add_claims_every_index_exactly_once() {
    const QUEUE: usize = 3;
    model(|| {
        let next = Arc::new(AtomicUsize::new(0));
        // One claim counter per slot; each must end at exactly 1.
        let claims: Arc<Vec<AtomicUsize>> =
            Arc::new((0..QUEUE).map(|_| AtomicUsize::new(0)).collect());
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let next = Arc::clone(&next);
                let claims = Arc::clone(&claims);
                thread::spawn(move || loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= QUEUE {
                        break;
                    }
                    claims[i].fetch_add(1, Ordering::Relaxed);
                })
            })
            .collect();
        for h in handles {
            h.join();
        }
        for (i, c) in claims.iter().enumerate() {
            assert_eq!(
                c.load(Ordering::Relaxed),
                1,
                "slot {i} claimed a wrong number of times"
            );
        }
    });
}

/// The broken claim counter: `load` then `store(i + 1)`. Two workers
/// read the same index and double-claim a slot. Refuted by the
/// checker, certifying the positive claim test.
#[test]
fn load_then_store_claim_counter_is_refuted() {
    const QUEUE: usize = 2;
    let msg = expect_caught(|| {
        let next = Arc::new(AtomicUsize::new(0));
        let claims: Arc<Vec<AtomicUsize>> =
            Arc::new((0..QUEUE).map(|_| AtomicUsize::new(0)).collect());
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let next = Arc::clone(&next);
                let claims = Arc::clone(&claims);
                thread::spawn(move || loop {
                    let i = next.load(Ordering::Relaxed);
                    if i >= QUEUE {
                        break;
                    }
                    next.store(i + 1, Ordering::Relaxed); // double-claim window
                    claims[i].fetch_add(1, Ordering::Relaxed);
                })
            })
            .collect();
        for h in handles {
            h.join();
        }
        for c in claims.iter() {
            assert_eq!(c.load(Ordering::Relaxed), 1);
        }
    });
    assert!(
        msg.contains("left") || msg.contains("assert"),
        "unexpected refutation message: {msg}"
    );
}
