//! Structural diffs between deployment plans.
//!
//! Re-planning happens in practice — the launcher substitutes failed
//! nodes, the improver reshapes trees, demand changes. A [`PlanDiff`]
//! explains *what changed* between two plans in node terms: which
//! platform nodes joined, left, changed role, or changed parent.

use crate::plan::{DeploymentPlan, Role};
use adept_platform::NodeId;
use std::collections::BTreeMap;
use std::fmt;

/// A per-node change between two plans.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeChange {
    /// The node appears only in the new plan.
    Added {
        /// Role in the new plan.
        role: Role,
    },
    /// The node appears only in the old plan.
    Removed {
        /// Role it had in the old plan.
        role: Role,
    },
    /// The node's role changed (e.g. server promoted to agent).
    Rerole {
        /// Old role.
        from: Role,
        /// New role.
        to: Role,
    },
    /// Same role, different parent node.
    Reparented {
        /// Old parent (`None` = was the root).
        from: Option<NodeId>,
        /// New parent (`None` = is now the root).
        to: Option<NodeId>,
    },
}

/// The full structural diff.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PlanDiff {
    /// Changes keyed by platform node.
    pub changes: BTreeMap<NodeId, NodeChange>,
}

impl PlanDiff {
    /// Computes the diff from `old` to `new`.
    pub fn between(old: &DeploymentPlan, new: &DeploymentPlan) -> Self {
        let describe = |plan: &DeploymentPlan| {
            let mut map = BTreeMap::new();
            for s in plan.slots() {
                map.insert(
                    plan.node(s),
                    (plan.role(s), plan.parent(s).map(|p| plan.node(p))),
                );
            }
            map
        };
        let before = describe(old);
        let after = describe(new);
        let mut changes = BTreeMap::new();
        for (&node, &(role, parent)) in &before {
            match after.get(&node) {
                None => {
                    changes.insert(node, NodeChange::Removed { role });
                }
                Some(&(new_role, new_parent)) => {
                    if new_role != role {
                        changes.insert(
                            node,
                            NodeChange::Rerole {
                                from: role,
                                to: new_role,
                            },
                        );
                    } else if new_parent != parent {
                        changes.insert(
                            node,
                            NodeChange::Reparented {
                                from: parent,
                                to: new_parent,
                            },
                        );
                    }
                }
            }
        }
        for (&node, &(role, _)) in &after {
            if !before.contains_key(&node) {
                changes.insert(node, NodeChange::Added { role });
            }
        }
        Self { changes }
    }

    /// True when the plans are structurally identical.
    pub fn is_empty(&self) -> bool {
        self.changes.is_empty()
    }

    /// Number of changed nodes.
    pub fn len(&self) -> usize {
        self.changes.len()
    }
}

impl fmt::Display for PlanDiff {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "no changes");
        }
        for (node, change) in &self.changes {
            match change {
                NodeChange::Added { role } => writeln!(f, "+ {node} joins as {role}")?,
                NodeChange::Removed { role } => writeln!(f, "- {node} leaves (was {role})")?,
                NodeChange::Rerole { from, to } => {
                    writeln!(f, "~ {node} changes role {from} -> {to}")?
                }
                NodeChange::Reparented { from, to } => {
                    let p = |x: &Option<NodeId>| x.map_or("root".to_string(), |n| n.to_string());
                    writeln!(f, "~ {node} moves {} -> {}", p(from), p(to))?
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::star;
    use crate::plan::Slot;

    fn ids(n: u32) -> Vec<NodeId> {
        (0..n).map(NodeId).collect()
    }

    #[test]
    fn identical_plans_have_empty_diff() {
        let p = star(&ids(5));
        let d = PlanDiff::between(&p, &p.clone());
        assert!(d.is_empty());
        assert_eq!(d.to_string(), "no changes");
    }

    #[test]
    fn added_and_removed_nodes() {
        let old = star(&ids(3));
        let mut new = star(&ids(3));
        new.add_server(new.root(), NodeId(9)).unwrap();
        let d = PlanDiff::between(&old, &new);
        assert_eq!(d.len(), 1);
        assert_eq!(
            d.changes[&NodeId(9)],
            NodeChange::Added { role: Role::Server }
        );
        let back = PlanDiff::between(&new, &old);
        assert_eq!(
            back.changes[&NodeId(9)],
            NodeChange::Removed { role: Role::Server }
        );
    }

    #[test]
    fn conversion_shows_as_rerole() {
        let old = star(&ids(4));
        let mut new = star(&ids(4));
        new.convert_to_agent(Slot(1)).unwrap();
        new.add_server(Slot(1), NodeId(7)).unwrap();
        let d = PlanDiff::between(&old, &new);
        assert_eq!(
            d.changes[&NodeId(1)],
            NodeChange::Rerole {
                from: Role::Server,
                to: Role::Agent
            }
        );
        assert_eq!(
            d.changes[&NodeId(7)],
            NodeChange::Added { role: Role::Server }
        );
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn reparenting_detected() {
        // old: root(0) -> a(1) -> s(2); new: root(0) -> {a(1), s(2)}.
        let mut old = DeploymentPlan::with_root(NodeId(0));
        let a = old.add_agent(old.root(), NodeId(1)).unwrap();
        old.add_server(a, NodeId(2)).unwrap();
        let mut new = DeploymentPlan::with_root(NodeId(0));
        let a2 = new.add_agent(new.root(), NodeId(1)).unwrap();
        new.add_server(new.root(), NodeId(2)).unwrap();
        new.add_server(a2, NodeId(3)).unwrap();
        let d = PlanDiff::between(&old, &new);
        assert_eq!(
            d.changes[&NodeId(2)],
            NodeChange::Reparented {
                from: Some(NodeId(1)),
                to: Some(NodeId(0))
            }
        );
        assert!(d.to_string().contains("n2 moves n1 -> n0"));
    }

    #[test]
    fn godiet_substitution_diff_shape() {
        // Simulates what the deployment tool reports after substituting a
        // failed node: one removal + one addition at the same position.
        let old = star(&ids(4));
        let mut new = DeploymentPlan::with_root(NodeId(0));
        for i in [1u32, 2, 9] {
            new.add_server(new.root(), NodeId(i)).unwrap();
        }
        let d = PlanDiff::between(&old, &new);
        assert_eq!(
            d.changes[&NodeId(3)],
            NodeChange::Removed { role: Role::Server }
        );
        assert_eq!(
            d.changes[&NodeId(9)],
            NodeChange::Added { role: Role::Server }
        );
    }
}
