//! Structural diffs between deployment plans.
//!
//! Re-planning happens in practice — the launcher substitutes failed
//! nodes, the improver reshapes trees, demand changes. A [`PlanDiff`]
//! explains *what changed* between two plans in node terms: which
//! platform nodes joined, left, changed role, or changed parent.
//!
//! A diff is also an **executable object**: every change carries enough
//! context (role *and* parent in the new plan) that
//! [`PlanDiff::apply`] reconstructs the new plan from the old one
//! exactly. This is what lets a migration tool treat a diff as the
//! transition itself — compile it into an ordered script, execute the
//! stages — rather than as a human-readable report.

use crate::plan::{DeploymentPlan, Role, Slot};
use adept_platform::NodeId;
use std::collections::BTreeMap;
use std::fmt;

/// A per-node change between two plans.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeChange {
    /// The node appears only in the new plan.
    Added {
        /// Role in the new plan.
        role: Role,
        /// Parent node in the new plan (`None` = it is the new root).
        parent: Option<NodeId>,
    },
    /// The node appears only in the old plan.
    Removed {
        /// Role it had in the old plan.
        role: Role,
    },
    /// The node's role changed (e.g. server promoted to agent). The
    /// parent is recorded too: a rerole may coincide with a reparent,
    /// and [`PlanDiff::apply`] needs the final position either way.
    Rerole {
        /// Old role.
        from: Role,
        /// New role.
        to: Role,
        /// Parent node in the new plan (`None` = it is now the root).
        parent: Option<NodeId>,
    },
    /// Same role, different parent node.
    Reparented {
        /// Old parent (`None` = was the root).
        from: Option<NodeId>,
        /// New parent (`None` = is now the root).
        to: Option<NodeId>,
    },
}

/// Errors raised by [`PlanDiff::apply`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DiffError {
    /// A change references a node absent from the base plan.
    AbsentNode(NodeId),
    /// An `Added` node is already present in the base plan.
    AlreadyPresent(NodeId),
    /// A `Rerole`/`Reparented` precondition does not match the base plan
    /// (wrong prior role or parent): the diff was computed against a
    /// different plan.
    StateMismatch(NodeId),
    /// The patched node set does not form a single rooted tree (no or
    /// several roots, a server with children, or unreachable nodes).
    BrokenTree(String),
}

impl fmt::Display for DiffError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DiffError::AbsentNode(n) => write!(f, "diff references {n}, absent from the base plan"),
            DiffError::AlreadyPresent(n) => {
                write!(f, "diff adds {n}, already present in the base plan")
            }
            DiffError::StateMismatch(n) => write!(
                f,
                "diff precondition on {n} does not match the base plan (diff from another plan?)"
            ),
            DiffError::BrokenTree(msg) => write!(f, "patched plan is not a rooted tree: {msg}"),
        }
    }
}

impl std::error::Error for DiffError {}

/// The full structural diff.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PlanDiff {
    /// Changes keyed by platform node.
    pub changes: BTreeMap<NodeId, NodeChange>,
}

/// `node -> (role, parent node)` description of a plan; the canonical
/// structure diffs and patches operate on.
fn describe(plan: &DeploymentPlan) -> BTreeMap<NodeId, (Role, Option<NodeId>)> {
    let mut map = BTreeMap::new();
    for s in plan.slots() {
        map.insert(
            plan.node(s),
            (plan.role(s), plan.parent(s).map(|p| plan.node(p))),
        );
    }
    map
}

/// Builds a [`DeploymentPlan`] from a `node -> (role, parent)` map.
fn rebuild(desc: &BTreeMap<NodeId, (Role, Option<NodeId>)>) -> Result<DeploymentPlan, DiffError> {
    let mut roots = desc.iter().filter(|(_, &(_, parent))| parent.is_none());
    let root = match (roots.next(), roots.next()) {
        (Some((&node, &(Role::Agent, _))), None) => node,
        (Some((&node, &(Role::Server, _))), None) => {
            return Err(DiffError::BrokenTree(format!("root {node} is a server")))
        }
        (None, _) => return Err(DiffError::BrokenTree("no root".into())),
        (Some(_), Some(_)) => return Err(DiffError::BrokenTree("several roots".into())),
    };
    let mut children: BTreeMap<NodeId, Vec<NodeId>> = BTreeMap::new();
    for (&node, &(_, parent)) in desc {
        if let Some(p) = parent {
            if !desc.contains_key(&p) {
                return Err(DiffError::BrokenTree(format!(
                    "{node} hangs off {p}, which is not in the plan"
                )));
            }
            children.entry(p).or_default().push(node);
        }
    }
    // BFS from the root assigns slots, then the whole tree goes through
    // `DeploymentPlan::from_parts` in one allocation pass. Children of a
    // popped node take consecutive slots, so the bulk constructor's
    // ascending-slot child order equals the BFS insertion order.
    let mut nodes = Vec::with_capacity(desc.len());
    let mut roles = Vec::with_capacity(desc.len());
    let mut parents = Vec::with_capacity(desc.len());
    let mut slot_of: BTreeMap<NodeId, Slot> = BTreeMap::new();
    slot_of.insert(root, Slot(0));
    nodes.push(root);
    roles.push(Role::Agent);
    parents.push(None);
    let mut queue = std::collections::VecDeque::from([root]);
    while let Some(node) = queue.pop_front() {
        let parent_slot = slot_of[&node];
        for &child in children.get(&node).into_iter().flatten() {
            slot_of.insert(child, Slot(nodes.len()));
            nodes.push(child);
            roles.push(desc[&child].0);
            parents.push(Some(parent_slot));
            queue.push_back(child);
        }
    }
    if nodes.len() != desc.len() {
        return Err(DiffError::BrokenTree(format!(
            "{} of {} nodes unreachable from the root (parent cycle)",
            desc.len() - nodes.len(),
            desc.len()
        )));
    }
    DeploymentPlan::from_parts(nodes, roles, parents)
        .map_err(|e| DiffError::BrokenTree(e.to_string()))
}

impl PlanDiff {
    /// Computes the diff from `old` to `new`.
    pub fn between(old: &DeploymentPlan, new: &DeploymentPlan) -> Self {
        let before = describe(old);
        let after = describe(new);
        let mut changes = BTreeMap::new();
        for (&node, &(role, parent)) in &before {
            match after.get(&node) {
                None => {
                    changes.insert(node, NodeChange::Removed { role });
                }
                Some(&(new_role, new_parent)) => {
                    if new_role != role {
                        changes.insert(
                            node,
                            NodeChange::Rerole {
                                from: role,
                                to: new_role,
                                parent: new_parent,
                            },
                        );
                    } else if new_parent != parent {
                        changes.insert(
                            node,
                            NodeChange::Reparented {
                                from: parent,
                                to: new_parent,
                            },
                        );
                    }
                }
            }
        }
        for (&node, &(role, parent)) in &after {
            if !before.contains_key(&node) {
                changes.insert(node, NodeChange::Added { role, parent });
            }
        }
        Self { changes }
    }

    /// Applies the diff to `base`, reconstructing the plan it was
    /// computed *towards*: `PlanDiff::between(a, b).apply(a)` is
    /// structurally equal to `b`. Each change's precondition (prior
    /// role/parent) is checked against `base`, so applying a diff to the
    /// wrong plan fails instead of silently producing a hybrid.
    ///
    /// # Errors
    /// [`DiffError`] when a change's precondition does not hold on
    /// `base` or the patched node set is not a single rooted tree.
    pub fn apply(&self, base: &DeploymentPlan) -> Result<DeploymentPlan, DiffError> {
        let mut desc = describe(base);
        for (&node, change) in &self.changes {
            match *change {
                NodeChange::Removed { role } => match desc.remove(&node) {
                    Some((r, _)) if r == role => {}
                    Some(_) => return Err(DiffError::StateMismatch(node)),
                    None => return Err(DiffError::AbsentNode(node)),
                },
                NodeChange::Added { role, parent } => {
                    if desc.insert(node, (role, parent)).is_some() {
                        return Err(DiffError::AlreadyPresent(node));
                    }
                }
                NodeChange::Rerole { from, to, parent } => match desc.get_mut(&node) {
                    Some(entry) if entry.0 == from => *entry = (to, parent),
                    Some(_) => return Err(DiffError::StateMismatch(node)),
                    None => return Err(DiffError::AbsentNode(node)),
                },
                NodeChange::Reparented { from, to } => match desc.get_mut(&node) {
                    Some(entry) if entry.1 == from => entry.1 = to,
                    Some(_) => return Err(DiffError::StateMismatch(node)),
                    None => return Err(DiffError::AbsentNode(node)),
                },
            }
        }
        rebuild(&desc)
    }

    /// True when the plans are structurally identical.
    pub fn is_empty(&self) -> bool {
        self.changes.is_empty()
    }

    /// Number of changed nodes.
    pub fn len(&self) -> usize {
        self.changes.len()
    }

    /// Nodes joining the new plan, with their role and parent.
    pub fn added(&self) -> impl Iterator<Item = (NodeId, Role, Option<NodeId>)> + '_ {
        self.changes.iter().filter_map(|(&n, c)| match *c {
            NodeChange::Added { role, parent } => Some((n, role, parent)),
            _ => None,
        })
    }

    /// Nodes leaving the old plan, with the role they had.
    pub fn removed(&self) -> impl Iterator<Item = (NodeId, Role)> + '_ {
        self.changes.iter().filter_map(|(&n, c)| match *c {
            NodeChange::Removed { role } => Some((n, role)),
            _ => None,
        })
    }
}

impl fmt::Display for PlanDiff {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "no changes");
        }
        let p = |x: &Option<NodeId>| x.map_or("root".to_string(), |n| n.to_string());
        for (node, change) in &self.changes {
            match change {
                NodeChange::Added { role, parent } => {
                    writeln!(f, "+ {node} joins as {role} under {}", p(parent))?
                }
                NodeChange::Removed { role } => writeln!(f, "- {node} leaves (was {role})")?,
                NodeChange::Rerole { from, to, .. } => {
                    writeln!(f, "~ {node} changes role {from} -> {to}")?
                }
                NodeChange::Reparented { from, to } => {
                    writeln!(f, "~ {node} moves {} -> {}", p(from), p(to))?
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::star;
    use crate::plan::Slot;

    fn ids(n: u32) -> Vec<NodeId> {
        (0..n).map(NodeId).collect()
    }

    #[test]
    fn identical_plans_have_empty_diff() {
        let p = star(&ids(5));
        let d = PlanDiff::between(&p, &p.clone());
        assert!(d.is_empty());
        assert_eq!(d.to_string(), "no changes");
    }

    #[test]
    fn added_and_removed_nodes() {
        let old = star(&ids(3));
        let mut new = star(&ids(3));
        new.add_server(new.root(), NodeId(9)).unwrap();
        let d = PlanDiff::between(&old, &new);
        assert_eq!(d.len(), 1);
        assert_eq!(
            d.changes[&NodeId(9)],
            NodeChange::Added {
                role: Role::Server,
                parent: Some(NodeId(0))
            }
        );
        assert_eq!(d.added().count(), 1);
        let back = PlanDiff::between(&new, &old);
        assert_eq!(
            back.changes[&NodeId(9)],
            NodeChange::Removed { role: Role::Server }
        );
        assert_eq!(back.removed().count(), 1);
    }

    #[test]
    fn conversion_shows_as_rerole() {
        let old = star(&ids(4));
        let mut new = star(&ids(4));
        new.convert_to_agent(Slot(1)).unwrap();
        new.add_server(Slot(1), NodeId(7)).unwrap();
        let d = PlanDiff::between(&old, &new);
        assert_eq!(
            d.changes[&NodeId(1)],
            NodeChange::Rerole {
                from: Role::Server,
                to: Role::Agent,
                parent: Some(NodeId(0))
            }
        );
        assert_eq!(
            d.changes[&NodeId(7)],
            NodeChange::Added {
                role: Role::Server,
                parent: Some(NodeId(1))
            }
        );
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn reparenting_detected() {
        // old: root(0) -> a(1) -> s(2); new: root(0) -> {a(1), s(2)}.
        let mut old = DeploymentPlan::with_root(NodeId(0));
        let a = old.add_agent(old.root(), NodeId(1)).unwrap();
        old.add_server(a, NodeId(2)).unwrap();
        let mut new = DeploymentPlan::with_root(NodeId(0));
        let a2 = new.add_agent(new.root(), NodeId(1)).unwrap();
        new.add_server(new.root(), NodeId(2)).unwrap();
        new.add_server(a2, NodeId(3)).unwrap();
        let d = PlanDiff::between(&old, &new);
        assert_eq!(
            d.changes[&NodeId(2)],
            NodeChange::Reparented {
                from: Some(NodeId(1)),
                to: Some(NodeId(0))
            }
        );
        assert!(d.to_string().contains("n2 moves n1 -> n0"));
    }

    #[test]
    fn godiet_substitution_diff_shape() {
        // Simulates what the deployment tool reports after substituting a
        // failed node: one removal + one addition at the same position.
        let old = star(&ids(4));
        let mut new = DeploymentPlan::with_root(NodeId(0));
        for i in [1u32, 2, 9] {
            new.add_server(new.root(), NodeId(i)).unwrap();
        }
        let d = PlanDiff::between(&old, &new);
        assert_eq!(
            d.changes[&NodeId(3)],
            NodeChange::Removed { role: Role::Server }
        );
        assert_eq!(
            d.changes[&NodeId(9)],
            NodeChange::Added {
                role: Role::Server,
                parent: Some(NodeId(0))
            }
        );
    }

    #[test]
    fn apply_reconstructs_simple_growth() {
        let old = star(&ids(3));
        let mut new = star(&ids(3));
        new.add_server(new.root(), NodeId(9)).unwrap();
        let patched = PlanDiff::between(&old, &new).apply(&old).unwrap();
        assert!(patched.structurally_eq(&new));
    }

    #[test]
    fn apply_reconstructs_rerole_and_reparent_chain() {
        // old: root(0) -> {s1, s2, s3}.
        // new: root(0) -> a1 -> {s2, s9}, root -> s3 reroled to agent
        //      holding nothing... make it: s3 removed, s2 reparented
        //      under promoted a1, fresh s9 under a1.
        let old = star(&ids(4));
        let mut new = DeploymentPlan::with_root(NodeId(0));
        let a1 = new.add_agent(new.root(), NodeId(1)).unwrap();
        new.add_server(a1, NodeId(2)).unwrap();
        new.add_server(a1, NodeId(9)).unwrap();
        let d = PlanDiff::between(&old, &new);
        // One rerole (1: server->agent), one reparent (2), one removal
        // (3), one addition (9).
        assert_eq!(d.len(), 4);
        let patched = d.apply(&old).unwrap();
        assert!(patched.structurally_eq(&new), "{}", patched.render());
    }

    #[test]
    fn apply_handles_root_substitution() {
        let old = star(&ids(3));
        let mut new = DeploymentPlan::with_root(NodeId(9));
        new.add_server(new.root(), NodeId(1)).unwrap();
        new.add_server(new.root(), NodeId(2)).unwrap();
        let d = PlanDiff::between(&old, &new);
        let patched = d.apply(&old).unwrap();
        assert!(patched.structurally_eq(&new));
    }

    #[test]
    fn apply_rejects_wrong_base() {
        let old = star(&ids(3));
        let mut new = star(&ids(3));
        new.add_server(new.root(), NodeId(9)).unwrap();
        let d = PlanDiff::between(&old, &new);
        // Applying to the *new* plan: node 9 already present.
        assert_eq!(d.apply(&new), Err(DiffError::AlreadyPresent(NodeId(9))));
        // A diff removing a node absent from the base.
        let shrink = PlanDiff::between(&new, &old);
        assert_eq!(shrink.apply(&old), Err(DiffError::AbsentNode(NodeId(9))));
    }

    #[test]
    fn apply_rejects_broken_trees() {
        let old = star(&ids(3));
        // A hand-built diff hanging a node off a parent that is leaving.
        let mut d = PlanDiff::default();
        d.changes
            .insert(NodeId(1), NodeChange::Removed { role: Role::Server });
        d.changes.insert(
            NodeId(9),
            NodeChange::Added {
                role: Role::Server,
                parent: Some(NodeId(1)),
            },
        );
        assert!(matches!(d.apply(&old), Err(DiffError::BrokenTree(_))));
        // Demoting the root to a server breaks rootedness.
        let mut d2 = PlanDiff::default();
        d2.changes.insert(
            NodeId(0),
            NodeChange::Rerole {
                from: Role::Agent,
                to: Role::Server,
                parent: None,
            },
        );
        assert!(matches!(d2.apply(&old), Err(DiffError::BrokenTree(_))));
        assert!(DiffError::BrokenTree("x".into()).to_string().contains("x"));
    }

    /// Round-trip property: for randomized plan pairs `(a, b)` related by
    /// chains of adds, removals, reroles and reparents,
    /// `diff(a, b).apply(a)` reconstructs `b` exactly.
    #[test]
    fn apply_round_trips_randomized_mutation_chains() {
        // Deterministic SplitMix64; no external RNG needed.
        let mut state = 0x243F_6A88_85A3_08D3u64;
        let mut next = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            (z ^ (z >> 31)) as usize
        };
        for case in 0..200 {
            // Base plan: root + a few levels, built by random attach.
            let mut a = DeploymentPlan::with_root(NodeId(0));
            let mut next_id = 1u32;
            for _ in 0..(3 + next() % 10) {
                let agents: Vec<Slot> = a.agents().collect();
                let parent = agents[next() % agents.len()];
                if next() % 3 == 0 {
                    a.add_agent(parent, NodeId(next_id)).unwrap();
                } else {
                    a.add_server(parent, NodeId(next_id)).unwrap();
                }
                next_id += 1;
            }
            // Mutate a copy through a chain of structural edits.
            let mut b = a.clone();
            for _ in 0..(1 + next() % 8) {
                match next() % 4 {
                    // Add under a random agent.
                    0 => {
                        let agents: Vec<Slot> = b.agents().collect();
                        let parent = agents[next() % agents.len()];
                        if next() % 2 == 0 {
                            b.add_agent(parent, NodeId(next_id)).unwrap();
                        } else {
                            b.add_server(parent, NodeId(next_id)).unwrap();
                        }
                        next_id += 1;
                    }
                    // Rerole: promote a server, or demote a childless
                    // non-root agent.
                    1 => {
                        let servers: Vec<Slot> = b.servers().collect();
                        if !servers.is_empty() && next() % 2 == 0 {
                            b.convert_to_agent(servers[next() % servers.len()]).unwrap();
                        } else {
                            let leaves: Vec<Slot> = b
                                .agents()
                                .filter(|&s| s != b.root() && b.degree(s) == 0)
                                .collect();
                            if !leaves.is_empty() {
                                b.convert_to_server(leaves[next() % leaves.len()]).unwrap();
                            }
                        }
                    }
                    // Reparent a random non-root entry under a random
                    // agent outside its own subtree.
                    2 => {
                        let movable: Vec<Slot> = b.slots().filter(|&s| s != b.root()).collect();
                        if !movable.is_empty() {
                            let child = movable[next() % movable.len()];
                            let agents: Vec<Slot> = b.agents().collect();
                            let target = agents[next() % agents.len()];
                            let _ = b.move_child(child, target); // cycles rejected, fine
                        }
                    }
                    // Remove the last entry when it exists and is a
                    // leaf (reparenting may have given it children).
                    _ => {
                        if b.len() > 1 {
                            let last = Slot(b.len() - 1);
                            if b.children(last).is_empty() {
                                let _ = b.remove_last(last);
                            }
                        }
                    }
                }
            }
            let d = PlanDiff::between(&a, &b);
            let patched = d.apply(&a).unwrap_or_else(|e| {
                panic!(
                    "case {case}: apply failed: {e}\nold:\n{}\nnew:\n{}",
                    a.render(),
                    b.render()
                )
            });
            assert!(
                patched.structurally_eq(&b),
                "case {case}: round-trip diverged\nold:\n{}\nnew:\n{}\npatched:\n{}",
                a.render(),
                b.render(),
                patched.render()
            );
            // And the reverse direction, too.
            let back = PlanDiff::between(&b, &a).apply(&b).unwrap();
            assert!(back.structurally_eq(&a));
        }
    }
}
