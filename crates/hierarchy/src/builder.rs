//! Standard hierarchy shapes.
//!
//! Three families appear in the paper's evaluation:
//!
//! * **Star** (Section 5.3's first comparator): one agent, every other node
//!   a server directly attached to it.
//! * **Balanced two-level** (Section 5.3's second comparator): a root agent
//!   over `m` middle agents, servers distributed as evenly as possible.
//! * **Complete spanning d-ary tree (CSD)**: the shape the authors proved
//!   optimal for homogeneous clusters in their prior work \[10\]; Table 4's
//!   "degrees" refer to this family.
//!
//! All builders consume an explicit node list; callers decide the order
//! (e.g. most-powerful-first so the strongest nodes become agents).

// audit: allow-file(unwrap, "the builder hands each node out exactly once, so plan
// inserts cannot collide; each expect documents that invariant")
use crate::plan::DeploymentPlan;
#[cfg(test)]
use crate::plan::Slot;
use adept_platform::NodeId;

/// Star: `nodes[0]` is the agent, all remaining nodes are its servers.
///
/// # Panics
/// Panics if fewer than two nodes are supplied.
pub fn star(nodes: &[NodeId]) -> DeploymentPlan {
    assert!(
        nodes.len() >= 2,
        "a star needs an agent and at least one server"
    );
    let mut plan = DeploymentPlan::with_root(nodes[0]);
    for &s in &nodes[1..] {
        plan.add_server(plan.root(), s)
            .expect("distinct nodes under an agent root always insert");
    }
    plan
}

/// Balanced two-level hierarchy: `nodes[0]` is the root, the next
/// `mid_agents` nodes are middle agents, and the remaining nodes are servers
/// distributed round-robin under the middle agents (so server counts differ
/// by at most one — e.g. the paper's 1 + 14 agents + 14 servers each, one
/// agent with only 3).
///
/// # Panics
/// Panics if `mid_agents == 0` or there are not enough nodes to give every
/// middle agent at least one server.
pub fn balanced_two_level(nodes: &[NodeId], mid_agents: usize) -> DeploymentPlan {
    assert!(mid_agents > 0, "need at least one middle agent");
    assert!(
        nodes.len() >= 1 + mid_agents + mid_agents,
        "need a root, {mid_agents} agents and at least one server each, got {} nodes",
        nodes.len()
    );
    let mut plan = DeploymentPlan::with_root(nodes[0]);
    let mut agents = Vec::with_capacity(mid_agents);
    for &a in &nodes[1..=mid_agents] {
        agents.push(
            plan.add_agent(plan.root(), a)
                .expect("distinct nodes under the root always insert"),
        );
    }
    for (i, &s) in nodes[1 + mid_agents..].iter().enumerate() {
        let parent = agents[i % mid_agents];
        plan.add_server(parent, s)
            .expect("distinct nodes under an agent always insert");
    }
    plan
}

/// Complete spanning d-ary tree (the optimal family of \[10\]): nodes are
/// placed in breadth-first order, each internal node receiving up to
/// `degree` children; entries that end up with children are agents, leaves
/// are servers.
///
/// `degree == 1` degenerates to the paper's one-agent-one-server deployment
/// (a longer chain would contain single-child non-root agents, which the
/// hierarchy rules forbid and which never help throughput).
///
/// # Panics
/// Panics if fewer than two nodes are supplied or `degree == 0`.
pub fn csd_tree(nodes: &[NodeId], degree: usize) -> DeploymentPlan {
    assert!(degree > 0, "degree must be at least 1");
    assert!(nodes.len() >= 2, "a hierarchy needs at least two nodes");
    if degree == 1 {
        return DeploymentPlan::agent_server(nodes[0], nodes[1]);
    }
    let mut plan = DeploymentPlan::with_root(nodes[0]);
    // BFS fill: `frontier` holds slots that can still accept children.
    // Entries are inserted as servers and promoted to agents the moment
    // they receive their first child.
    let mut frontier = std::collections::VecDeque::new();
    frontier.push_back(plan.root());
    let mut next = 1;
    'outer: while let Some(parent) = frontier.pop_front() {
        for _ in 0..degree {
            if next >= nodes.len() {
                break 'outer;
            }
            if plan.role(parent) == crate::plan::Role::Server {
                plan.convert_to_agent(parent)
                    .expect("slot from frontier exists and is a server");
            }
            let slot = plan
                .add_server(parent, nodes[next])
                .expect("fresh node under an agent always inserts");
            next += 1;
            frontier.push_back(slot);
        }
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::Role;

    fn ids(n: u32) -> Vec<NodeId> {
        (0..n).map(NodeId).collect()
    }

    #[test]
    fn star_shape() {
        let p = star(&ids(5));
        assert_eq!(p.agent_count(), 1);
        assert_eq!(p.server_count(), 4);
        assert_eq!(p.degree(Slot(0)), 4);
        assert_eq!(p.depth(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn star_needs_two_nodes() {
        let _ = star(&ids(1));
    }

    #[test]
    fn balanced_two_level_distributes_evenly() {
        // 1 root + 3 agents + 10 servers.
        let p = balanced_two_level(&ids(14), 3);
        assert_eq!(p.agent_count(), 4);
        assert_eq!(p.server_count(), 10);
        assert_eq!(p.depth(), 3);
        let mut degrees: Vec<usize> = p.children(Slot(0)).iter().map(|&a| p.degree(a)).collect();
        degrees.sort_unstable();
        assert_eq!(degrees, vec![3, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "at least one server each")]
    fn balanced_needs_enough_servers() {
        let _ = balanced_two_level(&ids(5), 3);
    }

    #[test]
    fn csd_degree_one_is_agent_server() {
        let p = csd_tree(&ids(10), 1);
        assert_eq!(p.len(), 2);
        assert_eq!(p.agent_count(), 1);
        assert_eq!(p.server_count(), 1);
    }

    #[test]
    fn csd_star_when_degree_covers_all() {
        let p = csd_tree(&ids(10), 9);
        assert_eq!(p.depth(), 2);
        assert_eq!(p.server_count(), 9);
    }

    #[test]
    fn csd_binary_on_seven_nodes_is_complete() {
        let p = csd_tree(&ids(7), 2);
        // 1 + 2 + 4: root and two mid agents, four leaf servers.
        assert_eq!(p.agent_count(), 3);
        assert_eq!(p.server_count(), 4);
        assert_eq!(p.depth(), 3);
        for a in p.agents() {
            assert_eq!(p.degree(a), 2);
        }
    }

    #[test]
    fn csd_partial_last_level() {
        // 25 nodes at degree 2: levels 1,2,4,8,10.
        let p = csd_tree(&ids(25), 2);
        assert_eq!(p.len(), 25);
        assert_eq!(p.depth(), 5);
        // 10 leaves at the last level plus 3 childless entries at level 3.
        assert_eq!(p.server_count(), 13);
        assert_eq!(p.agent_count(), 12);
        // No agent exceeds the degree.
        for a in p.agents() {
            assert!(p.degree(a) <= 2);
        }
    }

    #[test]
    fn csd_uses_all_nodes_when_degree_ge_2() {
        for d in 2..10 {
            let p = csd_tree(&ids(45), d);
            assert_eq!(p.len(), 45, "degree {d} must span all nodes");
        }
    }

    #[test]
    fn csd_roles_consistent() {
        let p = csd_tree(&ids(45), 15);
        for s in p.slots() {
            match p.role(s) {
                Role::Agent => assert!(p.degree(s) > 0, "agents have children"),
                Role::Server => assert_eq!(p.degree(s), 0, "servers are leaves"),
            }
        }
    }
}
