//! # adept-hierarchy
//!
//! Deployment-hierarchy substrate: the tree of **agents** and **servers**
//! that the planner produces and the simulator instantiates.
//!
//! The paper (Section 1) defines the arrangement precisely:
//!
//! > "A server s ∈ S has exactly one parent that is always an agent a ∈ A.
//! > A root agent a ∈ A has one or more child agents and/or servers and no
//! > parents. Non-root agents a ∈ A have exactly one parent and two or more
//! > child agents and/or servers."
//!
//! Resources are **not** shared between agents and servers (each node plays
//! one role).
//!
//! * [`plan`] — the [`DeploymentPlan`] tree (index-based, cheap to clone);
//! * [`builder`] — the standard shapes: star, balanced two-level, and the
//!   complete spanning d-ary tree of the authors' prior work \[10\];
//! * [`adjacency`] — the paper's adjacency-matrix output (`plot_hierarchy`);
//! * [`xml`] — GoDIET-style XML serialization (`write_xml`) and a parser;
//! * [`validate`](mod@validate) — structural validation against the rules above;
//! * [`stats`] — shape statistics (depth, degrees, counts) used in reports.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod adjacency;
pub mod builder;
pub mod diff;
pub mod dot;
pub mod plan;
pub mod stats;
pub mod validate;
pub mod xml;

pub use adjacency::AdjacencyMatrix;
pub use diff::{DiffError, NodeChange, PlanDiff};
pub use dot::to_dot;
pub use plan::{DeploymentPlan, PlanError, Role, Slot};
pub use stats::{HierarchyStats, PartitionStats};
pub use validate::{validate, validate_assignment, validate_relaxed, ValidationError};
