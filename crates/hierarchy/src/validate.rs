//! Structural validation of deployment plans.
//!
//! The strict rules come from the paper's Section 1:
//!
//! * the root is an agent with **one or more** children and no parent;
//! * every non-root agent has exactly one parent and **two or more**
//!   children;
//! * every server has exactly one parent (an agent) and no children;
//! * no platform node plays two roles.
//!
//! [`validate`] enforces all of them. [`validate_relaxed`] drops the
//! "non-root agents need ≥ 2 children" rule, which BFS-filled complete
//! spanning d-ary trees can violate at their boundary and which affects
//! neither the model nor the simulator.
//!
//! Plans can also be validated **against a platform** ([`validate_on`]):
//! every plan node must exist there.

use crate::plan::Role;
use crate::plan::{DeploymentPlan, Slot};
use adept_platform::{NodeId, Platform};
use std::collections::BTreeMap;
use std::fmt;

/// A structural defect found in a plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidationError {
    /// The root has no children at all.
    RootHasNoChildren,
    /// A non-root agent has no children at all. Such an agent can never
    /// answer a scheduling request (there is nothing to aggregate), so
    /// even relaxed validation rejects it — a deployment containing one
    /// would deadlock every request that reaches it.
    ChildlessAgent {
        /// Offending slot.
        slot: Slot,
    },
    /// A non-root agent has fewer than two children (strict mode only).
    AgentHasTooFewChildren {
        /// Offending slot.
        slot: Slot,
        /// Its child count.
        children: usize,
    },
    /// A plan node does not exist on the platform it is validated against.
    NodeNotOnPlatform(NodeId),
    /// Multi-service deployments: a server carries no service assignment.
    ServerWithoutService(NodeId),
    /// Multi-service deployments: a service assignment names a node that
    /// is not one of the plan's servers (a stale or misdirected entry).
    AssignedNodeNotAServer(NodeId),
    /// Multi-service deployments: an assignment references a service
    /// index outside the mix.
    ServiceIndexOutOfRange {
        /// The offending node.
        node: NodeId,
        /// Its assigned service index.
        index: usize,
        /// Number of services in the mix.
        services: usize,
    },
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationError::RootHasNoChildren => {
                write!(f, "root agent has no children")
            }
            ValidationError::ChildlessAgent { slot } => {
                write!(f, "non-root agent {slot} has no children")
            }
            ValidationError::AgentHasTooFewChildren { slot, children } => write!(
                f,
                "non-root agent {slot} has {children} child(ren); the hierarchy rules require at least 2"
            ),
            ValidationError::NodeNotOnPlatform(n) => {
                write!(f, "plan references node {n} which is not on the platform")
            }
            ValidationError::ServerWithoutService(n) => {
                write!(f, "server node {n} has no service assignment")
            }
            ValidationError::AssignedNodeNotAServer(n) => {
                write!(f, "assignment names node {n} which is not a plan server")
            }
            ValidationError::ServiceIndexOutOfRange {
                node,
                index,
                services,
            } => write!(
                f,
                "node {node} assigned to service {index}, but the mix has only {services}"
            ),
        }
    }
}

impl std::error::Error for ValidationError {}

/// Strict validation per the paper's hierarchy rules. Returns all defects.
///
/// Note that several rules (single parent, agents-only parents, servers are
/// leaves, node uniqueness, acyclicity) are enforced by
/// [`DeploymentPlan`]'s construction API and therefore cannot fail here;
/// only the arity rules remain to be checked.
pub fn validate(plan: &DeploymentPlan) -> Vec<ValidationError> {
    let mut errors = validate_relaxed(plan);
    for slot in plan.agents() {
        if slot != plan.root() && plan.degree(slot) < 2 {
            errors.push(ValidationError::AgentHasTooFewChildren {
                slot,
                children: plan.degree(slot),
            });
        }
    }
    errors
}

/// Relaxed validation: requires the root to have at least one child and
/// every other agent to have at least one as well (a childless interior
/// agent would deadlock requests — see
/// [`ValidationError::ChildlessAgent`]). Single-child non-root agents,
/// which the strict paper rules forbid, are accepted.
pub fn validate_relaxed(plan: &DeploymentPlan) -> Vec<ValidationError> {
    let mut errors = Vec::new();
    if plan.degree(plan.root()) == 0 {
        errors.push(ValidationError::RootHasNoChildren);
    }
    for slot in plan.agents() {
        if slot != plan.root() && plan.degree(slot) == 0 {
            errors.push(ValidationError::ChildlessAgent { slot });
        }
    }
    errors
}

/// Validates a server→service assignment of a multi-service deployment
/// against a plan: every plan server must be assigned, every assigned node
/// must be a plan server, and every service index must lie inside the mix.
/// Structural plan defects are **not** re-checked here — combine with
/// [`validate`] / [`validate_relaxed`] as needed.
pub fn validate_assignment(
    plan: &DeploymentPlan,
    service_of: &BTreeMap<NodeId, usize>,
    services: usize,
) -> Vec<ValidationError> {
    let mut errors = Vec::new();
    let mut server_nodes = std::collections::HashSet::new();
    for slot in plan.slots() {
        if plan.role(slot) != Role::Server {
            continue;
        }
        let node = plan.node(slot);
        server_nodes.insert(node);
        match service_of.get(&node) {
            None => errors.push(ValidationError::ServerWithoutService(node)),
            Some(&index) if index >= services => {
                errors.push(ValidationError::ServiceIndexOutOfRange {
                    node,
                    index,
                    services,
                });
            }
            Some(_) => {}
        }
    }
    for (&node, _) in service_of.iter() {
        if !server_nodes.contains(&node) {
            errors.push(ValidationError::AssignedNodeNotAServer(node));
        }
    }
    errors
}

/// Validates (strictly) and additionally checks every plan node exists on
/// the platform.
pub fn validate_on(plan: &DeploymentPlan, platform: &Platform) -> Vec<ValidationError> {
    let mut errors = validate(plan);
    for slot in plan.slots() {
        let node = plan.node(slot);
        if platform.node(node).is_err() {
            errors.push(ValidationError::NodeNotOnPlatform(node));
        }
    }
    errors
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{csd_tree, star};
    use adept_platform::generator::lyon_cluster;

    fn ids(n: u32) -> Vec<NodeId> {
        (0..n).map(NodeId).collect()
    }

    #[test]
    fn star_is_strictly_valid() {
        assert!(validate(&star(&ids(5))).is_empty());
    }

    #[test]
    fn lone_root_is_invalid() {
        let p = DeploymentPlan::with_root(NodeId(0));
        assert_eq!(validate(&p), vec![ValidationError::RootHasNoChildren]);
        assert_eq!(
            validate_relaxed(&p),
            vec![ValidationError::RootHasNoChildren]
        );
    }

    #[test]
    fn agent_with_one_child_fails_strict_passes_relaxed() {
        let mut p = DeploymentPlan::with_root(NodeId(0));
        let a = p.add_agent(p.root(), NodeId(1)).unwrap();
        p.add_server(a, NodeId(2)).unwrap();
        let strict = validate(&p);
        assert_eq!(
            strict,
            vec![ValidationError::AgentHasTooFewChildren {
                slot: a,
                children: 1
            }]
        );
        assert!(validate_relaxed(&p).is_empty());
    }

    #[test]
    fn csd_boundary_is_relaxed_valid() {
        // Some CSD fills create a single-child agent at the boundary.
        for n in 3..40u32 {
            for d in 2..8usize {
                let p = csd_tree(&ids(n), d);
                assert!(
                    validate_relaxed(&p).is_empty(),
                    "csd({n},{d}) should be relaxed-valid"
                );
            }
        }
    }

    #[test]
    fn childless_interior_agent_fails_even_relaxed() {
        let mut p = DeploymentPlan::with_root(NodeId(0));
        let a = p.add_agent(p.root(), NodeId(1)).unwrap();
        p.add_server(p.root(), NodeId(2)).unwrap();
        let relaxed = validate_relaxed(&p);
        assert_eq!(relaxed, vec![ValidationError::ChildlessAgent { slot: a }]);
        assert!(validate(&p).contains(&ValidationError::ChildlessAgent { slot: a }));
    }

    #[test]
    fn platform_membership_checked() {
        let platform = lyon_cluster(3);
        let p = star(&ids(5)); // references n3, n4 which don't exist
        let errs = validate_on(&p, &platform);
        assert!(errs.contains(&ValidationError::NodeNotOnPlatform(NodeId(3))));
        assert!(errs.contains(&ValidationError::NodeNotOnPlatform(NodeId(4))));
    }

    #[test]
    fn error_messages_are_informative() {
        let e = ValidationError::AgentHasTooFewChildren {
            slot: Slot(3),
            children: 1,
        };
        assert!(e.to_string().contains("#3"));
        assert!(e.to_string().contains("at least 2"));
    }

    #[test]
    fn assignment_validation_catches_all_defect_kinds() {
        let p = star(&ids(4)); // root n0, servers n1..n3
        let mut service_of = BTreeMap::new();
        service_of.insert(NodeId(1), 0);
        service_of.insert(NodeId(2), 5); // out of range for 2 services
        service_of.insert(NodeId(0), 1); // the root is not a server
                                         // n3 left unassigned
        let errs = validate_assignment(&p, &service_of, 2);
        assert!(errs.contains(&ValidationError::ServerWithoutService(NodeId(3))));
        assert!(errs.contains(&ValidationError::AssignedNodeNotAServer(NodeId(0))));
        assert!(errs.contains(&ValidationError::ServiceIndexOutOfRange {
            node: NodeId(2),
            index: 5,
            services: 2
        }));
        assert_eq!(errs.len(), 3);
    }

    #[test]
    fn complete_assignment_is_valid() {
        let p = star(&ids(4));
        let mut service_of = BTreeMap::new();
        for (i, s) in p.servers().enumerate() {
            service_of.insert(p.node(s), i % 2);
        }
        assert!(validate_assignment(&p, &service_of, 2).is_empty());
    }

    #[test]
    fn roles_reported_in_plan_are_consistent() {
        let p = star(&ids(4));
        assert_eq!(p.role(p.root()), Role::Agent);
        for s in p.servers() {
            assert_eq!(p.role(s), Role::Server);
        }
    }
}
