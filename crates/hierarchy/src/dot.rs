//! Graphviz DOT rendering of deployment plans — handy for inspecting the
//! hierarchies the planners produce (the paper presents its Figure 6
//! deployment exactly this way: "top agent connected with 9 agents…").

use crate::plan::{DeploymentPlan, Role};
use adept_platform::Platform;
use std::fmt::Write as _;

/// Renders a plan as a DOT digraph. Agents are boxes, servers ellipses;
/// when a platform is given, labels carry host names and powers.
pub fn to_dot(plan: &DeploymentPlan, platform: Option<&Platform>) -> String {
    let mut out = String::with_capacity(plan.len() * 64 + 128);
    out.push_str("digraph deployment {\n  rankdir=TB;\n  node [fontsize=10];\n");
    for slot in plan.slots() {
        let node = plan.node(slot);
        let label = match platform.and_then(|p| p.node(node).ok()) {
            Some(r) => format!("{}\\n{} MFlop/s", r.name, r.power.value()),
            None => format!("{node}"),
        };
        let shape = match plan.role(slot) {
            Role::Agent => "box",
            Role::Server => "ellipse",
        };
        let _ = writeln!(out, "  n{} [label=\"{label}\", shape={shape}];", node.0);
    }
    for slot in plan.slots() {
        for &child in plan.children(slot) {
            let _ = writeln!(out, "  n{} -> n{};", plan.node(slot).0, plan.node(child).0);
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{balanced_two_level, star};
    use adept_platform::generator::lyon_cluster;
    use adept_platform::NodeId;

    fn ids(n: u32) -> Vec<NodeId> {
        (0..n).map(NodeId).collect()
    }

    #[test]
    fn dot_contains_all_nodes_and_edges() {
        let plan = balanced_two_level(&ids(10), 3);
        let dot = to_dot(&plan, None);
        assert!(dot.starts_with("digraph deployment {"));
        for i in 0..10 {
            assert!(dot.contains(&format!("n{i} [label=")), "node {i} missing");
        }
        // 9 edges in a 10-node tree.
        assert_eq!(dot.matches(" -> ").count(), 9);
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn dot_shapes_reflect_roles() {
        let plan = star(&ids(3));
        let dot = to_dot(&plan, None);
        assert!(dot.contains("n0 [label=\"n0\", shape=box]"));
        assert!(dot.contains("n1 [label=\"n1\", shape=ellipse]"));
    }

    #[test]
    fn dot_with_platform_uses_names() {
        let platform = lyon_cluster(3);
        let plan = star(&ids(3));
        let dot = to_dot(&plan, Some(&platform));
        assert!(dot.contains("lyon-0"));
        assert!(dot.contains("400 MFlop/s"));
    }
}
