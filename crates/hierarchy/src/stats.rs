//! Shape statistics of a hierarchy, used in experiment reports
//! (e.g. describing the automatically generated deployment of Figure 6:
//! "156 nodes … top agent connected with 9 agents …").

use crate::plan::DeploymentPlan;
use std::collections::BTreeMap;
use std::fmt;

/// Summary statistics of a deployment plan's shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HierarchyStats {
    /// Number of agent entries.
    pub agents: usize,
    /// Number of server entries.
    pub servers: usize,
    /// Tree depth (1 = lone root).
    pub depth: usize,
    /// Maximum agent out-degree.
    pub max_degree: usize,
    /// Out-degree of the root agent.
    pub root_degree: usize,
    /// Histogram of agent out-degrees (degree → count).
    pub degree_histogram: BTreeMap<usize, usize>,
    /// Number of entries per level (level 0 = root).
    pub level_sizes: Vec<usize>,
}

impl HierarchyStats {
    /// Computes statistics for a plan.
    pub fn of(plan: &DeploymentPlan) -> Self {
        let mut degree_histogram = BTreeMap::new();
        let mut max_degree = 0;
        for a in plan.agents() {
            let d = plan.degree(a);
            *degree_histogram.entry(d).or_insert(0) += 1;
            max_degree = max_degree.max(d);
        }
        let mut level_sizes = Vec::new();
        for s in plan.slots() {
            let lvl = plan.level(s);
            if lvl >= level_sizes.len() {
                level_sizes.resize(lvl + 1, 0);
            }
            level_sizes[lvl] += 1;
        }
        Self {
            agents: plan.agent_count(),
            servers: plan.server_count(),
            depth: plan.depth(),
            max_degree,
            root_degree: plan.degree(plan.root()),
            degree_histogram,
            level_sizes,
        }
    }

    /// Total nodes used by the plan.
    pub fn total_nodes(&self) -> usize {
        self.agents + self.servers
    }
}

/// Server partition of a multi-service deployment: how many of a plan's
/// servers host each service of the mix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionStats {
    /// Server count per service index.
    pub per_service: Vec<usize>,
    /// Plan servers with no assignment (0 for a valid deployment; see
    /// [`validate_assignment`](crate::validate::validate_assignment)).
    pub unassigned: usize,
}

impl PartitionStats {
    /// Counts a plan's servers per assigned service. Assignments pointing
    /// at out-of-range services count as unassigned.
    pub fn of(
        plan: &DeploymentPlan,
        service_of: &BTreeMap<adept_platform::NodeId, usize>,
        services: usize,
    ) -> Self {
        let mut per_service = vec![0usize; services];
        let mut unassigned = 0usize;
        for slot in plan.servers() {
            match service_of.get(&plan.node(slot)) {
                Some(&j) if j < services => per_service[j] += 1,
                _ => unassigned += 1,
            }
        }
        Self {
            per_service,
            unassigned,
        }
    }
}

impl fmt::Display for PartitionStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let counts: Vec<String> = self.per_service.iter().map(|c| c.to_string()).collect();
        write!(f, "servers per service [{}]", counts.join("/"))?;
        if self.unassigned > 0 {
            write!(f, " + {} unassigned", self.unassigned)?;
        }
        Ok(())
    }
}

impl fmt::Display for HierarchyStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} nodes ({} agents + {} servers), depth {}, root degree {}, max degree {}, levels {:?}",
            self.total_nodes(),
            self.agents,
            self.servers,
            self.depth,
            self.root_degree,
            self.max_degree,
            self.level_sizes,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{balanced_two_level, csd_tree, star};
    use adept_platform::NodeId;

    fn ids(n: u32) -> Vec<NodeId> {
        (0..n).map(NodeId).collect()
    }

    #[test]
    fn star_stats() {
        let s = HierarchyStats::of(&star(&ids(21)));
        assert_eq!(s.agents, 1);
        assert_eq!(s.servers, 20);
        assert_eq!(s.depth, 2);
        assert_eq!(s.root_degree, 20);
        assert_eq!(s.max_degree, 20);
        assert_eq!(s.level_sizes, vec![1, 20]);
        assert_eq!(s.total_nodes(), 21);
    }

    #[test]
    fn balanced_stats() {
        let s = HierarchyStats::of(&balanced_two_level(&ids(200), 14));
        assert_eq!(s.agents, 15);
        assert_eq!(s.servers, 185);
        assert_eq!(s.depth, 3);
        assert_eq!(s.root_degree, 14);
        // 185 servers round-robin over 14 agents: degrees 13 or 14.
        assert!(s.max_degree == 14);
        assert_eq!(s.level_sizes, vec![1, 14, 185]);
    }

    #[test]
    fn csd_stats_histogram() {
        let s = HierarchyStats::of(&csd_tree(&ids(7), 2));
        assert_eq!(s.degree_histogram.get(&2), Some(&3));
        assert_eq!(s.depth, 3);
    }

    #[test]
    fn display_mentions_counts() {
        let s = HierarchyStats::of(&star(&ids(3)));
        let d = s.to_string();
        assert!(d.contains("3 nodes"));
        assert!(d.contains("1 agents + 2 servers"));
    }

    #[test]
    fn partition_stats_count_per_service() {
        let plan = star(&ids(6)); // 5 servers
        let mut service_of = BTreeMap::new();
        for (i, s) in plan.servers().enumerate().take(4) {
            service_of.insert(plan.node(s), i % 2);
        }
        let p = PartitionStats::of(&plan, &service_of, 2);
        assert_eq!(p.per_service, vec![2, 2]);
        assert_eq!(p.unassigned, 1);
        let d = p.to_string();
        assert!(d.contains("[2/2]"));
        assert!(d.contains("1 unassigned"));
    }
}
