//! Adjacency-matrix form of a hierarchy — the paper's `plot_hierarchy`
//! procedure ("a function to fill the adjacency matrix. Adjacency matrix is
//! filled according to the number of children that each agent can support",
//! Table 1).
//!
//! The matrix is indexed by **platform node id**: `m[parent][child]` is set
//! when `child` is attached under `parent`. The adjacency form is what the
//! paper hands to the XML writer; we support the reverse direction too
//! (matrix → plan), which gives a simple canonical interchange format and a
//! proptest round-trip target.

use crate::plan::{DeploymentPlan, PlanError, Role, Slot};
use adept_platform::NodeId;
use std::fmt;

/// Dense boolean adjacency matrix over platform node ids `0..n`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdjacencyMatrix {
    n: usize,
    bits: Vec<bool>,
}

impl AdjacencyMatrix {
    /// An empty matrix over `n` node ids.
    pub fn new(n: usize) -> Self {
        Self {
            n,
            bits: vec![false; n * n],
        }
    }

    /// Matrix dimension (number of node ids).
    #[inline]
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Sets `parent → child`.
    ///
    /// # Panics
    /// Panics if either id is out of range.
    #[inline]
    pub fn set(&mut self, parent: NodeId, child: NodeId) {
        let (p, c) = (parent.index(), child.index());
        assert!(p < self.n && c < self.n, "node id out of range");
        self.bits[p * self.n + c] = true;
    }

    /// True if `parent → child` is present.
    ///
    /// # Panics
    /// Panics if either id is out of range.
    #[inline]
    pub fn get(&self, parent: NodeId, child: NodeId) -> bool {
        let (p, c) = (parent.index(), child.index());
        assert!(p < self.n && c < self.n, "node id out of range");
        self.bits[p * self.n + c]
    }

    /// Children of a node, ascending by id.
    pub fn children_of(&self, parent: NodeId) -> Vec<NodeId> {
        let p = parent.index();
        (0..self.n)
            .filter(|&c| self.bits[p * self.n + c])
            .map(|c| NodeId(c as u32))
            .collect()
    }

    /// Out-degree of a node.
    pub fn degree(&self, parent: NodeId) -> usize {
        let p = parent.index();
        (0..self.n).filter(|&c| self.bits[p * self.n + c]).count()
    }

    /// Builds the matrix of a plan (the paper's `plot_hierarchy`).
    ///
    /// The dimension is `max node id + 1` so the matrix can be overlaid on
    /// the originating platform.
    pub fn from_plan(plan: &DeploymentPlan) -> Self {
        let n = plan
            .slots()
            .map(|s| plan.node(s).index())
            .max()
            // audit: allow(unwrap, "invariant documented in the expect
            // message; plan validation guarantees it")
            .expect("plans always have a root")
            + 1;
        let mut m = Self::new(n);
        for slot in plan.slots() {
            for &child in plan.children(slot) {
                m.set(plan.node(slot), plan.node(child));
            }
        }
        m
    }

    /// Reconstructs a plan from the matrix.
    ///
    /// The root is the unique node with out-edges but no in-edge; interior
    /// nodes become agents, leaves servers. Children are attached in
    /// ascending id order.
    ///
    /// # Errors
    /// Returns a descriptive error string if the matrix is not a tree
    /// (no root, several roots, a node with two parents, or a cycle).
    pub fn to_plan(&self) -> Result<DeploymentPlan, String> {
        let mut in_deg = vec![0usize; self.n];
        let mut touched = vec![false; self.n];
        for p in 0..self.n {
            for c in 0..self.n {
                if self.bits[p * self.n + c] {
                    in_deg[c] += 1;
                    touched[p] = true;
                    touched[c] = true;
                }
            }
        }
        let roots: Vec<usize> = (0..self.n)
            .filter(|&i| touched[i] && in_deg[i] == 0)
            .collect();
        let root = match roots.as_slice() {
            [] => return Err("adjacency matrix has no root (empty or cyclic)".into()),
            [r] => *r,
            many => {
                return Err(format!(
                    "adjacency matrix has {} roots; a hierarchy has exactly one",
                    many.len()
                ))
            }
        };
        if let Some(bad) = (0..self.n).find(|&i| in_deg[i] > 1) {
            return Err(format!("node n{bad} has {} parents", in_deg[bad]));
        }
        let mut plan = DeploymentPlan::with_root(NodeId(root as u32));
        let mut stack: Vec<(usize, Slot)> = vec![(root, plan.root())];
        let mut visited = 1usize;
        while let Some((node, slot)) = stack.pop() {
            for child in self.children_of(NodeId(node as u32)) {
                if plan.role(slot) == Role::Server {
                    plan.convert_to_agent(slot)
                        // audit: allow(unwrap, "invariant documented in the
                        // expect message; plan validation guarantees it")
                        .expect("slot exists and is a server");
                }
                let child_slot = match plan.add_server(slot, child) {
                    Ok(s) => s,
                    Err(PlanError::NodeAlreadyUsed(n)) => {
                        return Err(format!("cycle detected through node {n}"))
                    }
                    Err(e) => return Err(format!("malformed matrix: {e}")),
                };
                visited += 1;
                stack.push((child.index(), child_slot));
            }
        }
        let touched_count = touched.iter().filter(|&&t| t).count();
        if visited != touched_count {
            return Err(format!(
                "matrix is a forest: reached {visited} of {touched_count} touched nodes"
            ));
        }
        Ok(plan)
    }
}

impl fmt::Display for AdjacencyMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for p in 0..self.n {
            for c in 0..self.n {
                write!(f, "{}", u8::from(self.bits[p * self.n + c]))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{balanced_two_level, csd_tree, star};

    fn ids(n: u32) -> Vec<NodeId> {
        (0..n).map(NodeId).collect()
    }

    #[test]
    fn star_matrix() {
        let m = AdjacencyMatrix::from_plan(&star(&ids(4)));
        assert_eq!(m.dim(), 4);
        assert_eq!(m.degree(NodeId(0)), 3);
        assert!(m.get(NodeId(0), NodeId(3)));
        assert!(!m.get(NodeId(3), NodeId(0)));
    }

    #[test]
    fn roundtrip_star() {
        let p = star(&ids(6));
        let m = AdjacencyMatrix::from_plan(&p);
        let q = m.to_plan().unwrap();
        assert_eq!(AdjacencyMatrix::from_plan(&q), m);
        assert_eq!(q.server_count(), p.server_count());
    }

    #[test]
    fn roundtrip_preserves_structure_for_csd() {
        for d in 2..6 {
            let p = csd_tree(&ids(20), d);
            let m = AdjacencyMatrix::from_plan(&p);
            let q = m.to_plan().unwrap();
            assert_eq!(AdjacencyMatrix::from_plan(&q), m, "degree {d}");
            assert_eq!(q.agent_count(), p.agent_count(), "degree {d}");
            assert_eq!(q.depth(), p.depth(), "degree {d}");
        }
    }

    #[test]
    fn roundtrip_balanced() {
        let p = balanced_two_level(&ids(14), 3);
        let q = AdjacencyMatrix::from_plan(&p).to_plan().unwrap();
        assert_eq!(q.agent_count(), 4);
        assert_eq!(q.server_count(), 10);
    }

    #[test]
    fn empty_matrix_has_no_root() {
        assert!(AdjacencyMatrix::new(4).to_plan().is_err());
    }

    #[test]
    fn two_roots_rejected() {
        let mut m = AdjacencyMatrix::new(4);
        m.set(NodeId(0), NodeId(1));
        m.set(NodeId(2), NodeId(3));
        let err = m.to_plan().unwrap_err();
        assert!(err.contains("2 roots"), "{err}");
    }

    #[test]
    fn double_parent_rejected() {
        let mut m = AdjacencyMatrix::new(3);
        m.set(NodeId(0), NodeId(2));
        m.set(NodeId(1), NodeId(2));
        // Both 0 and 1 are roots AND 2 has two parents; either error is
        // acceptable, but one must fire.
        assert!(m.to_plan().is_err());
    }

    #[test]
    fn cycle_rejected() {
        let mut m = AdjacencyMatrix::new(3);
        m.set(NodeId(0), NodeId(1));
        m.set(NodeId(1), NodeId(2));
        m.set(NodeId(2), NodeId(1));
        assert!(m.to_plan().is_err());
    }

    #[test]
    fn display_renders_rows() {
        let mut m = AdjacencyMatrix::new(2);
        m.set(NodeId(0), NodeId(1));
        assert_eq!(m.to_string(), "01\n00\n");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        let m = AdjacencyMatrix::new(2);
        let _ = m.get(NodeId(5), NodeId(0));
    }
}
