//! The deployment plan: a rooted tree of agents and servers over platform
//! nodes.
//!
//! The representation is **structure-of-arrays**: per-slot node, role and
//! parent live in parallel `Vec`s indexed by [`Slot`], and all child lists
//! share one contiguous arena (`children` + per-slot `(start, len, cap)`
//! ranges) instead of one heap `Vec` per entry. Traversals are
//! allocation-free, clones are flat `memcpy`s, and building a plan of n
//! entries costs O(1) allocations instead of O(n) — the layout that keeps
//! `realize`/`PlanDiff::apply` linear at n = 10⁵–10⁶ slots. When a slot's
//! child block fills up it relocates to the arena's end with doubled
//! capacity (amortized O(1) per attach; the abandoned block is bounded
//! garbage, at most half the arena). The bulk constructor
//! [`DeploymentPlan::from_parts`] sizes every block exactly from a parent
//! array in one counting pass.
//!
//! Every entry maps to a distinct platform
//! [`adept_platform::NodeId`] (the paper never shares a machine
//! between two middleware elements).

// audit: allow-file(unwrap, "plan surgery keeps nodes/parents consistent by
// construction; each expect documents the invariant and the proptest suite
// exercises the mutation paths")
use adept_platform::NodeId;
use std::collections::HashSet;
use std::fmt;

/// Role of a node in the hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Role {
    /// Scheduler element (the paper's `a ∈ A`): forwards requests down,
    /// aggregates replies up.
    Agent,
    /// Service daemon (the paper's `s ∈ S`, a SeD): predicts and executes.
    Server,
}

impl fmt::Display for Role {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Role::Agent => write!(f, "agent"),
            Role::Server => write!(f, "server"),
        }
    }
}

/// Index of an entry inside a [`DeploymentPlan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Slot(pub usize);

impl Slot {
    /// The raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for Slot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// Errors raised by plan mutation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// The platform node is already used by another entry.
    NodeAlreadyUsed(NodeId),
    /// The slot does not exist.
    InvalidSlot(Slot),
    /// The referenced parent entry is a server; only agents have children.
    ParentIsServer(Slot),
    /// Attempted to convert an entry that is not a server.
    NotAServer(Slot),
    /// Attempted to convert an entry that is not an agent.
    NotAnAgent(Slot),
    /// Attempted to demote an agent that still has children.
    AgentHasChildren(Slot),
    /// Attempted to remove the root.
    CannotRemoveRoot,
    /// Reparenting would make an entry its own ancestor.
    WouldCreateCycle(Slot),
    /// A multi-service operation referenced a service index outside the
    /// mix.
    InvalidServiceIndex {
        /// The out-of-range index.
        index: usize,
        /// How many services the mix holds.
        services: usize,
    },
    /// A server of a multi-service deployment has no service assignment.
    ServerNotAssigned(NodeId),
    /// A multi-service deployment does not hold enough servers to give
    /// every demanded service at least one.
    NotEnoughServers {
        /// Servers required (one per service with positive share).
        needed: usize,
        /// Servers available in the plan.
        available: usize,
    },
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::NodeAlreadyUsed(n) => write!(f, "node {n} already used in the plan"),
            PlanError::InvalidSlot(s) => write!(f, "invalid plan slot {s}"),
            PlanError::ParentIsServer(s) => write!(f, "parent slot {s} is a server"),
            PlanError::NotAServer(s) => write!(f, "slot {s} is not a server"),
            PlanError::NotAnAgent(s) => write!(f, "slot {s} is not an agent"),
            PlanError::AgentHasChildren(s) => {
                write!(f, "agent slot {s} still has children")
            }
            PlanError::CannotRemoveRoot => write!(f, "cannot remove the root agent"),
            PlanError::WouldCreateCycle(s) => {
                write!(f, "reparenting slot {s} would create a cycle")
            }
            PlanError::InvalidServiceIndex { index, services } => {
                write!(f, "service index {index} out of range (mix has {services})")
            }
            PlanError::ServerNotAssigned(n) => {
                write!(f, "server node {n} has no service assignment")
            }
            PlanError::NotEnoughServers { needed, available } => write!(
                f,
                "not enough servers for the mix: need {needed}, plan has {available}"
            ),
        }
    }
}

impl std::error::Error for PlanError {}

/// A rooted hierarchy of agents and servers.
///
/// Invariants maintained by construction:
/// * exactly one root (slot 0), an agent with no parent;
/// * every non-root entry has exactly one parent, which is an agent;
/// * every platform node appears at most once;
/// * servers have no children.
///
/// The paper's additional rule (non-root agents have ≥ 2 children, root has
/// ≥ 1) is checked by [`validate`](crate::validate::validate) rather than by
/// construction, because the heuristic legitimately passes through
/// intermediate states that violate it.
///
/// See the module docs for the structure-of-arrays layout.
#[derive(Debug, Clone)]
pub struct DeploymentPlan {
    nodes: Vec<NodeId>,
    roles: Vec<Role>,
    parents: Vec<Option<Slot>>,
    /// Arena offset of each slot's child block.
    child_start: Vec<usize>,
    /// Live children within the block.
    child_len: Vec<usize>,
    /// Allocated block size (`len ≤ cap`).
    child_cap: Vec<usize>,
    /// Shared child arena; `Slot(usize::MAX)` marks unused capacity.
    arena: Vec<Slot>,
    used: HashSet<NodeId>,
}

impl PartialEq for DeploymentPlan {
    /// Logical equality: same entries (node, role, parent) and the same
    /// child order per slot — arena layout (block placement, spare
    /// capacity, relocation garbage) is representation, not state.
    fn eq(&self, other: &Self) -> bool {
        self.nodes == other.nodes
            && self.roles == other.roles
            && self.parents == other.parents
            && self.slots().all(|s| self.children(s) == other.children(s))
    }
}

impl DeploymentPlan {
    /// A plan with a lone root agent.
    pub fn with_root(root: NodeId) -> Self {
        let mut used = HashSet::new();
        used.insert(root);
        Self {
            nodes: vec![root],
            roles: vec![Role::Agent],
            parents: vec![None],
            child_start: vec![0],
            child_len: vec![0],
            child_cap: vec![0],
            arena: Vec::new(),
            used,
        }
    }

    /// Builds a plan in one pass from parallel per-slot arrays — the bulk
    /// constructor behind `realize` and `PlanDiff::apply`. Child blocks
    /// are sized exactly by a counting pass over `parents` (no relocation
    /// garbage); each slot's children end up in ascending slot order,
    /// which equals insertion order for any plan grown by appends.
    ///
    /// # Errors
    /// [`PlanError::NotAnAgent`] when slot 0 is a server or a parent is,
    /// wrapped as [`PlanError::ParentIsServer`];
    /// [`PlanError::InvalidSlot`] when slot 0 has a parent, a non-root
    /// slot has none, or a parent index is out of range;
    /// [`PlanError::NodeAlreadyUsed`] on a duplicate platform node;
    /// [`PlanError::WouldCreateCycle`] when some entry is unreachable
    /// from the root (a parent cycle).
    ///
    /// # Panics
    /// Panics when the arrays are empty or differ in length.
    pub fn from_parts(
        nodes: Vec<NodeId>,
        roles: Vec<Role>,
        parents: Vec<Option<Slot>>,
    ) -> Result<Self, PlanError> {
        let n = nodes.len();
        assert!(n > 0, "a plan always holds at least the root");
        assert!(
            roles.len() == n && parents.len() == n,
            "one role and one parent per slot"
        );
        if roles[0] != Role::Agent {
            return Err(PlanError::NotAnAgent(Slot(0)));
        }
        if parents[0].is_some() {
            return Err(PlanError::InvalidSlot(Slot(0)));
        }
        let mut used = HashSet::with_capacity(n);
        for &node in &nodes {
            if !used.insert(node) {
                return Err(PlanError::NodeAlreadyUsed(node));
            }
        }
        // Counting pass: exact child block per slot.
        let mut child_len = vec![0usize; n];
        for (i, &parent) in parents.iter().enumerate().skip(1) {
            let Some(p) = parent else {
                return Err(PlanError::InvalidSlot(Slot(i)));
            };
            if p.0 >= n {
                return Err(PlanError::InvalidSlot(p));
            }
            if roles[p.0] != Role::Agent {
                return Err(PlanError::ParentIsServer(p));
            }
            child_len[p.0] += 1;
        }
        let mut child_start = vec![0usize; n];
        let mut offset = 0usize;
        for i in 0..n {
            child_start[i] = offset;
            offset += child_len[i];
        }
        let mut arena = vec![Slot(usize::MAX); offset];
        let mut fill = vec![0usize; n];
        for (i, &parent) in parents.iter().enumerate().skip(1) {
            let p = parent.expect("validated above").0;
            arena[child_start[p] + fill[p]] = Slot(i);
            fill[p] += 1;
        }
        let plan = Self {
            nodes,
            roles,
            parents,
            child_cap: child_len.clone(),
            child_start,
            child_len,
            arena,
            used,
        };
        // Reachability: a parent array can encode a cycle detached from
        // the root; BFS must visit every slot.
        let mut seen = 1usize;
        let mut queue = std::collections::VecDeque::from([plan.root()]);
        let mut visited = vec![false; n];
        visited[0] = true;
        while let Some(s) = queue.pop_front() {
            for &c in plan.children(s) {
                if !visited[c.0] {
                    visited[c.0] = true;
                    seen += 1;
                    queue.push_back(c);
                }
            }
        }
        if seen != n {
            let orphan = visited.iter().position(|&v| !v).expect("seen < n");
            return Err(PlanError::WouldCreateCycle(Slot(orphan)));
        }
        Ok(plan)
    }

    /// Appends `child` to `parent`'s child block, relocating the block to
    /// the arena's end with doubled capacity when full (amortized O(1)).
    fn push_child(&mut self, parent: usize, child: Slot) {
        let len = self.child_len[parent];
        if len == self.child_cap[parent] {
            let new_cap = (self.child_cap[parent] * 2).max(4);
            let old_start = self.child_start[parent];
            let new_start = self.arena.len();
            self.arena.reserve(new_cap);
            for i in 0..len {
                let v = self.arena[old_start + i];
                self.arena.push(v);
            }
            self.arena.resize(new_start + new_cap, Slot(usize::MAX));
            self.child_start[parent] = new_start;
            self.child_cap[parent] = new_cap;
        }
        self.arena[self.child_start[parent] + len] = child;
        self.child_len[parent] = len + 1;
    }

    /// Removes `child` from `parent`'s child block, preserving the order
    /// of the remaining children.
    fn remove_child(&mut self, parent: usize, child: Slot) {
        let start = self.child_start[parent];
        let len = self.child_len[parent];
        let block = &mut self.arena[start..start + len];
        if let Some(pos) = block.iter().position(|&c| c == child) {
            block.copy_within(pos + 1.., pos);
            self.child_len[parent] = len - 1;
        }
    }

    /// The paper's smallest deployment: one agent, one server (Algorithm 1,
    /// step 7).
    pub fn agent_server(agent: NodeId, server: NodeId) -> Self {
        let mut plan = Self::with_root(agent);
        plan.add_server(Slot(0), server)
            .expect("fresh plan accepts a server");
        plan
    }

    /// The root slot (always `Slot(0)`).
    #[inline]
    pub fn root(&self) -> Slot {
        Slot(0)
    }

    /// Number of entries (agents + servers).
    #[inline]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the plan holds only the root.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 1
    }

    fn check(&self, slot: Slot) -> Result<(), PlanError> {
        if slot.0 < self.nodes.len() {
            Ok(())
        } else {
            Err(PlanError::InvalidSlot(slot))
        }
    }

    /// Adds a server under `parent`.
    ///
    /// # Errors
    /// [`PlanError::InvalidSlot`], [`PlanError::ParentIsServer`], or
    /// [`PlanError::NodeAlreadyUsed`].
    pub fn add_server(&mut self, parent: Slot, node: NodeId) -> Result<Slot, PlanError> {
        self.add(parent, node, Role::Server)
    }

    /// Adds an agent under `parent`.
    ///
    /// # Errors
    /// Same conditions as [`DeploymentPlan::add_server`].
    pub fn add_agent(&mut self, parent: Slot, node: NodeId) -> Result<Slot, PlanError> {
        self.add(parent, node, Role::Agent)
    }

    fn add(&mut self, parent: Slot, node: NodeId, role: Role) -> Result<Slot, PlanError> {
        self.check(parent)?;
        if self.roles[parent.0] != Role::Agent {
            return Err(PlanError::ParentIsServer(parent));
        }
        if self.used.contains(&node) {
            return Err(PlanError::NodeAlreadyUsed(node));
        }
        let slot = Slot(self.nodes.len());
        self.nodes.push(node);
        self.roles.push(role);
        self.parents.push(Some(parent));
        self.child_start.push(self.arena.len());
        self.child_len.push(0);
        self.child_cap.push(0);
        self.push_child(parent.0, slot);
        self.used.insert(node);
        Ok(slot)
    }

    /// Converts a server into an agent — the paper's `shift_nodes`
    /// procedure ("if any server is converted as an agent", Table 1). The
    /// entry keeps its node and parent; it can now receive children.
    ///
    /// # Errors
    /// [`PlanError::InvalidSlot`] or [`PlanError::NotAServer`].
    pub fn convert_to_agent(&mut self, slot: Slot) -> Result<(), PlanError> {
        self.check(slot)?;
        if self.roles[slot.0] != Role::Server {
            return Err(PlanError::NotAServer(slot));
        }
        self.roles[slot.0] = Role::Agent;
        Ok(())
    }

    /// Converts a childless non-root agent back into a server — the inverse
    /// of [`DeploymentPlan::convert_to_agent`], used by incremental planners
    /// to retract a speculative promotion.
    ///
    /// # Errors
    /// [`PlanError::InvalidSlot`], [`PlanError::NotAnAgent`],
    /// [`PlanError::CannotRemoveRoot`] for the root, or
    /// [`PlanError::AgentHasChildren`] when children are still attached.
    pub fn convert_to_server(&mut self, slot: Slot) -> Result<(), PlanError> {
        if slot.0 == 0 {
            return Err(PlanError::CannotRemoveRoot);
        }
        self.check(slot)?;
        if self.roles[slot.0] != Role::Agent {
            return Err(PlanError::NotAnAgent(slot));
        }
        if self.child_len[slot.0] != 0 {
            return Err(PlanError::AgentHasChildren(slot));
        }
        self.roles[slot.0] = Role::Server;
        Ok(())
    }

    /// Reparents `child` (and its whole subtree) under `new_parent` — the
    /// `move_child` delta of the incremental evaluation engine. A no-op when
    /// `new_parent` already is the parent.
    ///
    /// # Errors
    /// [`PlanError::CannotRemoveRoot`] for the root,
    /// [`PlanError::InvalidSlot`], [`PlanError::ParentIsServer`] when the
    /// target is a server, or [`PlanError::WouldCreateCycle`] when the
    /// target sits inside `child`'s subtree.
    pub fn move_child(&mut self, child: Slot, new_parent: Slot) -> Result<(), PlanError> {
        if child.0 == 0 {
            return Err(PlanError::CannotRemoveRoot);
        }
        self.check(child)?;
        self.check(new_parent)?;
        if self.roles[new_parent.0] != Role::Agent {
            return Err(PlanError::ParentIsServer(new_parent));
        }
        // Walk up from the target: hitting `child` means the target lives
        // inside the moved subtree.
        let mut cursor = Some(new_parent);
        while let Some(s) = cursor {
            if s == child {
                return Err(PlanError::WouldCreateCycle(child));
            }
            cursor = self.parents[s.0];
        }
        let old_parent = self.parents[child.0].expect("non-root entries always have a parent");
        if old_parent == new_parent {
            return Ok(());
        }
        self.remove_child(old_parent.0, child);
        self.push_child(new_parent.0, child);
        self.parents[child.0] = Some(new_parent);
        Ok(())
    }

    /// Removes the most recently added entry (Algorithm 1, step 30 removes
    /// a child from the last agent when throughput degraded). The vacated
    /// platform node can be reused afterwards.
    ///
    /// Removal is restricted to the **last added** entry, which is exactly
    /// how the heuristic uses it (it retracts its most recent addition);
    /// this keeps the index-based representation hole-free. Children always
    /// carry larger indices than their parent, so the last entry never has
    /// children.
    ///
    /// # Errors
    /// [`PlanError::InvalidSlot`] if `slot` is not the last entry,
    /// [`PlanError::CannotRemoveRoot`] for the root.
    pub fn remove_last(&mut self, slot: Slot) -> Result<NodeId, PlanError> {
        if slot.0 == 0 {
            return Err(PlanError::CannotRemoveRoot);
        }
        if slot.0 != self.nodes.len() - 1 {
            return Err(PlanError::InvalidSlot(slot));
        }
        debug_assert!(
            self.child_len[slot.0] == 0,
            "children always have larger indices than their parent"
        );
        let node = self.nodes.pop().expect("len >= 2 checked above");
        self.roles.pop();
        let parent = self.parents.pop().expect("popped with nodes");
        self.child_start.pop();
        self.child_len.pop();
        self.child_cap.pop();
        if let Some(p) = parent {
            self.remove_child(p.0, slot);
        }
        self.used.remove(&node);
        Ok(node)
    }

    /// Platform node of an entry.
    ///
    /// # Panics
    /// Panics on an invalid slot.
    #[inline]
    pub fn node(&self, slot: Slot) -> NodeId {
        self.nodes[slot.0]
    }

    /// Role of an entry.
    ///
    /// # Panics
    /// Panics on an invalid slot.
    #[inline]
    pub fn role(&self, slot: Slot) -> Role {
        self.roles[slot.0]
    }

    /// Parent of an entry (`None` for the root).
    ///
    /// # Panics
    /// Panics on an invalid slot.
    #[inline]
    pub fn parent(&self, slot: Slot) -> Option<Slot> {
        self.parents[slot.0]
    }

    /// Children of an entry, in insertion order.
    ///
    /// # Panics
    /// Panics on an invalid slot.
    #[inline]
    pub fn children(&self, slot: Slot) -> &[Slot] {
        let start = self.child_start[slot.0];
        &self.arena[start..start + self.child_len[slot.0]]
    }

    /// Number of children (the paper's `d_i`).
    ///
    /// # Panics
    /// Panics on an invalid slot.
    #[inline]
    pub fn degree(&self, slot: Slot) -> usize {
        self.child_len[slot.0]
    }

    /// All slots, in insertion order.
    pub fn slots(&self) -> impl Iterator<Item = Slot> + '_ {
        (0..self.nodes.len()).map(Slot)
    }

    /// Slots of all agents.
    pub fn agents(&self) -> impl Iterator<Item = Slot> + '_ {
        self.roles
            .iter()
            .enumerate()
            .filter(|(_, &r)| r == Role::Agent)
            .map(|(i, _)| Slot(i))
    }

    /// Slots of all servers.
    pub fn servers(&self) -> impl Iterator<Item = Slot> + '_ {
        self.roles
            .iter()
            .enumerate()
            .filter(|(_, &r)| r == Role::Server)
            .map(|(i, _)| Slot(i))
    }

    /// Number of agents.
    pub fn agent_count(&self) -> usize {
        self.roles.iter().filter(|&&r| r == Role::Agent).count()
    }

    /// Number of servers.
    pub fn server_count(&self) -> usize {
        self.roles.iter().filter(|&&r| r == Role::Server).count()
    }

    /// Platform nodes of all servers, in insertion order.
    pub fn server_nodes(&self) -> Vec<NodeId> {
        self.roles
            .iter()
            .zip(&self.nodes)
            .filter(|(&r, _)| r == Role::Server)
            .map(|(_, &n)| n)
            .collect()
    }

    /// True if the platform node is used anywhere in the plan.
    #[inline]
    pub fn uses_node(&self, node: NodeId) -> bool {
        self.used.contains(&node)
    }

    /// Depth of the tree: 1 for a lone root, 2 for a star, etc.
    pub fn depth(&self) -> usize {
        fn rec(plan: &DeploymentPlan, s: Slot) -> usize {
            1 + plan
                .children(s)
                .iter()
                .map(|&c| rec(plan, c))
                .max()
                .unwrap_or(0)
        }
        rec(self, self.root())
    }

    /// Depth of a slot below the root (root = 0).
    pub fn level(&self, slot: Slot) -> usize {
        let mut lvl = 0;
        let mut cur = slot;
        while let Some(p) = self.parent(cur) {
            lvl += 1;
            cur = p;
        }
        lvl
    }

    /// Slots in breadth-first order from the root.
    pub fn bfs_order(&self) -> Vec<Slot> {
        let mut out = Vec::with_capacity(self.nodes.len());
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(self.root());
        while let Some(s) = queue.pop_front() {
            out.push(s);
            queue.extend(self.children(s).iter().copied());
        }
        out
    }

    /// True if two plans describe the same hierarchy over the same platform
    /// nodes: identical parent and role for every node, regardless of slot
    /// numbering or child insertion order. This is the right equality for
    /// round-trip tests (XML and adjacency serialization do not preserve
    /// slot order).
    pub fn structurally_eq(&self, other: &DeploymentPlan) -> bool {
        if self.len() != other.len() {
            return false;
        }
        let describe = |plan: &DeploymentPlan| {
            let mut map = std::collections::BTreeMap::new();
            for s in plan.slots() {
                map.insert(
                    plan.node(s),
                    (plan.parent(s).map(|p| plan.node(p)), plan.role(s)),
                );
            }
            map
        };
        describe(self) == describe(other)
    }

    /// An ASCII rendering of the tree, for logs and examples.
    pub fn render(&self) -> String {
        fn rec(plan: &DeploymentPlan, s: Slot, prefix: &str, last: bool, out: &mut String) {
            let branch = if s.0 == 0 {
                ""
            } else if last {
                "└── "
            } else {
                "├── "
            };
            out.push_str(prefix);
            out.push_str(branch);
            out.push_str(&format!("{} {}\n", plan.role(s), plan.node(s)));
            let child_prefix = if s.0 == 0 {
                String::new()
            } else {
                format!("{prefix}{}", if last { "    " } else { "│   " })
            };
            let kids = plan.children(s);
            for (i, &c) in kids.iter().enumerate() {
                rec(plan, c, &child_prefix, i + 1 == kids.len(), out);
            }
        }
        let mut out = String::new();
        rec(self, self.root(), "", true, &mut out);
        out
    }
}

impl fmt::Display for DeploymentPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "plan: {} agents, {} servers, depth {}",
            self.agent_count(),
            self.server_count(),
            self.depth()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn root_only_plan() {
        let p = DeploymentPlan::with_root(n(0));
        assert_eq!(p.len(), 1);
        assert!(p.is_empty());
        assert_eq!(p.role(p.root()), Role::Agent);
        assert_eq!(p.parent(p.root()), None);
        assert_eq!(p.depth(), 1);
    }

    #[test]
    fn agent_server_pair() {
        let p = DeploymentPlan::agent_server(n(0), n(1));
        assert_eq!(p.agent_count(), 1);
        assert_eq!(p.server_count(), 1);
        assert_eq!(p.depth(), 2);
        assert_eq!(p.degree(p.root()), 1);
        assert_eq!(p.server_nodes(), vec![n(1)]);
    }

    #[test]
    fn from_parts_matches_incremental_build() {
        let mut by_add = DeploymentPlan::with_root(n(0));
        let a = by_add.add_agent(Slot(0), n(1)).unwrap();
        by_add.add_server(Slot(0), n(2)).unwrap();
        by_add.add_server(a, n(3)).unwrap();
        by_add.add_server(a, n(4)).unwrap();

        let bulk = DeploymentPlan::from_parts(
            vec![n(0), n(1), n(2), n(3), n(4)],
            vec![
                Role::Agent,
                Role::Agent,
                Role::Server,
                Role::Server,
                Role::Server,
            ],
            vec![
                None,
                Some(Slot(0)),
                Some(Slot(0)),
                Some(Slot(1)),
                Some(Slot(1)),
            ],
        )
        .unwrap();
        assert_eq!(bulk, by_add);
        assert_eq!(bulk.children(Slot(0)), &[Slot(1), Slot(2)]);
        assert_eq!(bulk.children(Slot(1)), &[Slot(3), Slot(4)]);
        assert_eq!(bulk.bfs_order(), by_add.bfs_order());
    }

    #[test]
    fn from_parts_rejects_server_root() {
        let err = DeploymentPlan::from_parts(
            vec![n(0), n(1)],
            vec![Role::Server, Role::Agent],
            vec![None, Some(Slot(0))],
        )
        .unwrap_err();
        assert_eq!(err, PlanError::NotAnAgent(Slot(0)));
    }

    #[test]
    fn from_parts_rejects_server_parent() {
        let err = DeploymentPlan::from_parts(
            vec![n(0), n(1), n(2)],
            vec![Role::Agent, Role::Server, Role::Server],
            vec![None, Some(Slot(0)), Some(Slot(1))],
        )
        .unwrap_err();
        assert_eq!(err, PlanError::ParentIsServer(Slot(1)));
    }

    #[test]
    fn from_parts_rejects_duplicate_node() {
        let err = DeploymentPlan::from_parts(
            vec![n(0), n(0)],
            vec![Role::Agent, Role::Server],
            vec![None, Some(Slot(0))],
        )
        .unwrap_err();
        assert_eq!(err, PlanError::NodeAlreadyUsed(n(0)));
    }

    #[test]
    fn from_parts_rejects_detached_cycle() {
        // Slots 1 and 2 parent each other: valid in-range agent parents,
        // but unreachable from the root.
        let err = DeploymentPlan::from_parts(
            vec![n(0), n(1), n(2)],
            vec![Role::Agent, Role::Agent, Role::Agent],
            vec![None, Some(Slot(2)), Some(Slot(1))],
        )
        .unwrap_err();
        assert_eq!(err, PlanError::WouldCreateCycle(Slot(1)));
    }

    #[test]
    fn from_parts_plan_stays_mutable() {
        let mut p = DeploymentPlan::from_parts(
            vec![n(0), n(1)],
            vec![Role::Agent, Role::Server],
            vec![None, Some(Slot(0))],
        )
        .unwrap();
        // Exact-capacity child blocks must still grow via relocation.
        let s = p.add_server(Slot(0), n(2)).unwrap();
        assert_eq!(p.children(Slot(0)), &[Slot(1), s]);
        assert_eq!(p.remove_last(s), Ok(n(2)));
        assert_eq!(p.children(Slot(0)), &[Slot(1)]);
    }

    #[test]
    fn duplicate_node_rejected() {
        let mut p = DeploymentPlan::with_root(n(0));
        assert_eq!(
            p.add_server(Slot(0), n(0)),
            Err(PlanError::NodeAlreadyUsed(n(0)))
        );
    }

    #[test]
    fn server_cannot_parent() {
        let mut p = DeploymentPlan::agent_server(n(0), n(1));
        assert_eq!(
            p.add_server(Slot(1), n(2)),
            Err(PlanError::ParentIsServer(Slot(1)))
        );
    }

    #[test]
    fn invalid_slot_rejected() {
        let mut p = DeploymentPlan::with_root(n(0));
        assert_eq!(
            p.add_server(Slot(9), n(1)),
            Err(PlanError::InvalidSlot(Slot(9)))
        );
    }

    #[test]
    fn convert_server_to_agent_allows_children() {
        let mut p = DeploymentPlan::agent_server(n(0), n(1));
        p.convert_to_agent(Slot(1)).unwrap();
        assert_eq!(p.role(Slot(1)), Role::Agent);
        let s = p.add_server(Slot(1), n(2)).unwrap();
        assert_eq!(p.parent(s), Some(Slot(1)));
        assert_eq!(p.depth(), 3);
    }

    #[test]
    fn convert_agent_fails() {
        let mut p = DeploymentPlan::with_root(n(0));
        assert_eq!(
            p.convert_to_agent(Slot(0)),
            Err(PlanError::NotAServer(Slot(0)))
        );
    }

    #[test]
    fn remove_last_frees_node() {
        let mut p = DeploymentPlan::agent_server(n(0), n(1));
        let s = p.add_server(Slot(0), n(2)).unwrap();
        assert_eq!(p.remove_last(s).unwrap(), n(2));
        assert_eq!(p.server_count(), 1);
        assert!(!p.uses_node(n(2)));
        // The node can be reused.
        p.add_server(Slot(0), n(2)).unwrap();
        assert!(p.uses_node(n(2)));
    }

    #[test]
    fn remove_non_last_rejected() {
        let mut p = DeploymentPlan::agent_server(n(0), n(1));
        p.add_server(Slot(0), n(2)).unwrap();
        assert_eq!(p.remove_last(Slot(1)), Err(PlanError::InvalidSlot(Slot(1))));
    }

    #[test]
    fn remove_root_rejected() {
        let mut p = DeploymentPlan::with_root(n(0));
        assert_eq!(p.remove_last(Slot(0)), Err(PlanError::CannotRemoveRoot));
    }

    #[test]
    fn remove_parent_of_children_is_never_last() {
        let mut p = DeploymentPlan::agent_server(n(0), n(1));
        p.convert_to_agent(Slot(1)).unwrap();
        p.add_server(Slot(1), n(2)).unwrap();
        // Slot(1) has a child, so it is not the last entry and cannot be
        // removed; only its child Slot(2) can.
        assert_eq!(p.remove_last(Slot(1)), Err(PlanError::InvalidSlot(Slot(1))));
        assert_eq!(p.remove_last(Slot(2)).unwrap(), n(2));
    }

    #[test]
    fn demote_childless_agent_roundtrip() {
        let mut p = DeploymentPlan::agent_server(n(0), n(1));
        p.convert_to_agent(Slot(1)).unwrap();
        p.convert_to_server(Slot(1)).unwrap();
        assert_eq!(p.role(Slot(1)), Role::Server);
    }

    #[test]
    fn demote_rejects_root_parents_and_servers() {
        let mut p = DeploymentPlan::agent_server(n(0), n(1));
        p.convert_to_agent(Slot(1)).unwrap();
        p.add_server(Slot(1), n(2)).unwrap();
        assert_eq!(
            p.convert_to_server(Slot(0)),
            Err(PlanError::CannotRemoveRoot)
        );
        assert_eq!(
            p.convert_to_server(Slot(1)),
            Err(PlanError::AgentHasChildren(Slot(1)))
        );
        assert_eq!(
            p.convert_to_server(Slot(2)),
            Err(PlanError::NotAnAgent(Slot(2)))
        );
    }

    #[test]
    fn move_child_reparents_subtree() {
        // root -> a(1) -> s(2), root -> s(3); move s(3) under a(1).
        let mut p = DeploymentPlan::with_root(n(0));
        let a = p.add_agent(Slot(0), n(1)).unwrap();
        p.add_server(a, n(2)).unwrap();
        let s3 = p.add_server(p.root(), n(3)).unwrap();
        p.move_child(s3, a).unwrap();
        assert_eq!(p.parent(s3), Some(a));
        assert_eq!(p.degree(p.root()), 1);
        assert_eq!(p.degree(a), 2);
        assert_eq!(p.level(s3), 2);
    }

    #[test]
    fn move_child_to_same_parent_is_noop() {
        let mut p = DeploymentPlan::agent_server(n(0), n(1));
        p.move_child(Slot(1), Slot(0)).unwrap();
        assert_eq!(p.parent(Slot(1)), Some(Slot(0)));
        assert_eq!(p.degree(Slot(0)), 1);
    }

    #[test]
    fn move_child_rejects_cycles_roots_and_server_targets() {
        let mut p = DeploymentPlan::with_root(n(0));
        let a = p.add_agent(Slot(0), n(1)).unwrap();
        let b = p.add_agent(a, n(2)).unwrap();
        let s = p.add_server(b, n(3)).unwrap();
        assert_eq!(p.move_child(Slot(0), a), Err(PlanError::CannotRemoveRoot));
        assert_eq!(p.move_child(a, b), Err(PlanError::WouldCreateCycle(a)));
        assert_eq!(p.move_child(a, a), Err(PlanError::WouldCreateCycle(a)));
        assert_eq!(p.move_child(b, s), Err(PlanError::ParentIsServer(s)));
    }

    #[test]
    fn levels_and_bfs() {
        let mut p = DeploymentPlan::with_root(n(0));
        let a = p.add_agent(Slot(0), n(1)).unwrap();
        let s1 = p.add_server(a, n(2)).unwrap();
        let s2 = p.add_server(p.root(), n(3)).unwrap();
        assert_eq!(p.level(p.root()), 0);
        assert_eq!(p.level(a), 1);
        assert_eq!(p.level(s1), 2);
        assert_eq!(p.level(s2), 1);
        assert_eq!(p.bfs_order(), vec![Slot(0), a, s2, s1]);
    }

    #[test]
    fn render_contains_all_entries() {
        let mut p = DeploymentPlan::with_root(n(0));
        let a = p.add_agent(Slot(0), n(1)).unwrap();
        p.add_server(a, n(2)).unwrap();
        p.add_server(a, n(3)).unwrap();
        let r = p.render();
        for id in 0..4 {
            assert!(r.contains(&format!("n{id}")), "missing n{id} in:\n{r}");
        }
    }

    #[test]
    fn display_summary() {
        let p = DeploymentPlan::agent_server(n(0), n(1));
        assert_eq!(p.to_string(), "plan: 1 agents, 1 servers, depth 2");
    }
}
