//! # adept-nes-sim
//!
//! A discrete-event simulator of a hierarchical **Network Enabled Server**
//! middleware (DIET-like), standing in for the paper's Grid'5000 testbed.
//!
//! ## What is simulated
//!
//! The execution scheme of the paper's Figure 1, on a deployment plan:
//!
//! 1. a client sends a **scheduling request** to the root agent;
//! 2. agents forward the request down to every child (cost per Eq. 1–2, 5);
//! 3. servers run a **performance prediction** (`Wpre`) and reply with
//!    their predicted completion time (Eq. 3–4);
//! 4. agents aggregate replies, keeping the best server
//!    (`Wrep(d) = Wfix + Wsel·d`), and forward the selection up;
//! 5. the client sends a **service request** directly to the selected
//!    server, which executes the application (`Wapp`) and responds;
//! 6. the client immediately loops (closed-loop, zero think time by
//!    default), per the paper's measurement protocol.
//!
//! ## Resource model
//!
//! The paper's `M(r,s,w)` machine \[9\]: **no internal parallelism** — a
//! node sends, receives, or computes, serially, over a single port. Each
//! node is a serial timeline ([`resources`]); every operation reserves an
//! exclusive interval on it. Message endpoints each pay their own tier's
//! calibrated size (agent-tier vs server-tier `Sreq`/`Srep` of Table 3),
//! matching how Eq. 14's terms are constructed. Clients model the paper's
//! dedicated client machines (30 Lyon nodes) and are not resource-bound.
//!
//! ## Why measured < predicted
//!
//! The simulator reproduces the paper's systematic gap between model
//! prediction and measurement: convoy effects from FIFO timelines,
//! pipeline fill/drain, selection staleness, and the configurable
//! per-message overhead and compute jitter ([`SimConfig`]) all push the
//! sustained rate below the steady-state bound of Eq. 16 — while the
//! *shape* (who wins, where saturation sets in) is preserved.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod config;
pub mod measure;
pub mod middleware;
pub mod resources;
pub mod sim;

pub use config::{SelectionPolicy, SimConfig};
pub use measure::{measure_throughput, saturation_search, LoadPoint, SaturationResult};
pub use sim::{SimOutcome, Simulation};
