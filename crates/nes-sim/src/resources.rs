//! The `M(r,s,w)` resource model: one serial timeline per node.
//!
//! "In this model, a computing resource has no capability for parallelism.
//! It can either send a message, receive a message, or compute. Only a
//! single port is assumed. Messages must be sent and received serially."
//! (paper, Section 3)
//!
//! [`Timeline::reserve`] is the whole model: an operation of duration `d`
//! requested at time `t` occupies the exclusive interval
//! `[max(t, busy_until), max(t, busy_until) + d)`.

use adept_desim::{SimDuration, SimTime};

/// A node's serial operation timeline.
#[derive(Debug, Clone, Copy, Default)]
pub struct Timeline {
    busy_until: SimTime,
    busy_total: SimDuration,
}

impl Timeline {
    /// A timeline idle since the beginning of time.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reserves an exclusive interval of length `d` starting no earlier
    /// than `now`. Returns `(start, end)` of the granted interval.
    pub fn reserve(&mut self, now: SimTime, d: SimDuration) -> (SimTime, SimTime) {
        let start = now.max(self.busy_until);
        let end = start + d;
        self.busy_until = end;
        self.busy_total = self.busy_total + d;
        (start, end)
    }

    /// The instant the node becomes idle.
    #[inline]
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }

    /// Accumulated busy time (for utilization reporting).
    #[inline]
    pub fn busy_total(&self) -> SimDuration {
        self.busy_total
    }

    /// Utilization over `[0, now]`, in `[0, 1]` (1 when saturated).
    pub fn utilization(&self, now: SimTime) -> f64 {
        if now == SimTime::ZERO {
            return 0.0;
        }
        (self.busy_total.as_seconds() / now.as_seconds()).min(1.0)
    }
}

/// Timelines for all platform nodes, indexed by `NodeId`.
#[derive(Debug, Clone)]
pub struct Timelines {
    nodes: Vec<Timeline>,
}

impl Timelines {
    /// One idle timeline per node.
    pub fn new(node_count: usize) -> Self {
        Self {
            nodes: vec![Timeline::new(); node_count],
        }
    }

    /// The timeline of a node.
    ///
    /// # Panics
    /// Panics on an out-of-range index.
    #[inline]
    pub fn get(&self, node: usize) -> &Timeline {
        &self.nodes[node]
    }

    /// Mutable access to a node's timeline.
    ///
    /// # Panics
    /// Panics on an out-of-range index.
    #[inline]
    pub fn get_mut(&mut self, node: usize) -> &mut Timeline {
        &mut self.nodes[node]
    }

    /// Number of timelines.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when there are no timelines.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(x: f64) -> SimTime {
        SimTime::from_seconds(x)
    }
    fn d(x: f64) -> SimDuration {
        SimDuration::from_seconds(x)
    }

    #[test]
    fn reserve_on_idle_starts_immediately() {
        let mut t = Timeline::new();
        let (start, end) = t.reserve(s(1.0), d(0.5));
        assert_eq!(start, s(1.0));
        assert_eq!(end, s(1.5));
        assert_eq!(t.busy_until(), s(1.5));
    }

    #[test]
    fn reserve_on_busy_queues_fifo() {
        let mut t = Timeline::new();
        t.reserve(s(0.0), d(1.0));
        let (start, end) = t.reserve(s(0.2), d(0.3));
        assert_eq!(start, s(1.0), "second op waits for the first");
        assert_eq!(end, s(1.3));
    }

    #[test]
    fn serialization_is_the_m_rsw_model() {
        // Three operations requested simultaneously execute back-to-back.
        let mut t = Timeline::new();
        let a = t.reserve(s(0.0), d(0.1));
        let b = t.reserve(s(0.0), d(0.2));
        let c = t.reserve(s(0.0), d(0.3));
        assert_eq!(a, (s(0.0), s(0.1)));
        assert_eq!(b, (s(0.1), s(0.3)));
        assert_eq!(c, (s(0.3), s(0.6)));
    }

    #[test]
    fn utilization_accounts_busy_fraction() {
        let mut t = Timeline::new();
        t.reserve(s(0.0), d(2.0));
        assert!((t.utilization(s(4.0)) - 0.5).abs() < 1e-12);
        assert_eq!(Timeline::new().utilization(SimTime::ZERO), 0.0);
    }

    #[test]
    fn timelines_are_independent() {
        let mut ts = Timelines::new(3);
        ts.get_mut(0).reserve(s(0.0), d(5.0));
        let (start, _) = ts.get_mut(1).reserve(s(0.0), d(1.0));
        assert_eq!(start, s(0.0), "node 1 unaffected by node 0");
        assert_eq!(ts.len(), 3);
        assert!(!ts.is_empty());
    }
}
