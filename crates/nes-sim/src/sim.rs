//! High-level simulation runs.

use crate::config::SimConfig;
use crate::middleware::{Event, Middleware};
use adept_desim::{Engine, SimTime};
use adept_hierarchy::{validate::validate_relaxed, DeploymentPlan};
use adept_platform::{Platform, Seconds};
use adept_workload::{ClientRamp, ServiceSpec};

/// Results of one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimOutcome {
    /// Sustained throughput over the measurement window (req/s).
    pub throughput: f64,
    /// Requests issued over the whole run.
    pub issued: u64,
    /// Requests completed over the whole run.
    pub completed: u64,
    /// Mean response time (s) over the whole run.
    pub mean_response_time: f64,
    /// Mean scheduling-phase latency (s).
    pub mean_scheduling_time: f64,
    /// Mean service-phase latency (s).
    pub mean_service_time: f64,
    /// Number of clients at the end of the ramp.
    pub clients: usize,
    /// Events the engine dispatched.
    pub events: u64,
    /// Simulated duration.
    pub duration: Seconds,
    /// Completed service executions per platform node index (zero for
    /// agents and unused nodes).
    pub per_server_completions: Vec<u64>,
    /// Completed requests per mix service (a single entry for
    /// single-service runs).
    pub completed_per_service: Vec<u64>,
}

/// A configured simulation, ready to run measurement protocols.
pub struct Simulation {
    engine: Engine<Middleware>,
}

impl Simulation {
    /// Builds a simulation of `plan` on `platform` serving `service`.
    ///
    /// # Panics
    /// Panics if the plan fails relaxed validation (the simulator cannot
    /// run a childless root), references nodes outside the platform, or
    /// the config is invalid.
    pub fn new(
        platform: &Platform,
        plan: &DeploymentPlan,
        service: &ServiceSpec,
        config: SimConfig,
    ) -> Self {
        let errors = validate_relaxed(plan);
        assert!(errors.is_empty(), "plan fails validation: {:?}", errors);
        Self {
            engine: Engine::new(Middleware::new(
                platform,
                plan,
                service,
                config,
                Seconds::ZERO,
            )),
        }
    }

    /// Builds a **multi-service** simulation (the paper's future-work
    /// "several applications" scenario): `assignment` maps every server
    /// node of the plan to its hosted service in the mix.
    ///
    /// # Panics
    /// Same conditions as [`Simulation::new`], plus assignment coverage
    /// (every server assigned, every service hosted somewhere).
    pub fn new_mix(
        platform: &Platform,
        plan: &DeploymentPlan,
        mix: &adept_workload::ServiceMix,
        assignment: &[(adept_platform::NodeId, usize)],
        config: SimConfig,
    ) -> Self {
        let errors = validate_relaxed(plan);
        assert!(errors.is_empty(), "plan fails validation: {:?}", errors);
        Self {
            engine: Engine::new(Middleware::new_mix(
                platform,
                plan,
                mix,
                assignment,
                config,
                Seconds::ZERO,
            )),
        }
    }

    /// Same, with a non-zero client think time.
    pub fn with_think_time(
        platform: &Platform,
        plan: &DeploymentPlan,
        service: &ServiceSpec,
        config: SimConfig,
        think_time: Seconds,
    ) -> Self {
        let errors = validate_relaxed(plan);
        assert!(errors.is_empty(), "plan fails validation: {:?}", errors);
        Self {
            engine: Engine::new(Middleware::new(platform, plan, service, config, think_time)),
        }
    }

    /// Runs the paper's client-ramp protocol (Section 5.1) and measures
    /// the sustained completion rate once the ramp and the configured
    /// warmup have passed.
    pub fn run_ramp(&mut self, ramp: &ClientRamp, config: &SimConfig) -> SimOutcome {
        for i in 0..ramp.max_clients {
            let client = self.engine.world_mut().add_client();
            self.engine.schedule(
                SimTime::from_seconds(ramp.launch_time(i).value()),
                Event::ClientIssue { client },
            );
        }
        let measure_start = SimTime::from_seconds(ramp.ramp_end().value() + config.warmup.value());
        let measure_end =
            SimTime::from_seconds(measure_start.as_seconds() + config.measure.value());
        self.engine.run_until(measure_end);
        let world = self.engine.world();
        SimOutcome {
            throughput: world.meter.rate_in(measure_start, measure_end),
            issued: world.issued,
            completed: world.completed,
            mean_response_time: world.response_times.mean(),
            mean_scheduling_time: world.scheduling_times.mean(),
            mean_service_time: world.service_times.mean(),
            clients: ramp.max_clients,
            events: self.engine.dispatched(),
            duration: Seconds(measure_end.as_seconds()),
            per_server_completions: world.per_server_completions.clone(),
            completed_per_service: world.completed_per_service.clone(),
        }
    }

    /// Runs an **open-loop** workload: each arrival issues exactly one
    /// request (extension; the paper's protocol is closed-loop). The
    /// sustained rate is measured over `[warmup, horizon)`; if the offered
    /// rate exceeds capacity, queues grow and the measured rate saturates
    /// at the capacity bound.
    pub fn run_open_loop(
        &mut self,
        arrivals: &[adept_platform::Seconds],
        config: &SimConfig,
    ) -> SimOutcome {
        self.engine.world_mut().set_open_loop(true);
        let mut horizon = SimTime::ZERO;
        for &t in arrivals {
            let client = self.engine.world_mut().add_client();
            let at = SimTime::from_seconds(t.value());
            horizon = horizon.max(at);
            self.engine.schedule(at, Event::ClientIssue { client });
        }
        let measure_start = SimTime::from_seconds(config.warmup.value());
        let measure_end = SimTime::from_seconds(horizon.as_seconds() + config.measure.value());
        self.engine.run_until(measure_end);
        let world = self.engine.world();
        SimOutcome {
            throughput: world.meter.rate_in(measure_start, measure_end),
            issued: world.issued,
            completed: world.completed,
            mean_response_time: world.response_times.mean(),
            mean_scheduling_time: world.scheduling_times.mean(),
            mean_service_time: world.service_times.mean(),
            clients: arrivals.len(),
            events: self.engine.dispatched(),
            duration: Seconds(measure_end.as_seconds()),
            per_server_completions: world.per_server_completions.clone(),
            completed_per_service: world.completed_per_service.clone(),
        }
    }

    /// Read access to the middleware world (utilizations, counters).
    pub fn world(&self) -> &Middleware {
        self.engine.world()
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.engine.now()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adept_hierarchy::builder::star;
    use adept_platform::generator::lyon_cluster;
    use adept_platform::NodeId;
    use adept_workload::Dgemm;

    fn ids(n: u32) -> Vec<NodeId> {
        (0..n).map(NodeId).collect()
    }

    #[test]
    fn ramp_produces_positive_throughput() {
        let platform = lyon_cluster(3);
        let plan = star(&ids(3));
        let svc = Dgemm::new(100).service();
        let cfg = SimConfig::ideal().with_windows(Seconds(1.0), Seconds(5.0));
        let mut sim = Simulation::new(&platform, &plan, &svc, cfg);
        let out = sim.run_ramp(&ClientRamp::paper(4, Seconds(10.0)), &cfg);
        assert!(out.throughput > 0.0);
        assert!(out.completed > 0);
        assert!(out.issued >= out.completed);
        assert_eq!(out.clients, 4);
        assert!(out.mean_response_time > 0.0);
    }

    #[test]
    #[should_panic(expected = "plan fails validation")]
    fn childless_root_rejected() {
        let platform = lyon_cluster(2);
        let plan = DeploymentPlan::with_root(NodeId(0));
        let svc = Dgemm::new(10).service();
        let cfg = SimConfig::ideal();
        let _ = Simulation::new(&platform, &plan, &svc, cfg);
    }

    #[test]
    fn phase_latencies_decompose_the_response_time() {
        let platform = lyon_cluster(4);
        let plan = star(&ids(4));
        let svc = Dgemm::new(310).service();
        let cfg = SimConfig::ideal().with_windows(Seconds(1.0), Seconds(10.0));
        let mut sim = Simulation::new(&platform, &plan, &svc, cfg);
        let out = sim.run_ramp(&ClientRamp::paper(6, Seconds(12.0)), &cfg);
        assert!(out.mean_scheduling_time > 0.0);
        assert!(out.mean_service_time > 0.0);
        // Scheduling + service ≈ response, up to the client→server hop
        // that separates the phases (zero latency here) and averaging
        // over slightly different sample sets (scheduling samples lead).
        let sum = out.mean_scheduling_time + out.mean_service_time;
        assert!(
            (sum - out.mean_response_time).abs() < 0.05 * out.mean_response_time,
            "phases {sum} should decompose response {}",
            out.mean_response_time
        );
        // DGEMM 310 is service-dominated.
        assert!(out.mean_service_time > out.mean_scheduling_time * 5.0);
    }

    #[test]
    fn open_loop_completes_every_request_under_capacity() {
        use adept_workload::ArrivalProcess;
        let platform = lyon_cluster(3);
        let plan = star(&ids(3));
        let svc = Dgemm::new(310).service();
        let cfg = SimConfig::ideal().with_windows(Seconds(0.0), Seconds(10.0));
        // Offered 5 req/s, capacity ~13 req/s: everything completes.
        let arrivals = ArrivalProcess::Uniform { rate: 5.0 }.arrivals(Seconds(20.0));
        let mut sim = Simulation::new(&platform, &plan, &svc, cfg);
        let out = sim.run_open_loop(&arrivals, &cfg);
        assert_eq!(out.issued, 100);
        assert_eq!(out.completed, 100, "under capacity, all requests finish");
        assert!(out.mean_response_time < 0.5);
    }

    #[test]
    fn open_loop_saturates_over_capacity() {
        use adept_workload::ArrivalProcess;
        let platform = lyon_cluster(2);
        let plan = star(&ids(2));
        let svc = Dgemm::new(1000).service(); // capacity 0.2 req/s
        let cfg = SimConfig::ideal().with_windows(Seconds(0.0), Seconds(10.0));
        let arrivals = ArrivalProcess::Uniform { rate: 2.0 }.arrivals(Seconds(30.0));
        let mut sim = Simulation::new(&platform, &plan, &svc, cfg);
        let out = sim.run_open_loop(&arrivals, &cfg);
        assert!(out.completed < out.issued, "overload leaves a backlog");
        assert!(
            out.throughput < 0.3,
            "measured rate caps near capacity, got {}",
            out.throughput
        );
    }

    #[test]
    fn mix_simulation_serves_both_services() {
        use adept_workload::ServiceMix;
        let platform = lyon_cluster(5);
        let plan = star(&ids(5));
        let mix = ServiceMix::new(vec![
            (Dgemm::new(100).service(), 1.0),
            (Dgemm::new(310).service(), 1.0),
        ]);
        // Two servers each.
        let assignment = vec![
            (NodeId(1), 0usize),
            (NodeId(2), 0),
            (NodeId(3), 1),
            (NodeId(4), 1),
        ];
        let cfg = SimConfig::ideal().with_windows(Seconds(2.0), Seconds(15.0));
        let mut sim = Simulation::new_mix(&platform, &plan, &mix, &assignment, cfg);
        let out = sim.run_ramp(&ClientRamp::paper(12, Seconds(20.0)), &cfg);
        assert!(out.throughput > 0.0);
        assert_eq!(out.completed_per_service.len(), 2);
        assert!(
            out.completed_per_service.iter().all(|&c| c > 0),
            "both services must complete requests: {:?}",
            out.completed_per_service
        );
        // 50/50 shares: completion counts should be comparable (the heavy
        // service completes fewer only if its capacity binds).
        let (a, b) = (
            out.completed_per_service[0] as f64,
            out.completed_per_service[1] as f64,
        );
        assert!(a / b < 4.0 && b / a < 4.0, "{a} vs {b}");
        // Service requests only reach matching servers.
        assert!(out.per_server_completions[1] + out.per_server_completions[2] > 0);
        assert!(out.per_server_completions[3] + out.per_server_completions[4] > 0);
    }

    #[test]
    #[should_panic(expected = "every mix service needs at least one server")]
    fn mix_requires_a_server_per_service() {
        use adept_workload::ServiceMix;
        let platform = lyon_cluster(3);
        let plan = star(&ids(3));
        let mix = ServiceMix::new(vec![
            (Dgemm::new(100).service(), 1.0),
            (Dgemm::new(310).service(), 1.0),
        ]);
        let assignment = vec![(NodeId(1), 0usize), (NodeId(2), 0)];
        let cfg = SimConfig::ideal();
        let _ = Simulation::new_mix(&platform, &plan, &mix, &assignment, cfg);
    }

    #[test]
    fn think_time_lowers_offered_load() {
        let platform = lyon_cluster(2);
        let plan = star(&ids(2));
        let svc = Dgemm::new(310).service();
        let cfg = SimConfig::ideal().with_windows(Seconds(1.0), Seconds(10.0));
        let ramp = ClientRamp::paper(1, Seconds(15.0));
        let mut eager = Simulation::new(&platform, &plan, &svc, cfg);
        let mut lazy = Simulation::with_think_time(&platform, &plan, &svc, cfg, Seconds(1.0));
        let te = eager.run_ramp(&ramp, &cfg).throughput;
        let tl = lazy.run_ramp(&ramp, &cfg).throughput;
        assert!(
            tl < te,
            "a thinking client must complete fewer requests: {tl} vs {te}"
        );
    }
}
