//! Simulator configuration.

use adept_platform::{MiddlewareCalibration, Seconds};

/// How agents choose among the servers their children propose.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SelectionPolicy {
    /// Keep the single best predicted completion time (deterministic,
    /// myopic). Under heterogeneous powers this converges to "use only
    /// the strongest servers": a weak idle server loses to a strong busy
    /// one whenever the strong backlog is below the power gap, so weak
    /// servers starve and measured throughput caps at the strong pool's
    /// capacity — far from the model's optimal division (Eq. 6–10).
    BestPrediction,
    /// Weighted random choice ∝ 1/prediction (i.e. proportional to the
    /// candidate's predicted service *rate*), via exact weighted
    /// reservoir sampling during aggregation. For idle servers the weight
    /// is exactly `w/Wapp`, so the stationary division matches the
    /// model's optimal division N_i ∝ w_i, while the backlog term keeps
    /// feedback-driven balance. This is the default: the paper's model
    /// (and its testbed results) presuppose near-optimal division.
    WeightedByRate,
}

/// Knobs of a simulation run.
///
/// The defaults reproduce the paper's measurement conditions: calibrated
/// Table 3 costs, a small per-message middleware overhead (CORBA dispatch,
/// marshalling — the part of reality the steady-state model idealizes
/// away), and mild compute jitter (shared OS noise).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// Middleware calibration (paper Table 3).
    pub calibration: MiddlewareCalibration,
    /// Fixed overhead added to every message **handling** (once at the
    /// sender, once at the receiver), on top of the bandwidth cost.
    pub per_message_overhead: Seconds,
    /// Relative jitter applied to compute durations (`0.05` = ±5%).
    pub compute_jitter: f64,
    /// RNG seed (jitter, tie-breaking noise).
    pub seed: u64,
    /// Warmup excluded from measurement after the client ramp completes.
    pub warmup: Seconds,
    /// Measurement window length.
    pub measure: Seconds,
    /// Server selection policy (see [`SelectionPolicy`]).
    pub selection: SelectionPolicy,
}

impl SimConfig {
    /// Paper-like conditions (overhead and jitter on).
    ///
    /// The overhead is deliberately small (20 µs per message handling):
    /// the Table 3 message sizes already absorb CORBA marshalling into
    /// the effective bandwidth, so this term only models the residual
    /// per-message dispatch cost. Larger values distort high-degree
    /// agents (a degree-199 star pays 400 × overhead per request) far
    /// beyond anything the paper's testbed showed.
    pub fn paper() -> Self {
        Self {
            calibration: MiddlewareCalibration::lyon_2008(),
            per_message_overhead: Seconds(2.0e-5),
            compute_jitter: 0.05,
            seed: 42,
            warmup: Seconds(5.0),
            measure: Seconds(30.0),
            selection: SelectionPolicy::WeightedByRate,
        }
    }

    /// Idealized conditions: no overhead, no jitter. The sustained rate
    /// then converges close to the Eq. 16 bound — used by tests that check
    /// model/simulator agreement.
    pub fn ideal() -> Self {
        Self {
            calibration: MiddlewareCalibration::lyon_2008(),
            per_message_overhead: Seconds::ZERO,
            compute_jitter: 0.0,
            seed: 42,
            warmup: Seconds(5.0),
            measure: Seconds(30.0),
            selection: SelectionPolicy::WeightedByRate,
        }
    }

    /// Replaces the selection policy.
    pub fn with_selection(mut self, selection: SelectionPolicy) -> Self {
        self.selection = selection;
        self
    }

    /// Replaces the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces warmup and measurement windows (short windows make tests
    /// fast; long windows make figures smooth).
    pub fn with_windows(mut self, warmup: Seconds, measure: Seconds) -> Self {
        assert!(measure.value() > 0.0, "measurement window must be positive");
        self.warmup = warmup;
        self.measure = measure;
        self
    }

    /// Validates ranges.
    pub fn validate(&self) -> Result<(), String> {
        if !self.calibration.validate() {
            return Err("calibration contains invalid values".into());
        }
        if !(0.0..1.0).contains(&self.compute_jitter) {
            return Err(format!(
                "compute_jitter must be in [0,1), got {}",
                self.compute_jitter
            ));
        }
        if !self.per_message_overhead.is_valid() {
            return Err("per_message_overhead must be non-negative".into());
        }
        if self.measure.value() <= 0.0 {
            return Err("measurement window must be positive".into());
        }
        Ok(())
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_valid() {
        assert!(SimConfig::paper().validate().is_ok());
        assert!(SimConfig::ideal().validate().is_ok());
    }

    #[test]
    fn ideal_has_no_noise() {
        let c = SimConfig::ideal();
        assert_eq!(c.per_message_overhead, Seconds::ZERO);
        assert_eq!(c.compute_jitter, 0.0);
    }

    #[test]
    fn bad_jitter_rejected() {
        let mut c = SimConfig::paper();
        c.compute_jitter = 1.5;
        assert!(c.validate().is_err());
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_measure_window_rejected() {
        let _ = SimConfig::paper().with_windows(Seconds(1.0), Seconds(0.0));
    }

    #[test]
    fn with_seed_changes_only_seed() {
        let a = SimConfig::paper();
        let b = a.with_seed(7);
        assert_eq!(b.seed, 7);
        assert_eq!(a.calibration, b.calibration);
    }
}
