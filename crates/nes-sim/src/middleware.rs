//! The middleware world: agents, servers and clients exchanging costed
//! messages over `M(r,s,w)` timelines.
//!
//! Event flow for one request (paper Figure 1):
//!
//! ```text
//! client ──SchedRequest──▶ root ──▶ … agents … ──▶ servers (Wpre, predict)
//! client ◀──SchedReply─── root ◀── … agents … ◀── servers
//!        (agents aggregate: Wrep(d), keep best predicted server)
//! client ──ServiceRequest──▶ selected server (Wapp) ──ServiceReply──▶ client
//! ```
//!
//! Every hop costs the sender and the receiver their own tier's calibrated
//! message size over the shared bandwidth (plus the configured per-message
//! overhead), serialized on each node's timeline. Compute steps (`Wreq`,
//! `Wrep(d)`, `Wpre`, `Wapp`) are reserved the same way, with optional
//! jitter.

// audit: allow-file(unwrap, "documented # Panics contract: an invalid config, plan,
// or assignment is caller error in this simulator front-end")
use crate::config::SimConfig;
use crate::resources::Timelines;
use adept_desim::{DetRng, OnlineStats, Scheduler, SimDuration, SimTime, ThroughputMeter, World};
use adept_hierarchy::{DeploymentPlan, Role};
use adept_platform::{Platform, Seconds};
use adept_workload::ServiceSpec;

/// Compiled, slot-indexed view of a deployment plan.
#[derive(Debug, Clone)]
pub(crate) struct CompiledPlan {
    /// Platform node index per slot.
    pub node: Vec<u32>,
    /// Role per slot.
    pub role: Vec<Role>,
    /// Parent slot (None for the root).
    pub parent: Vec<Option<u32>>,
    /// Children slots per slot.
    pub children: Vec<Vec<u32>>,
}

impl CompiledPlan {
    fn compile(plan: &DeploymentPlan) -> Self {
        let n = plan.len();
        let mut node = Vec::with_capacity(n);
        let mut role = Vec::with_capacity(n);
        let mut parent = Vec::with_capacity(n);
        let mut children = Vec::with_capacity(n);
        for slot in plan.slots() {
            node.push(plan.node(slot).0);
            role.push(plan.role(slot));
            parent.push(plan.parent(slot).map(|p| p.0 as u32));
            children.push(plan.children(slot).iter().map(|c| c.0 as u32).collect());
        }
        Self {
            node,
            role,
            parent,
            children,
        }
    }
}

/// Where a message lands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Endpoint {
    /// A middleware element (plan slot).
    Slot(u32),
    /// A client (unconstrained machine).
    Client(u32),
}

/// Message payloads.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum Msg {
    /// Scheduling request travelling down the tree.
    SchedRequest {
        /// Request slab index.
        req: u32,
    },
    /// Scheduling reply travelling up (predicted completion in absolute
    /// seconds, proposed server as platform node index, cumulative
    /// selection weight of the subtree that produced it).
    SchedReply {
        /// Request slab index.
        req: u32,
        /// Predicted completion instant (seconds).
        pred: f64,
        /// Proposed server (platform node index).
        server: u32,
        /// Subtree selection weight (sum of candidate rates below).
        weight: f64,
    },
    /// Service request from client to the selected server.
    ServiceRequest {
        /// Request slab index.
        req: u32,
    },
    /// Service reply back to the client.
    ServiceReply {
        /// Request slab index.
        req: u32,
    },
}

/// Simulator events.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Event {
    /// A client issues a new scheduling request.
    ClientIssue {
        /// Client index.
        client: u32,
    },
    /// Message bytes reached the destination port (sender occupancy and
    /// wire latency paid); the receiver still has to serialize its receive.
    Deliver(EndpointEvent),
    /// The receiver finished its receive occupancy; middleware logic runs.
    Received(EndpointEvent),
    /// A compute step finished on a slot.
    ComputeDone {
        /// Plan slot the computation ran on.
        slot: u32,
        /// The message/context being processed.
        msg: MsgEvent,
    },
}

/// Internal payload wrapper (kept opaque outside the crate).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EndpointEvent {
    pub(crate) at: Endpoint,
    pub(crate) msg: Msg,
    /// Bandwidth of the link this message crosses (Mb/s). Computed once
    /// at send time from the endpoints' sites; the receiver's occupancy
    /// uses the same link. Uniform networks always carry the global `B`.
    pub(crate) edge_bw: f64,
}

/// Internal compute-context wrapper (kept opaque outside the crate).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MsgEvent(pub(crate) Msg);

#[derive(Debug, Clone)]
struct RequestState {
    client: u32,
    issued_at: SimTime,
    /// Index of the requested service in the mix.
    service: u8,
    /// When the client received the scheduling reply (phase boundary).
    sched_done_at: Option<SimTime>,
    /// Outstanding child replies per agent slot (0 elsewhere).
    pending: Vec<u16>,
    /// Selected (pred, server) so far per agent slot.
    best: Vec<(f64, u32)>,
    /// Cumulative selection weight per agent slot (weighted reservoir
    /// sampling state for [`SelectionPolicy::WeightedByRate`]).
    cum_weight: Vec<f64>,
    active: bool,
}

/// The simulated middleware deployment.
pub struct Middleware {
    plan: CompiledPlan,
    /// Plan slot per platform node index (`u32::MAX` for unused nodes).
    node_to_slot: Vec<u32>,
    /// Node power in MFlop/s, by platform node index.
    powers: Vec<f64>,
    /// Uniform (scalarized) bandwidth in Mb/s, used for client links on
    /// homogeneous networks.
    bandwidth: f64,
    /// Site of each platform node (for per-link bandwidths).
    sites: Vec<adept_platform::SiteId>,
    /// The network model (per-link bandwidth lookups).
    network: adept_platform::Network,
    /// Wire latency per message (seconds).
    latency: f64,
    config: SimConfig,
    /// The workload mix (shares for drawing each request's service).
    mix: adept_workload::ServiceMix,
    /// Service computation per request, per mix service (MFlop).
    wapps: Vec<f64>,
    /// Service-phase payload sizes (request, reply) per mix service (Mb).
    service_sizes: Vec<(f64, f64)>,
    /// Hosted service per plan slot (`u8::MAX` for agents).
    slot_service: Vec<u8>,
    think_time: SimDuration,
    /// Open-loop mode: clients issue exactly one request (arrivals come
    /// from an external process) instead of looping.
    open_loop: bool,

    /// Control-plane timeline per node: scheduling messages, `Wreq`,
    /// `Wrep`, `Wpre`.
    timelines: Timelines,
    /// Service-plane timeline per node: service messages and `Wapp`.
    ///
    /// Real SeDs execute application jobs in separate processes, so a
    /// queued multi-second DGEMM does not block prediction replies; with a
    /// single FIFO lane the whole scheduling phase would stall behind the
    /// service queue, which neither the paper's model nor its testbed
    /// exhibits. Splitting the lanes inflates server capacity by at most
    /// `Wpre/Wapp` (≤ 0.01% for the service-limited scenarios), which is
    /// far below measurement noise. See DESIGN.md, substitution table.
    service_lanes: Timelines,
    requests: Vec<RequestState>,
    free: Vec<u32>,
    clients: u32,
    rng: DetRng,

    /// Completed-request instants (the measurement signal).
    pub meter: ThroughputMeter,
    /// Requests issued.
    pub issued: u64,
    /// Requests completed (scheduling + service phases).
    pub completed: u64,
    /// Response-time statistics (seconds), one sample per completion.
    pub response_times: OnlineStats,
    /// Scheduling-phase latency statistics (request issue → scheduling
    /// reply at the client), one sample per completed scheduling phase.
    pub scheduling_times: OnlineStats,
    /// Service-phase latency statistics (service request → service reply),
    /// one sample per completion.
    pub service_times: OnlineStats,
    /// Per-server completed service executions, by platform node index.
    pub per_server_completions: Vec<u64>,
    /// Completed requests per mix service.
    pub completed_per_service: Vec<u64>,
}

impl Middleware {
    /// Builds the world for a platform + plan + service.
    ///
    /// # Panics
    /// Panics if the plan references nodes outside the platform or the
    /// config is invalid.
    pub fn new(
        platform: &Platform,
        plan: &DeploymentPlan,
        service: &ServiceSpec,
        config: SimConfig,
        think_time: Seconds,
    ) -> Self {
        // Single-service deployments are a mix of one, every server
        // hosting it.
        let mix = adept_workload::ServiceMix::single(service.clone());
        let assignment: Vec<(adept_platform::NodeId, usize)> =
            plan.servers().map(|s| (plan.node(s), 0usize)).collect();
        Self::new_mix(platform, plan, &mix, &assignment, config, think_time)
    }

    /// Builds a **multi-service** world: `assignment` gives the hosted
    /// service (index into `mix`) for every server node of the plan — the
    /// paper's last future-work item ("deploy several … applications").
    ///
    /// # Panics
    /// Panics if the config is invalid, the plan references nodes outside
    /// the platform, a server is missing from the assignment, or a mix
    /// service has no server at all (its requests could never complete).
    pub fn new_mix(
        platform: &Platform,
        plan: &DeploymentPlan,
        mix: &adept_workload::ServiceMix,
        assignment: &[(adept_platform::NodeId, usize)],
        config: SimConfig,
        think_time: Seconds,
    ) -> Self {
        config.validate().expect("invalid simulator configuration");
        let compiled = CompiledPlan::compile(plan);
        let powers: Vec<f64> = platform.nodes().iter().map(|r| r.power.value()).collect();
        for &n in &compiled.node {
            assert!(
                (n as usize) < powers.len(),
                "plan references node n{n} outside the platform"
            );
        }
        let cal = &config.calibration;
        let wapps: Vec<f64> = mix.services().iter().map(|s| s.wapp.value()).collect();
        let service_sizes: Vec<(f64, f64)> = mix
            .services()
            .iter()
            .map(|service| {
                (
                    service
                        .request_payload
                        .map_or(cal.server.sreq.value(), |m| m.value()),
                    service
                        .reply_payload
                        .map_or(cal.server.srep.value(), |m| m.value()),
                )
            })
            .collect();
        let lookup: std::collections::HashMap<u32, usize> = assignment
            .iter()
            .map(|&(node, svc)| {
                assert!(
                    svc < mix.len(),
                    "assignment references service {svc} outside the mix"
                );
                (node.0, svc)
            })
            .collect();
        let mut hosted = vec![0usize; mix.len()];
        let slot_service: Vec<u8> = compiled
            .node
            .iter()
            .zip(&compiled.role)
            .map(|(&node, &role)| match role {
                Role::Agent => u8::MAX,
                Role::Server => {
                    let svc = *lookup
                        .get(&node)
                        // audit: allow(panic, "documented # Panics contract of
                        // new_mix: a server missing from the assignment is
                        // caller error")
                        .unwrap_or_else(|| panic!("server n{node} missing from the assignment"));
                    hosted[svc] += 1;
                    svc as u8
                }
            })
            .collect();
        assert!(
            hosted.iter().all(|&h| h > 0),
            "every mix service needs at least one server, got {hosted:?}"
        );
        let mut node_to_slot = vec![u32::MAX; powers.len()];
        for (slot, &node) in compiled.node.iter().enumerate() {
            node_to_slot[node as usize] = slot as u32;
        }
        let sites: Vec<adept_platform::SiteId> = platform.nodes().iter().map(|r| r.site).collect();
        Self {
            plan: compiled,
            node_to_slot,
            bandwidth: platform.bandwidth().value(),
            sites,
            network: platform.network().clone(),
            latency: platform.network().latency().value(),
            config,
            mix: mix.clone(),
            wapps,
            service_sizes,
            slot_service,
            think_time: SimDuration::from_seconds(think_time.value().max(0.0)),
            open_loop: false,
            timelines: Timelines::new(powers.len()),
            service_lanes: Timelines::new(powers.len()),
            per_server_completions: vec![0; powers.len()],
            powers,
            requests: Vec::new(),
            free: Vec::new(),
            clients: 0,
            rng: DetRng::new(config.seed),
            meter: ThroughputMeter::new(),
            issued: 0,
            completed: 0,
            completed_per_service: vec![0; mix.len()],
            response_times: OnlineStats::new(),
            scheduling_times: OnlineStats::new(),
            service_times: OnlineStats::new(),
        }
    }

    /// Switches to open-loop mode: clients issue a single request each
    /// (used with an external arrival process) instead of looping.
    pub fn set_open_loop(&mut self, open_loop: bool) {
        self.open_loop = open_loop;
    }

    /// Registers one more client and returns its index.
    pub fn add_client(&mut self) -> u32 {
        let id = self.clients;
        self.clients += 1;
        id
    }

    /// Number of registered clients.
    pub fn client_count(&self) -> u32 {
        self.clients
    }

    /// Control-plane utilization of a platform node over `[0, now]`.
    pub fn utilization(&self, node: usize, now: SimTime) -> f64 {
        self.timelines.get(node).utilization(now)
    }

    /// Service-plane utilization of a platform node over `[0, now]`
    /// (non-zero only for servers).
    pub fn service_utilization(&self, node: usize, now: SimTime) -> f64 {
        self.service_lanes.get(node).utilization(now)
    }

    /// Accumulated control-plane busy time of a node, in seconds. Divided
    /// by the number of completed requests this recovers the per-request
    /// occupancy — the measurement behind the paper's Table 3 calibration
    /// (`bench --bin table3`).
    pub fn control_busy_seconds(&self, node: usize) -> f64 {
        self.timelines.get(node).busy_total().as_seconds()
    }

    fn power_of_slot(&self, slot: u32) -> f64 {
        self.powers[self.plan.node[slot as usize] as usize]
    }

    /// Transfer duration of `mb` megabits over a link of `bw` Mb/s plus
    /// per-message overhead.
    fn occupancy(&self, mb: f64, bw: f64) -> SimDuration {
        SimDuration::from_seconds(mb / bw + self.config.per_message_overhead.value())
    }

    /// Bandwidth of the link between two slots (or a slot and a client —
    /// clients are co-located with the peer's site, the convention of the
    /// hetero model extension).
    fn edge_bandwidth(&self, from: u32, to: Endpoint) -> f64 {
        let site_from = self.sites[self.plan.node[from as usize] as usize];
        let site_to = match to {
            Endpoint::Slot(slot) => self.sites[self.plan.node[slot as usize] as usize],
            Endpoint::Client(_) => site_from,
        };
        self.network.bandwidth_between(site_from, site_to).value()
    }

    fn compute_duration(&mut self, mflop: f64, power: f64) -> SimDuration {
        let d = SimDuration::from_seconds(mflop / power);
        self.rng.jitter(d, self.config.compute_jitter)
    }

    /// Message size (Mb) the given slot pays to SEND `msg`.
    fn send_size(&self, slot: u32, msg: &Msg) -> f64 {
        let cal = &self.config.calibration;
        match (self.plan.role[slot as usize], msg) {
            (Role::Agent, Msg::SchedRequest { .. }) => cal.agent.sreq.value(),
            (Role::Agent, Msg::SchedReply { .. }) => cal.agent.srep.value(),
            (Role::Server, Msg::SchedReply { .. }) => cal.server.srep.value(),
            (Role::Server, Msg::ServiceReply { req }) => {
                self.service_sizes[self.requests[*req as usize].service as usize].1
            }
            (role, m) => unreachable!("{role:?} never sends {m:?}"),
        }
    }

    /// Message size (Mb) the given slot pays to RECEIVE `msg`.
    fn recv_size(&self, slot: u32, msg: &Msg) -> f64 {
        let cal = &self.config.calibration;
        match (self.plan.role[slot as usize], msg) {
            (Role::Agent, Msg::SchedRequest { .. }) => cal.agent.sreq.value(),
            (Role::Agent, Msg::SchedReply { .. }) => cal.agent.srep.value(),
            (Role::Server, Msg::SchedRequest { .. }) => cal.server.sreq.value(),
            (Role::Server, Msg::ServiceRequest { req }) => {
                self.service_sizes[self.requests[*req as usize].service as usize].0
            }
            (role, m) => unreachable!("{role:?} never receives {m:?}"),
        }
    }

    /// Sends `msg` from a middleware slot: reserves the sender occupancy
    /// on the node's port (the control timeline — all messages go through
    /// the single port; only `Wapp` executions live on the service lane,
    /// so a finished job's reply is never stuck behind queued jobs) and
    /// schedules delivery.
    fn send_from_slot(
        &mut self,
        now: SimTime,
        from: u32,
        to: Endpoint,
        msg: Msg,
        sched: &mut Scheduler<Event>,
    ) {
        let edge_bw = self.edge_bandwidth(from, to);
        let occ = self.occupancy(self.send_size(from, &msg), edge_bw);
        let node = self.plan.node[from as usize] as usize;
        let (_, end) = self.timelines.get_mut(node).reserve(now, occ);
        let arrival = end + SimDuration::from_seconds(self.latency);
        sched.at(
            arrival,
            Event::Deliver(EndpointEvent {
                at: to,
                msg,
                edge_bw,
            }),
        );
    }

    /// Sends `msg` from a client (no sender occupancy). Clients are
    /// co-located with the destination's site.
    fn send_from_client(&self, now: SimTime, to: Endpoint, msg: Msg, sched: &mut Scheduler<Event>) {
        let edge_bw = match to {
            Endpoint::Slot(slot) => self.edge_bandwidth(slot, to),
            Endpoint::Client(_) => self.bandwidth,
        };
        let arrival = now + SimDuration::from_seconds(self.latency);
        sched.at(
            arrival,
            Event::Deliver(EndpointEvent {
                at: to,
                msg,
                edge_bw,
            }),
        );
    }

    fn alloc_request(&mut self, client: u32, now: SimTime) -> u32 {
        let n_slots = self.plan.node.len();
        let service = if self.mix.len() == 1 {
            0u8
        } else {
            self.mix.draw(self.rng.unit()) as u8
        };
        if let Some(idx) = self.free.pop() {
            let r = &mut self.requests[idx as usize];
            debug_assert!(!r.active, "freed request still active");
            r.client = client;
            r.issued_at = now;
            r.service = service;
            r.sched_done_at = None;
            r.pending.iter_mut().for_each(|p| *p = 0);
            r.best
                .iter_mut()
                .for_each(|b| *b = (f64::INFINITY, u32::MAX));
            r.cum_weight.iter_mut().for_each(|w| *w = 0.0);
            r.active = true;
            idx
        } else {
            self.requests.push(RequestState {
                client,
                issued_at: now,
                service,
                sched_done_at: None,
                pending: vec![0; n_slots],
                best: vec![(f64::INFINITY, u32::MAX); n_slots],
                cum_weight: vec![0.0; n_slots],
                active: true,
            });
            (self.requests.len() - 1) as u32
        }
    }

    fn handle_received(&mut self, now: SimTime, slot: u32, msg: Msg, sched: &mut Scheduler<Event>) {
        let s = slot as usize;
        match (self.plan.role[s], msg) {
            // Agent got a scheduling request: process it (Wreq), then
            // forward to every child.
            (Role::Agent, Msg::SchedRequest { .. }) => {
                let power = self.power_of_slot(slot);
                let d = self.compute_duration(self.config.calibration.agent.wreq.value(), power);
                let node = self.plan.node[s] as usize;
                let (_, end) = self.timelines.get_mut(node).reserve(now, d);
                sched.at(
                    end,
                    Event::ComputeDone {
                        slot,
                        msg: MsgEvent(msg),
                    },
                );
            }
            // Server got a scheduling request: predict (Wpre), then reply.
            (Role::Server, Msg::SchedRequest { .. }) => {
                let power = self.power_of_slot(slot);
                let d = self.compute_duration(self.config.calibration.server.wpre.value(), power);
                let node = self.plan.node[s] as usize;
                let (_, end) = self.timelines.get_mut(node).reserve(now, d);
                sched.at(
                    end,
                    Event::ComputeDone {
                        slot,
                        msg: MsgEvent(msg),
                    },
                );
            }
            // Agent got a child's reply: aggregate; on the last one, run
            // the selection computation Wrep(d) and forward up.
            (
                Role::Agent,
                Msg::SchedReply {
                    req,
                    pred,
                    server,
                    weight,
                },
            ) => {
                let selection = self.config.selection;
                let draw = if selection == crate::config::SelectionPolicy::WeightedByRate {
                    self.rng.unit()
                } else {
                    0.0
                };
                let r = &mut self.requests[req as usize];
                debug_assert!(r.active, "reply for an inactive request");
                let best = &mut r.best[s];
                match selection {
                    crate::config::SelectionPolicy::BestPrediction => {
                        // Strict `<` keeps INFINITY non-bids out unless no
                        // server in the subtree hosts the service.
                        if pred < best.0 || (pred == best.0 && server < best.1) {
                            *best = (pred, server);
                        }
                    }
                    crate::config::SelectionPolicy::WeightedByRate => {
                        // Weighted reservoir sampling with *subtree*
                        // weights: replacing the running winner with
                        // probability w/(W+w) makes the final pick exactly
                        // ∝ each server's own rate across the whole tree,
                        // because every reply carries the cumulative
                        // weight of the subtree that produced it.
                        let cum = &mut r.cum_weight[s];
                        *cum += weight;
                        if draw < weight / *cum {
                            *best = (pred, server);
                        }
                    }
                }
                debug_assert!(r.pending[s] > 0, "unexpected extra reply");
                r.pending[s] -= 1;
                if r.pending[s] == 0 {
                    let degree = self.plan.children[s].len();
                    let power = self.power_of_slot(slot);
                    let wrep = self.config.calibration.agent.wrep(degree).value();
                    let d = self.compute_duration(wrep, power);
                    let node = self.plan.node[s] as usize;
                    let (_, end) = self.timelines.get_mut(node).reserve(now, d);
                    sched.at(
                        end,
                        Event::ComputeDone {
                            slot,
                            msg: MsgEvent(Msg::SchedReply {
                                req,
                                pred,
                                server,
                                weight,
                            }),
                        },
                    );
                }
            }
            // Server got the service request: execute the application on
            // the service lane.
            (Role::Server, Msg::ServiceRequest { req }) => {
                let power = self.power_of_slot(slot);
                let wapp = self.wapps[self.requests[req as usize].service as usize];
                debug_assert_eq!(
                    self.slot_service[s], self.requests[req as usize].service,
                    "service requests only reach matching servers"
                );
                let d = self.compute_duration(wapp, power);
                let node = self.plan.node[s] as usize;
                let (_, end) = self.service_lanes.get_mut(node).reserve(now, d);
                sched.at(
                    end,
                    Event::ComputeDone {
                        slot,
                        msg: MsgEvent(Msg::ServiceRequest { req }),
                    },
                );
            }
            (role, m) => unreachable!("{role:?} cannot handle {m:?}"),
        }
    }

    fn handle_compute_done(
        &mut self,
        now: SimTime,
        slot: u32,
        msg: Msg,
        sched: &mut Scheduler<Event>,
    ) {
        let s = slot as usize;
        match (self.plan.role[s], msg) {
            // Agent finished Wreq: broadcast to children.
            (Role::Agent, Msg::SchedRequest { req }) => {
                let degree = self.plan.children[s].len() as u16;
                self.requests[req as usize].pending[s] = degree;
                let children = self.plan.children[s].clone();
                for child in children {
                    self.send_from_slot(
                        now,
                        slot,
                        Endpoint::Slot(child),
                        Msg::SchedRequest { req },
                        sched,
                    );
                }
            }
            // Server finished Wpre: predicted completion is its current
            // backlog plus one service execution. A small random term
            // (1% of one service quantum) breaks exact ties between
            // equally-loaded servers — without it, simultaneous requests
            // all herd to the lowest-id server and service parallelism
            // collapses, which neither the model's optimal division
            // (Eq. 6–10) nor real middleware (randomized choice among
            // near-equal candidates) exhibits.
            (Role::Server, Msg::SchedRequest { req }) => {
                let node = self.plan.node[s] as usize;
                let power = self.powers[node];
                let wanted = self.requests[req as usize].service;
                if self.slot_service[s] != wanted {
                    // This server does not host the requested service: it
                    // still replies (its parent is waiting on it) but with
                    // an uncompetitive bid and zero selection weight.
                    let parent = self.plan.parent[s].expect("servers always have a parent");
                    self.send_from_slot(
                        now,
                        slot,
                        Endpoint::Slot(parent),
                        Msg::SchedReply {
                            req,
                            pred: f64::INFINITY,
                            server: self.plan.node[s],
                            weight: 0.0,
                        },
                        sched,
                    );
                    return;
                }
                let wapp = self.wapps[wanted as usize];
                let backlog = self.service_lanes.get(node).busy_until().max(now);
                let tie_break = self.rng.unit() * 0.01 * wapp / power;
                let pred = backlog.as_seconds() + wapp / power + tie_break;
                // The selection weight must be a *rate*: the inverse of
                // the relative time-to-completion (sojourn), not of the
                // absolute instant `pred` — the latter degenerates to a
                // uniform weighting as simulated time grows.
                let sojourn = pred - now.as_seconds();
                debug_assert!(sojourn.is_finite());
                let parent = self.plan.parent[s].expect("servers always have a parent");
                self.send_from_slot(
                    now,
                    slot,
                    Endpoint::Slot(parent),
                    Msg::SchedReply {
                        req,
                        pred,
                        server: self.plan.node[s],
                        weight: 1.0 / sojourn.max(1e-12),
                    },
                    sched,
                );
            }
            // Agent finished Wrep: forward its best reply up (or to the
            // client at the root).
            (Role::Agent, Msg::SchedReply { req, .. }) => {
                let (pred, server) = self.requests[req as usize].best[s];
                let weight = self.requests[req as usize].cum_weight[s];
                debug_assert!(server != u32::MAX, "aggregation without replies");
                let reply = Msg::SchedReply {
                    req,
                    pred,
                    server,
                    weight,
                };
                match self.plan.parent[s] {
                    Some(parent) => {
                        self.send_from_slot(now, slot, Endpoint::Slot(parent), reply, sched)
                    }
                    None => {
                        let client = self.requests[req as usize].client;
                        self.send_from_slot(now, slot, Endpoint::Client(client), reply, sched)
                    }
                }
            }
            // Server finished Wapp: reply to the client.
            (Role::Server, Msg::ServiceRequest { req }) => {
                let client = self.requests[req as usize].client;
                let node = self.plan.node[s] as usize;
                self.per_server_completions[node] += 1;
                self.send_from_slot(
                    now,
                    slot,
                    Endpoint::Client(client),
                    Msg::ServiceReply { req },
                    sched,
                );
            }
            (role, m) => unreachable!("{role:?} cannot finish computing {m:?}"),
        }
    }

    fn handle_client(&mut self, now: SimTime, client: u32, msg: Msg, sched: &mut Scheduler<Event>) {
        match msg {
            // Scheduling phase done: fire the service request at the
            // selected server.
            Msg::SchedReply { req, server, .. } => {
                {
                    let r = &mut self.requests[req as usize];
                    r.sched_done_at = Some(now);
                    let issued_at = r.issued_at;
                    self.scheduling_times
                        .push(now.since(issued_at).as_seconds());
                }
                let slot = self.node_to_slot[server as usize];
                debug_assert_ne!(slot, u32::MAX, "selected server exists in the plan");
                debug_assert_eq!(self.plan.role[slot as usize], Role::Server);
                self.send_from_client(
                    now,
                    Endpoint::Slot(slot),
                    Msg::ServiceRequest { req },
                    sched,
                );
            }
            // Completed request: record and loop.
            Msg::ServiceReply { req } => {
                let r = &mut self.requests[req as usize];
                debug_assert!(r.active);
                r.active = false;
                let issued_at = r.issued_at;
                let sched_done = r.sched_done_at.expect("service follows scheduling");
                debug_assert_eq!(r.client, client);
                let service = r.service as usize;
                self.free.push(req);
                self.completed += 1;
                self.completed_per_service[service] += 1;
                self.meter.record(now);
                self.response_times.push(now.since(issued_at).as_seconds());
                self.service_times.push(now.since(sched_done).as_seconds());
                if !self.open_loop {
                    sched.after(self.think_time, Event::ClientIssue { client });
                }
            }
            m => unreachable!("clients never receive {m:?}"),
        }
    }
}

impl World for Middleware {
    type Event = Event;

    fn handle(&mut self, now: SimTime, event: Event, sched: &mut Scheduler<Event>) {
        match event {
            Event::ClientIssue { client } => {
                let req = self.alloc_request(client, now);
                self.issued += 1;
                // Root is always slot 0.
                self.send_from_client(now, Endpoint::Slot(0), Msg::SchedRequest { req }, sched);
            }
            Event::Deliver(EndpointEvent { at, msg, edge_bw }) => match at {
                Endpoint::Slot(slot) => {
                    // All receives occupy the port (control timeline).
                    let occ = self.occupancy(self.recv_size(slot, &msg), edge_bw);
                    let node = self.plan.node[slot as usize] as usize;
                    let (_, end) = self.timelines.get_mut(node).reserve(now, occ);
                    sched.at(end, Event::Received(EndpointEvent { at, msg, edge_bw }));
                }
                Endpoint::Client(client) => self.handle_client(now, client, msg, sched),
            },
            Event::Received(EndpointEvent { at, msg, .. }) => match at {
                Endpoint::Slot(slot) => self.handle_received(now, slot, msg, sched),
                Endpoint::Client(_) => unreachable!("clients have no receive occupancy"),
            },
            Event::ComputeDone {
                slot,
                msg: MsgEvent(msg),
            } => self.handle_compute_done(now, slot, msg, sched),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adept_desim::Engine;
    use adept_hierarchy::builder::star;
    use adept_platform::generator::lyon_cluster;
    use adept_platform::NodeId;
    use adept_workload::Dgemm;

    fn build(n_nodes: u32, servers: u32, dgemm: u32) -> Engine<Middleware> {
        let platform = lyon_cluster(n_nodes as usize);
        let ids: Vec<NodeId> = (0..=servers).map(NodeId).collect();
        let plan = star(&ids);
        let svc = Dgemm::new(dgemm).service();
        let world = Middleware::new(&platform, &plan, &svc, SimConfig::ideal(), Seconds::ZERO);
        Engine::new(world)
    }

    #[test]
    fn single_request_completes() {
        let mut engine = build(3, 2, 100);
        let client = engine.world_mut().add_client();
        engine.schedule(SimTime::ZERO, Event::ClientIssue { client });
        // A closed-loop client reissues forever; run for a bounded window.
        engine.run_until(SimTime::from_seconds(1.0));
        let w = engine.world();
        assert!(w.completed >= 1, "at least one request must complete");
        assert_eq!(w.issued, w.completed + 1, "exactly one in flight");
    }

    #[test]
    fn response_time_matches_hand_computation_for_minimal_star() {
        // One client, one agent, one server, no jitter/overhead/latency.
        let mut engine = build(2, 1, 100);
        let client = engine.world_mut().add_client();
        engine.schedule(SimTime::ZERO, Event::ClientIssue { client });
        engine.run_until(SimTime::from_seconds(0.5));
        let w = engine.world();
        assert!(w.completed >= 1);
        // First request on idle timelines: all phases sequential.
        let b = 100.0; // Mb/s
        let wgt = 400.0; // MFlop/s
        let sched_time = 5.3e-3 / b // root recv from client
            + (0.17) / wgt // Wreq
            + 5.3e-3 / b // root send to child
            + 5.3e-5 / b // server recv
            + 6.4e-3 / wgt // Wpre
            + 6.4e-5 / b // server send
            + 5.4e-3 / b // root recv reply
            + (4.0e-3 + 5.4e-3) / wgt // Wrep(1)
            + 5.4e-3 / b; // root send reply to client
        let service_time = 5.3e-5 / b + 2.0 / wgt + 6.4e-5 / b;
        let expected = sched_time + service_time;
        let got = w.response_times.min().unwrap();
        assert!(
            (got - expected).abs() < 1e-6,
            "first response time {got} vs expected {expected}"
        );
    }

    #[test]
    fn servers_share_load_under_concurrency() {
        let mut engine = build(5, 4, 1000);
        for _ in 0..8 {
            let c = engine.world_mut().add_client();
            engine.schedule(SimTime::ZERO, Event::ClientIssue { client: c });
        }
        engine.run_until(SimTime::from_seconds(120.0));
        let w = engine.world();
        let active: Vec<u64> = w
            .per_server_completions
            .iter()
            .copied()
            .filter(|&c| c > 0)
            .collect();
        assert!(
            active.len() >= 3,
            "prediction-based selection must spread load, got {:?}",
            w.per_server_completions
        );
        let (min, max) = (*active.iter().min().unwrap(), *active.iter().max().unwrap());
        assert!(
            max - min <= max / 2 + 2,
            "load should be roughly even: {active:?}"
        );
    }

    #[test]
    fn conservation_completed_le_issued() {
        let mut engine = build(4, 3, 310);
        for _ in 0..6 {
            let c = engine.world_mut().add_client();
            engine.schedule(SimTime::ZERO, Event::ClientIssue { client: c });
        }
        engine.run_until(SimTime::from_seconds(30.0));
        let w = engine.world();
        assert!(w.completed <= w.issued);
        // Closed loop: in-flight requests = clients.
        assert_eq!(w.issued - w.completed, 6);
        assert_eq!(w.meter.count() as u64, w.completed);
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        let run = |seed: u64| {
            let platform = lyon_cluster(4);
            let ids: Vec<NodeId> = (0..4).map(NodeId).collect();
            let plan = star(&ids);
            let svc = Dgemm::new(310).service();
            let world = Middleware::new(
                &platform,
                &plan,
                &svc,
                SimConfig::paper().with_seed(seed),
                Seconds::ZERO,
            );
            let mut engine = Engine::new(world);
            for _ in 0..5 {
                let c = engine.world_mut().add_client();
                engine.schedule(SimTime::ZERO, Event::ClientIssue { client: c });
            }
            engine.run_until(SimTime::from_seconds(20.0));
            (engine.world().completed, engine.dispatched())
        };
        assert_eq!(run(1), run(1));
        let (c1, _) = run(1);
        let (c2, _) = run(2);
        // Different jitter streams may or may not change counts; both runs
        // must at least complete work.
        assert!(c1 > 0 && c2 > 0);
    }

    #[test]
    fn utilization_of_bottleneck_server_approaches_one() {
        // DGEMM 1000 on a 1-server star: the server saturates.
        let mut engine = build(2, 1, 1000);
        for _ in 0..4 {
            let c = engine.world_mut().add_client();
            engine.schedule(SimTime::ZERO, Event::ClientIssue { client: c });
        }
        let horizon = SimTime::from_seconds(200.0);
        engine.run_until(horizon);
        let w = engine.world();
        let server_util = w.service_utilization(1, horizon);
        assert!(
            server_util > 0.95,
            "bottleneck server should be ~fully busy, got {server_util}"
        );
    }
}
