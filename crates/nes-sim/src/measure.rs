//! Measurement protocols over the simulator.
//!
//! The paper's protocol (Section 5.1): "We introduce new clients until the
//! throughput of the platform stops improving; we then let the platform
//! run with no addition of clients for 10 minutes."
//!
//! * [`measure_throughput`] — one load level: ramp to `n` clients, hold,
//!   report the sustained rate (one point of Figures 2, 4, 6, 7).
//! * [`saturation_search`] — the "until it stops improving" loop: walk the
//!   client count up a geometric-ish schedule and return the best
//!   sustained rate (the "measured maximum throughput" of Figures 3
//!   and 5).

use crate::config::SimConfig;
use crate::sim::{SimOutcome, Simulation};
use adept_hierarchy::DeploymentPlan;
use adept_platform::{Platform, Seconds};
use adept_workload::{ClientRamp, ServiceSpec};

/// One measured load level.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadPoint {
    /// Number of concurrent closed-loop clients.
    pub clients: usize,
    /// Sustained completion rate (req/s).
    pub throughput: f64,
    /// Mean response time (s).
    pub mean_response_time: f64,
}

/// Result of a saturation search.
#[derive(Debug, Clone, PartialEq)]
pub struct SaturationResult {
    /// The best sustained rate observed.
    pub max_throughput: f64,
    /// Client count at which it was observed.
    pub at_clients: usize,
    /// Every load level measured along the way.
    pub curve: Vec<LoadPoint>,
}

/// Measures the sustained throughput of `plan` at exactly `clients`
/// closed-loop clients (one point of a figure's load curve).
pub fn measure_throughput(
    platform: &Platform,
    plan: &DeploymentPlan,
    service: &ServiceSpec,
    clients: usize,
    config: &SimConfig,
) -> SimOutcome {
    // A fast ramp (launch interval scaled down) keeps simulated time
    // focused on the steady state; the hold window is what we measure.
    let ramp = ClientRamp {
        max_clients: clients,
        launch_interval: Seconds(0.05),
        think_time: Seconds::ZERO,
        hold_time: Seconds(config.warmup.value() + config.measure.value()),
    };
    let mut sim = Simulation::new(platform, plan, service, *config);
    sim.run_ramp(&ramp, config)
}

/// The paper's saturation protocol: increase the client population until
/// the sustained rate stops improving by more than `tolerance`
/// (relative), then report the maximum.
///
/// The schedule multiplies the population by ~1.5 per step (capped at
/// `max_clients`), which brackets the knee with few simulation runs.
pub fn saturation_search(
    platform: &Platform,
    plan: &DeploymentPlan,
    service: &ServiceSpec,
    config: &SimConfig,
    max_clients: usize,
    tolerance: f64,
) -> SaturationResult {
    assert!(max_clients >= 1, "need at least one client");
    assert!(
        (0.0..1.0).contains(&tolerance),
        "tolerance must be a small relative fraction"
    );
    let mut curve = Vec::new();
    let mut best = (0.0f64, 0usize);
    let mut clients = 1usize;
    let mut stalls = 0u32;
    loop {
        let out = measure_throughput(platform, plan, service, clients, config);
        curve.push(LoadPoint {
            clients,
            throughput: out.throughput,
            mean_response_time: out.mean_response_time,
        });
        if out.throughput > best.0 * (1.0 + tolerance) {
            best = (out.throughput, clients);
            stalls = 0;
        } else {
            stalls += 1;
            // Two consecutive non-improvements: saturated.
            if stalls >= 2 {
                break;
            }
        }
        if clients >= max_clients {
            break;
        }
        clients = ((clients * 3).div_ceil(2)).min(max_clients);
    }
    SaturationResult {
        max_throughput: best.0,
        at_clients: best.1,
        curve,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adept_hierarchy::builder::star;
    use adept_platform::generator::lyon_cluster;
    use adept_platform::NodeId;
    use adept_workload::Dgemm;

    fn ids(n: u32) -> Vec<NodeId> {
        (0..n).map(NodeId).collect()
    }

    fn fast_config() -> SimConfig {
        SimConfig::ideal().with_windows(Seconds(1.0), Seconds(8.0))
    }

    #[test]
    fn throughput_saturates_with_load() {
        // DGEMM 1000, one server: service rate ~0.2/s per server; more
        // clients cannot push beyond it.
        let platform = lyon_cluster(2);
        let plan = star(&ids(2));
        let svc = Dgemm::new(1000).service();
        let cfg = SimConfig::ideal().with_windows(Seconds(5.0), Seconds(50.0));
        let one = measure_throughput(&platform, &plan, &svc, 1, &cfg).throughput;
        let four = measure_throughput(&platform, &plan, &svc, 4, &cfg).throughput;
        assert!(four <= one * 1.2 + 0.05, "saturated: {one} vs {four}");
    }

    #[test]
    fn saturation_search_finds_knee() {
        let platform = lyon_cluster(3);
        let plan = star(&ids(3));
        let svc = Dgemm::new(310).service();
        let cfg = fast_config();
        let result = saturation_search(&platform, &plan, &svc, &cfg, 32, 0.02);
        assert!(result.max_throughput > 0.0);
        assert!(result.at_clients >= 1);
        assert!(result.curve.len() >= 2);
        // The curve should be monotone up to the knee (within noise).
        let first = result.curve.first().unwrap().throughput;
        assert!(result.max_throughput >= first * 0.99);
    }

    #[test]
    fn ideal_sim_approaches_model_prediction() {
        // The headline consistency check: with no overhead/jitter, the
        // simulator's sustained rate lands near the Eq. 16 bound.
        use adept_core::model::ModelParams;
        let platform = lyon_cluster(3);
        let plan = star(&ids(3));
        let svc = Dgemm::new(310).service();
        let predicted = ModelParams::from_platform(&platform)
            .evaluate(&platform, &plan, &svc)
            .rho;
        let cfg = SimConfig::ideal().with_windows(Seconds(5.0), Seconds(30.0));
        // Plenty of clients to saturate the 2-server pipeline.
        let measured = measure_throughput(&platform, &plan, &svc, 16, &cfg).throughput;
        let ratio = measured / predicted;
        assert!(
            ratio > 0.85 && ratio < 1.05,
            "measured {measured} vs predicted {predicted} (ratio {ratio})"
        );
    }

    #[test]
    fn paper_config_measures_below_ideal_when_agent_limited() {
        // Per-message overhead hits agent-limited deployments hardest: the
        // root handles 2(1+d) messages per request, so at a high degree
        // the overhead term measurably dents the tiny DGEMM 10 cycle.
        // (For service-limited deployments it is negligible relative to
        // Wapp — as in the paper, where measured/predicted gaps are
        // largest for small requests.)
        let platform = lyon_cluster(12);
        let plan = star(&ids(12));
        let svc = Dgemm::new(10).service();
        let ideal_cfg = SimConfig::ideal().with_windows(Seconds(2.0), Seconds(15.0));
        let paper_cfg = SimConfig::paper().with_windows(Seconds(2.0), Seconds(15.0));
        let ideal = measure_throughput(&platform, &plan, &svc, 24, &ideal_cfg).throughput;
        let paper = measure_throughput(&platform, &plan, &svc, 24, &paper_cfg).throughput;
        assert!(
            paper < ideal * 0.9,
            "overhead must measurably cost an agent-limited deployment: paper {paper} vs ideal {ideal}"
        );
    }

    #[test]
    #[should_panic(expected = "at least one client")]
    fn saturation_needs_clients() {
        let platform = lyon_cluster(2);
        let plan = star(&ids(2));
        let svc = Dgemm::new(10).service();
        let _ = saturation_search(&platform, &plan, &svc, &fast_config(), 0, 0.02);
    }
}
