//! # adept-workload
//!
//! Workload substrate for the deployment-planning reproduction: what the
//! clients ask the middleware to do, and how load is offered to the
//! deployed platform.
//!
//! The paper's experiments (Section 5) all use **DGEMM**, the level-3 BLAS
//! matrix multiplication, at sizes 10, 100, 200, 310 and 1000, with a
//! *closed-loop* client population: each client script runs one request at a
//! time in a continual loop, and one new client is launched every second
//! until platform throughput stops improving.
//!
//! * [`service`] — application service descriptions (`Wapp` in MFlop),
//!   including [`service::Dgemm`];
//! * [`demand`] — the paper's *client demand* (`client_volume`) consumed by
//!   the planner heuristic;
//! * [`ramp`] — the client-ramp measurement protocol and open-loop arrival
//!   processes for the simulator;
//! * [`forecast`] — execution-time forecasting (the paper's future work):
//!   streaming `Wapp` estimation and power-law scaling fits;
//! * [`mix`] — multi-service workloads (the paper's "several
//!   applications" future-work item).

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod demand;
pub mod forecast;
pub mod mix;
pub mod ramp;
pub mod service;

pub use demand::ClientDemand;
pub use forecast::{PowerLawFit, RateForecaster, ScalingForecaster, ScalingSample, WappEstimator};
pub use mix::{DemandError, MixDemand, ServiceMix};
pub use ramp::{ArrivalProcess, ClientRamp};
pub use service::{Dgemm, ServiceSpec};
