//! Execution-time forecasting — the paper's future work.
//!
//! "In this model we consider that we have a function to know the
//! execution time but we should study another approach with statistical
//! mathematical function to forecast the execution time." (Section 6)
//!
//! Two estimators are provided:
//!
//! * [`WappEstimator`] — a streaming estimator of a *fixed* service's
//!   `Wapp`: each observed execution contributes `duration × node power`
//!   MFlop; an exponential moving average tracks drift.
//! * [`ScalingForecaster`] — a parametric fit `Wapp(n) = c · n^e` over
//!   observations at different problem sizes (log–log least squares),
//!   which recovers the cubic DGEMM law and extrapolates to unmeasured
//!   sizes. This is what lets a deployment be planned for a problem size
//!   nobody has run yet.

use crate::service::ServiceSpec;
use adept_platform::{Mflop, MflopRate, Seconds};

/// Streaming `Wapp` estimator for one service (exponential moving
/// average over observed executions).
#[derive(Debug, Clone)]
pub struct WappEstimator {
    alpha: f64,
    estimate: Option<f64>,
    samples: u64,
}

impl WappEstimator {
    /// An estimator with smoothing factor `alpha ∈ (0, 1]` (1 = last
    /// sample wins; small values average over many samples).
    pub fn new(alpha: f64) -> Self {
        assert!(
            alpha > 0.0 && alpha <= 1.0,
            "alpha must be in (0,1], got {alpha}"
        );
        Self {
            alpha,
            estimate: None,
            samples: 0,
        }
    }

    /// Records one observed execution: `duration` on a node of `power`.
    pub fn observe(&mut self, duration: Seconds, power: MflopRate) {
        assert!(duration.value() >= 0.0, "durations are non-negative");
        let mflop = duration.value() * power.value();
        self.estimate = Some(match self.estimate {
            None => mflop,
            Some(prev) => prev + self.alpha * (mflop - prev),
        });
        self.samples += 1;
    }

    /// Current estimate (`None` before the first observation).
    pub fn estimate(&self) -> Option<Mflop> {
        self.estimate.map(Mflop)
    }

    /// Observations consumed.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Builds a [`ServiceSpec`] from the estimate.
    ///
    /// # Panics
    /// Panics before the first observation.
    pub fn to_service(&self, name: impl Into<String>) -> ServiceSpec {
        ServiceSpec::new(
            name,
            self.estimate().expect("need at least one observation"),
        )
    }
}

/// One observation for the scaling fit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScalingSample {
    /// Problem size (e.g. the matrix dimension).
    pub size: f64,
    /// Observed duration.
    pub duration: Seconds,
    /// Power of the node that ran it.
    pub power: MflopRate,
}

/// Result of the power-law fit `Wapp(n) = c · n^e`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerLawFit {
    /// Coefficient `c` (MFlop at n = 1).
    pub coefficient: f64,
    /// Exponent `e` (3 for dense matrix multiplication).
    pub exponent: f64,
    /// Log–log correlation coefficient of the data.
    pub r: f64,
}

impl PowerLawFit {
    /// Forecast `Wapp` at a (possibly unmeasured) problem size.
    pub fn predict(&self, size: f64) -> Mflop {
        assert!(size > 0.0, "size must be positive");
        Mflop(self.coefficient * size.powf(self.exponent))
    }

    /// Forecast the service spec at a problem size.
    pub fn service(&self, name: impl Into<String>, size: f64) -> ServiceSpec {
        ServiceSpec::new(name, self.predict(size))
    }
}

/// Parametric `Wapp(n)` forecaster over multi-size observations.
#[derive(Debug, Clone, Default)]
pub struct ScalingForecaster {
    samples: Vec<ScalingSample>,
}

impl ScalingForecaster {
    /// An empty forecaster.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one observation.
    ///
    /// # Panics
    /// Panics on non-positive size or duration (log–log fit).
    pub fn observe(&mut self, sample: ScalingSample) {
        assert!(
            sample.size > 0.0 && sample.duration.value() > 0.0,
            "scaling samples need positive size and duration"
        );
        self.samples.push(sample);
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when no observation was added.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Log–log least-squares fit of `Wapp(n) = c·n^e`.
    ///
    /// Returns `None` with fewer than two distinct sizes.
    pub fn fit(&self) -> Option<PowerLawFit> {
        if self.samples.len() < 2 {
            return None;
        }
        let xs: Vec<f64> = self.samples.iter().map(|s| s.size.ln()).collect();
        let first = xs[0];
        if xs.iter().all(|&x| (x - first).abs() < 1e-12) {
            return None; // one distinct size: exponent unidentifiable
        }
        let ys: Vec<f64> = self
            .samples
            .iter()
            .map(|s| (s.duration.value() * s.power.value()).ln())
            .collect();
        let n = xs.len() as f64;
        let mx = xs.iter().sum::<f64>() / n;
        let my = ys.iter().sum::<f64>() / n;
        let (mut sxx, mut syy, mut sxy) = (0.0, 0.0, 0.0);
        for (&x, &y) in xs.iter().zip(&ys) {
            sxx += (x - mx) * (x - mx);
            syy += (y - my) * (y - my);
            sxy += (x - mx) * (y - my);
        }
        let exponent = sxy / sxx;
        let coefficient = (my - exponent * mx).exp();
        let r = if syy == 0.0 {
            1.0
        } else {
            sxy / (sxx.sqrt() * syy.sqrt())
        };
        Some(PowerLawFit {
            coefficient,
            exponent,
            r,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::Dgemm;

    #[test]
    fn wapp_estimator_recovers_constant_service() {
        let truth = Dgemm::new(310).wapp();
        let mut est = WappEstimator::new(0.2);
        // Executions on nodes of different powers, all the same Wapp.
        for &power in &[100.0, 250.0, 400.0, 330.0, 180.0] {
            let duration = Seconds(truth.value() / power);
            est.observe(duration, MflopRate(power));
        }
        let got = est.estimate().expect("observed").value();
        assert!(
            (got - truth.value()).abs() < 1e-9,
            "estimate {got} vs truth {}",
            truth.value()
        );
        assert_eq!(est.samples(), 5);
        assert_eq!(est.to_service("dgemm-310").wapp.value(), got);
    }

    #[test]
    fn wapp_estimator_tracks_drift() {
        let mut est = WappEstimator::new(0.5);
        est.observe(Seconds(1.0), MflopRate(100.0)); // 100 MFlop
        for _ in 0..20 {
            est.observe(Seconds(2.0), MflopRate(100.0)); // 200 MFlop
        }
        let got = est.estimate().expect("observed").value();
        assert!(
            (got - 200.0).abs() < 1.0,
            "EMA must converge to 200, got {got}"
        );
    }

    #[test]
    #[should_panic(expected = "alpha must be in")]
    fn bad_alpha_rejected() {
        let _ = WappEstimator::new(0.0);
    }

    #[test]
    fn scaling_forecaster_recovers_cubic_law() {
        let mut f = ScalingForecaster::new();
        for &n in &[50u32, 100, 200, 400, 800] {
            let wapp = Dgemm::new(n).wapp();
            // Observed on a 350 MFlop/s node.
            f.observe(ScalingSample {
                size: n as f64,
                duration: Seconds(wapp.value() / 350.0),
                power: MflopRate(350.0),
            });
        }
        let fit = f.fit().expect("5 sizes");
        assert!(
            (fit.exponent - 3.0).abs() < 1e-9,
            "exponent {}",
            fit.exponent
        );
        assert!(
            (fit.coefficient - 2e-6).abs() < 1e-12,
            "coeff {}",
            fit.coefficient
        );
        assert!((fit.r - 1.0).abs() < 1e-12);
        // Extrapolate to an unmeasured size.
        let predicted = fit.predict(310.0);
        let truth = Dgemm::new(310).wapp();
        assert!((predicted.value() - truth.value()).abs() < 1e-6);
    }

    #[test]
    fn scaling_forecaster_handles_noise() {
        let mut f = ScalingForecaster::new();
        for (i, &n) in [64u32, 128, 256, 512].iter().enumerate() {
            let wapp = Dgemm::new(n).wapp();
            let noise = if i % 2 == 0 { 1.08 } else { 0.92 };
            f.observe(ScalingSample {
                size: n as f64,
                duration: Seconds(wapp.value() * noise / 400.0),
                power: MflopRate(400.0),
            });
        }
        let fit = f.fit().expect("4 sizes");
        assert!((fit.exponent - 3.0).abs() < 0.1);
        assert!(fit.r > 0.999);
    }

    #[test]
    fn degenerate_fits_return_none() {
        let mut f = ScalingForecaster::new();
        assert!(f.fit().is_none());
        f.observe(ScalingSample {
            size: 100.0,
            duration: Seconds(1.0),
            power: MflopRate(100.0),
        });
        assert!(f.fit().is_none(), "one sample is not enough");
        f.observe(ScalingSample {
            size: 100.0,
            duration: Seconds(1.1),
            power: MflopRate(100.0),
        });
        assert!(f.fit().is_none(), "one distinct size is not enough");
    }

    #[test]
    fn forecast_feeds_the_planner_pipeline() {
        // The future-work loop closed: observe small runs, forecast a big
        // one, build its ServiceSpec.
        let mut f = ScalingForecaster::new();
        for &n in &[10u32, 50, 100] {
            f.observe(ScalingSample {
                size: n as f64,
                duration: Seconds(Dgemm::new(n).wapp().value() / 400.0),
                power: MflopRate(400.0),
            });
        }
        let svc = f
            .fit()
            .expect("3 sizes")
            .service("dgemm-forecast-1000", 1000.0);
        let truth = Dgemm::new(1000).wapp().value();
        assert!((svc.wapp.value() - truth).abs() / truth < 1e-6);
    }
}
