//! Execution-time forecasting — the paper's future work.
//!
//! "In this model we consider that we have a function to know the
//! execution time but we should study another approach with statistical
//! mathematical function to forecast the execution time." (Section 6)
//!
//! Three estimators are provided:
//!
//! * [`WappEstimator`] — a streaming estimator of a *fixed* service's
//!   `Wapp`: each observed execution contributes `duration × node power`
//!   MFlop; an exponential moving average tracks drift.
//! * [`ScalingForecaster`] — a parametric fit `Wapp(n) = c · n^e` over
//!   observations at different problem sizes (log–log least squares),
//!   which recovers the cubic DGEMM law and extrapolates to unmeasured
//!   sizes. This is what lets a deployment be planned for a problem size
//!   nobody has run yet.
//! * [`RateForecaster`] — a streaming estimator of a service's *demand*
//!   (completed-request rate), tracking the relative **drift** of the
//!   forecast against the rate the running deployment was planned for.
//!   This drift statistic is what an autonomic replanning trigger
//!   thresholds on: the deployment stays put while the forecast stays
//!   near its planning assumption, and a replan fires when reality
//!   walks away from it.

use crate::service::ServiceSpec;
use adept_platform::{Mflop, MflopRate, Seconds};

/// Streaming `Wapp` estimator for one service (exponential moving
/// average over observed executions).
#[derive(Debug, Clone)]
pub struct WappEstimator {
    alpha: f64,
    estimate: Option<f64>,
    /// Estimate at the last [`mark`](WappEstimator::mark) — the `Wapp`
    /// the current deployment was planned with.
    marked: Option<f64>,
    samples: u64,
    rejected: u64,
}

impl WappEstimator {
    /// An estimator with smoothing factor `alpha ∈ (0, 1]` (1 = last
    /// sample wins; small values average over many samples).
    pub fn new(alpha: f64) -> Self {
        assert!(
            alpha > 0.0 && alpha <= 1.0,
            "alpha must be in (0,1], got {alpha}"
        );
        Self {
            alpha,
            estimate: None,
            marked: None,
            samples: 0,
            rejected: 0,
        }
    }

    /// Records one observed execution: `duration` on a node of `power`.
    ///
    /// A corrupt sample — NaN or infinite duration/power, or a negative
    /// duration — is **rejected** (counted in
    /// [`rejected`](WappEstimator::rejected), returns `false`) instead
    /// of entering the moving average: the EMA never forgets, so a
    /// single NaN would otherwise poison the estimate, and through it
    /// every subsequent replan's `Wapp`, forever. Sensor glitches are
    /// operational reality for a control loop, not programmer errors.
    pub fn observe(&mut self, duration: Seconds, power: MflopRate) -> bool {
        let mflop = duration.value() * power.value();
        // The `>= 0.0` comparisons also reject NaN inputs; the product
        // check catches two huge finite inputs overflowing to infinity.
        let healthy = duration.value() >= 0.0 && power.value() >= 0.0 && mflop.is_finite();
        if !healthy {
            self.rejected += 1;
            return false;
        }
        self.estimate = Some(match self.estimate {
            None => mflop,
            Some(prev) => prev + self.alpha * (mflop - prev),
        });
        self.samples += 1;
        true
    }

    /// Current estimate (`None` before the first observation).
    pub fn estimate(&self) -> Option<Mflop> {
        self.estimate.map(Mflop)
    }

    /// Observations consumed.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Corrupt observations rejected (see
    /// [`observe`](WappEstimator::observe)).
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Records the current estimate as the value the running deployment
    /// was planned with; [`drift`](WappEstimator::drift) is measured
    /// against it from now on.
    ///
    /// # Panics
    /// Panics before the first observation.
    pub fn mark(&mut self) {
        self.marked = Some(
            self.estimate
                // audit: allow(unwrap, "documented panicking precondition of
                // the estimator API (see the method's doc comment)")
                .expect("cannot mark before the first observation"),
        );
    }

    /// Relative drift of the estimate since the last
    /// [`mark`](WappEstimator::mark): `|est - marked| / marked`. Zero
    /// before any mark or observation.
    pub fn drift(&self) -> f64 {
        match (self.estimate, self.marked) {
            (Some(est), Some(marked)) if marked > 0.0 => (est - marked).abs() / marked,
            _ => 0.0,
        }
    }

    /// Builds a [`ServiceSpec`] from the estimate.
    ///
    /// # Panics
    /// Panics before the first observation.
    pub fn to_service(&self, name: impl Into<String>) -> ServiceSpec {
        ServiceSpec::new(
            name,
            // audit: allow(unwrap, "documented panicking precondition of the
            // estimator API (see the method's doc comment)")
            self.estimate().expect("need at least one observation"),
        )
    }
}

/// One observation for the scaling fit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScalingSample {
    /// Problem size (e.g. the matrix dimension).
    pub size: f64,
    /// Observed duration.
    pub duration: Seconds,
    /// Power of the node that ran it.
    pub power: MflopRate,
}

/// Result of the power-law fit `Wapp(n) = c · n^e`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerLawFit {
    /// Coefficient `c` (MFlop at n = 1).
    pub coefficient: f64,
    /// Exponent `e` (3 for dense matrix multiplication).
    pub exponent: f64,
    /// Log–log correlation coefficient of the data.
    pub r: f64,
}

impl PowerLawFit {
    /// Forecast `Wapp` at a (possibly unmeasured) problem size.
    pub fn predict(&self, size: f64) -> Mflop {
        assert!(size > 0.0, "size must be positive");
        Mflop(self.coefficient * size.powf(self.exponent))
    }

    /// Forecast the service spec at a problem size.
    pub fn service(&self, name: impl Into<String>, size: f64) -> ServiceSpec {
        ServiceSpec::new(name, self.predict(size))
    }
}

/// Parametric `Wapp(n)` forecaster over multi-size observations.
#[derive(Debug, Clone, Default)]
pub struct ScalingForecaster {
    samples: Vec<ScalingSample>,
}

impl ScalingForecaster {
    /// An empty forecaster.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one observation.
    ///
    /// # Panics
    /// Panics on non-positive size or duration (log–log fit).
    pub fn observe(&mut self, sample: ScalingSample) {
        assert!(
            sample.size > 0.0 && sample.duration.value() > 0.0,
            "scaling samples need positive size and duration"
        );
        self.samples.push(sample);
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when no observation was added.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Log–log least-squares fit of `Wapp(n) = c·n^e`.
    ///
    /// Returns `None` with fewer than two distinct sizes.
    pub fn fit(&self) -> Option<PowerLawFit> {
        if self.samples.len() < 2 {
            return None;
        }
        let xs: Vec<f64> = self.samples.iter().map(|s| s.size.ln()).collect();
        let first = xs[0];
        if xs.iter().all(|&x| (x - first).abs() < 1e-12) {
            return None; // one distinct size: exponent unidentifiable
        }
        let ys: Vec<f64> = self
            .samples
            .iter()
            .map(|s| (s.duration.value() * s.power.value()).ln())
            .collect();
        let n = xs.len() as f64;
        let mx = xs.iter().sum::<f64>() / n;
        let my = ys.iter().sum::<f64>() / n;
        let (mut sxx, mut syy, mut sxy) = (0.0, 0.0, 0.0);
        for (&x, &y) in xs.iter().zip(&ys) {
            sxx += (x - mx) * (x - mx);
            syy += (y - my) * (y - my);
            sxy += (x - mx) * (y - my);
        }
        let exponent = sxy / sxx;
        let coefficient = (my - exponent * mx).exp();
        let r = if syy == 0.0 {
            1.0
        } else {
            sxy / (sxx.sqrt() * syy.sqrt())
        };
        Some(PowerLawFit {
            coefficient,
            exponent,
            r,
        })
    }
}

/// Streaming demand forecaster for one service: an exponential moving
/// average over observed completed-request rates (req/s per observation
/// window), with the drift statistics an autonomic replanning trigger
/// needs.
///
/// The forecaster distinguishes the **forecast** (where demand is
/// heading) from the **planned rate** (what the running deployment was
/// sized for, set by [`mark_planned`](RateForecaster::mark_planned)
/// each time a plan is committed). [`drift`](RateForecaster::drift) is
/// the relative gap between the two — the quantity a
/// forecast-drift trigger thresholds on.
#[derive(Debug, Clone)]
pub struct RateForecaster {
    alpha: f64,
    estimate: Option<f64>,
    planned: Option<f64>,
    samples: u64,
}

impl RateForecaster {
    /// A forecaster with smoothing factor `alpha ∈ (0, 1]` (1 = last
    /// window wins; small values average over many windows).
    pub fn new(alpha: f64) -> Self {
        assert!(
            alpha > 0.0 && alpha <= 1.0,
            "alpha must be in (0,1], got {alpha}"
        );
        Self {
            alpha,
            estimate: None,
            planned: None,
            samples: 0,
        }
    }

    /// Records one observed demand rate (completed or offered requests
    /// per second over the last observation window).
    pub fn observe(&mut self, rate: f64) {
        assert!(
            rate.is_finite() && rate >= 0.0,
            "rates are non-negative and finite, got {rate}"
        );
        self.estimate = Some(match self.estimate {
            None => rate,
            Some(prev) => prev + self.alpha * (rate - prev),
        });
        self.samples += 1;
    }

    /// Current demand forecast (`None` before the first observation).
    pub fn forecast(&self) -> Option<f64> {
        self.estimate
    }

    /// Observations consumed.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Records the rate the (re)planned deployment was sized for;
    /// [`drift`](RateForecaster::drift) resets to zero relative to it.
    ///
    /// # Panics
    /// Panics on a negative or non-finite rate.
    pub fn mark_planned(&mut self, rate: f64) {
        assert!(
            rate.is_finite() && rate >= 0.0,
            "planned rates are non-negative and finite, got {rate}"
        );
        self.planned = Some(rate);
    }

    /// The rate the running deployment was planned for, if any.
    pub fn planned(&self) -> Option<f64> {
        self.planned
    }

    /// Relative drift of the forecast from the planned rate:
    /// `|forecast - planned| / max(planned, ε)`. Zero before the first
    /// observation or plan; a forecast appearing where nothing was ever
    /// planned is infinite drift only in the degenerate `planned = 0`,
    /// `forecast > 0` case, which is reported as the forecast itself
    /// over ε = 1e-12 — i.e. effectively "replan now".
    pub fn drift(&self) -> f64 {
        match (self.estimate, self.planned) {
            (Some(est), Some(planned)) => (est - planned).abs() / planned.max(1e-12),
            _ => 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::Dgemm;

    #[test]
    fn wapp_estimator_recovers_constant_service() {
        let truth = Dgemm::new(310).wapp();
        let mut est = WappEstimator::new(0.2);
        // Executions on nodes of different powers, all the same Wapp.
        for &power in &[100.0, 250.0, 400.0, 330.0, 180.0] {
            let duration = Seconds(truth.value() / power);
            est.observe(duration, MflopRate(power));
        }
        let got = est.estimate().expect("observed").value();
        assert!(
            (got - truth.value()).abs() < 1e-9,
            "estimate {got} vs truth {}",
            truth.value()
        );
        assert_eq!(est.samples(), 5);
        assert_eq!(est.to_service("dgemm-310").wapp.value(), got);
    }

    #[test]
    fn wapp_estimator_tracks_drift() {
        let mut est = WappEstimator::new(0.5);
        est.observe(Seconds(1.0), MflopRate(100.0)); // 100 MFlop
        for _ in 0..20 {
            est.observe(Seconds(2.0), MflopRate(100.0)); // 200 MFlop
        }
        let got = est.estimate().expect("observed").value();
        assert!(
            (got - 200.0).abs() < 1.0,
            "EMA must converge to 200, got {got}"
        );
    }

    #[test]
    #[should_panic(expected = "alpha must be in")]
    fn bad_alpha_rejected() {
        let _ = WappEstimator::new(0.0);
    }

    #[test]
    fn scaling_forecaster_recovers_cubic_law() {
        let mut f = ScalingForecaster::new();
        for &n in &[50u32, 100, 200, 400, 800] {
            let wapp = Dgemm::new(n).wapp();
            // Observed on a 350 MFlop/s node.
            f.observe(ScalingSample {
                size: n as f64,
                duration: Seconds(wapp.value() / 350.0),
                power: MflopRate(350.0),
            });
        }
        let fit = f.fit().expect("5 sizes");
        assert!(
            (fit.exponent - 3.0).abs() < 1e-9,
            "exponent {}",
            fit.exponent
        );
        assert!(
            (fit.coefficient - 2e-6).abs() < 1e-12,
            "coeff {}",
            fit.coefficient
        );
        assert!((fit.r - 1.0).abs() < 1e-12);
        // Extrapolate to an unmeasured size.
        let predicted = fit.predict(310.0);
        let truth = Dgemm::new(310).wapp();
        assert!((predicted.value() - truth.value()).abs() < 1e-6);
    }

    #[test]
    fn scaling_forecaster_handles_noise() {
        let mut f = ScalingForecaster::new();
        for (i, &n) in [64u32, 128, 256, 512].iter().enumerate() {
            let wapp = Dgemm::new(n).wapp();
            let noise = if i % 2 == 0 { 1.08 } else { 0.92 };
            f.observe(ScalingSample {
                size: n as f64,
                duration: Seconds(wapp.value() * noise / 400.0),
                power: MflopRate(400.0),
            });
        }
        let fit = f.fit().expect("4 sizes");
        assert!((fit.exponent - 3.0).abs() < 0.1);
        assert!(fit.r > 0.999);
    }

    #[test]
    fn degenerate_fits_return_none() {
        let mut f = ScalingForecaster::new();
        assert!(f.fit().is_none());
        f.observe(ScalingSample {
            size: 100.0,
            duration: Seconds(1.0),
            power: MflopRate(100.0),
        });
        assert!(f.fit().is_none(), "one sample is not enough");
        f.observe(ScalingSample {
            size: 100.0,
            duration: Seconds(1.1),
            power: MflopRate(100.0),
        });
        assert!(f.fit().is_none(), "one distinct size is not enough");
    }

    #[test]
    fn wapp_drift_is_measured_from_the_mark() {
        let mut est = WappEstimator::new(1.0);
        est.observe(Seconds(1.0), MflopRate(100.0)); // 100 MFlop
        assert_eq!(est.drift(), 0.0, "no mark yet");
        est.mark();
        assert_eq!(est.drift(), 0.0);
        est.observe(Seconds(1.5), MflopRate(100.0)); // 150 MFlop
        assert!((est.drift() - 0.5).abs() < 1e-12);
        est.mark();
        assert_eq!(est.drift(), 0.0, "re-marking resets the reference");
    }

    #[test]
    #[should_panic(expected = "cannot mark")]
    fn wapp_mark_needs_an_observation() {
        WappEstimator::new(0.5).mark();
    }

    #[test]
    fn wapp_estimator_rejects_corrupt_samples() {
        // Regression: one NaN execution sample used to enter the EMA and
        // poison every later estimate (the mark/drift pipeline included).
        let mut est = WappEstimator::new(0.5);
        assert!(!est.observe(Seconds(f64::NAN), MflopRate(100.0)));
        assert!(!est.observe(Seconds(f64::INFINITY), MflopRate(100.0)));
        assert!(!est.observe(Seconds(1.0), MflopRate(f64::NAN)));
        assert!(!est.observe(Seconds(-1.0), MflopRate(100.0)));
        assert!(!est.observe(Seconds(1.0), MflopRate(-400.0)));
        assert!(!est.observe(Seconds(0.0), MflopRate(-400.0)));
        assert_eq!(est.estimate(), None, "corrupt samples must not land");
        assert_eq!(est.samples(), 0);
        assert_eq!(est.rejected(), 6);
        // A clean sample after the garbage works as if nothing happened.
        assert!(est.observe(Seconds(2.0), MflopRate(100.0)));
        assert_eq!(est.estimate().unwrap().value(), 200.0);
        est.mark();
        assert!(!est.observe(Seconds(f64::NAN), MflopRate(100.0)));
        assert_eq!(est.drift(), 0.0, "rejected samples must not move drift");
        assert_eq!(est.samples(), 1);
        assert_eq!(est.rejected(), 7);
    }

    #[test]
    fn rate_forecaster_tracks_demand_and_drift() {
        let mut f = RateForecaster::new(0.5);
        assert_eq!(f.forecast(), None);
        assert_eq!(f.drift(), 0.0, "nothing observed, nothing planned");
        f.observe(2.0);
        assert_eq!(f.forecast(), Some(2.0));
        f.mark_planned(2.0);
        assert_eq!(f.planned(), Some(2.0));
        assert_eq!(f.drift(), 0.0);
        // Demand doubles; the EMA converges and the drift grows.
        for _ in 0..20 {
            f.observe(4.0);
        }
        let fc = f.forecast().unwrap();
        assert!((fc - 4.0).abs() < 0.01, "EMA must converge, got {fc}");
        assert!((f.drift() - 1.0).abs() < 0.01, "drift {} vs 1.0", f.drift());
        assert_eq!(f.samples(), 21);
        // Committing a new plan at the forecast resets the drift.
        f.mark_planned(fc);
        assert!(f.drift() < 1e-9);
    }

    #[test]
    fn rate_forecaster_zero_planned_rate_reports_huge_drift() {
        let mut f = RateForecaster::new(1.0);
        f.mark_planned(0.0);
        f.observe(1.0);
        assert!(f.drift() > 1e9, "demand appearing from nothing must fire");
    }

    #[test]
    #[should_panic(expected = "alpha must be in")]
    fn rate_forecaster_bad_alpha_rejected() {
        let _ = RateForecaster::new(1.5);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rate_forecaster_bad_rate_rejected() {
        RateForecaster::new(0.5).observe(-1.0);
    }

    #[test]
    fn forecast_feeds_the_planner_pipeline() {
        // The future-work loop closed: observe small runs, forecast a big
        // one, build its ServiceSpec.
        let mut f = ScalingForecaster::new();
        for &n in &[10u32, 50, 100] {
            f.observe(ScalingSample {
                size: n as f64,
                duration: Seconds(Dgemm::new(n).wapp().value() / 400.0),
                power: MflopRate(400.0),
            });
        }
        let svc = f
            .fit()
            .expect("3 sizes")
            .service("dgemm-forecast-1000", 1000.0);
        let truth = Dgemm::new(1000).wapp().value();
        assert!((svc.wapp.value() - truth).abs() / truth < 1e-6);
    }
}
