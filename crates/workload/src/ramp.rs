//! Load-offering protocols.
//!
//! The paper's measurement protocol (Section 5.1):
//!
//! > "A unit of load is introduced via a script that runs a single request
//! > at a time in a continual loop. We then introduce load gradually by
//! > launching one client script every second. We introduce new clients
//! > until the throughput of the platform stops improving; we then let the
//! > platform run with no addition of clients for 10 minutes."
//!
//! [`ClientRamp`] captures exactly that; the simulator consumes it. An
//! open-loop Poisson [`ArrivalProcess`] is provided as an extension for
//! stress tests (the paper only uses closed-loop clients).

use adept_platform::units::Seconds;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The paper's closed-loop client-ramp protocol.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClientRamp {
    /// Number of clients at the end of the ramp.
    pub max_clients: usize,
    /// Interval between client launches (the paper uses 1 s).
    pub launch_interval: Seconds,
    /// Client think time between receiving a reply and issuing the next
    /// request (the paper's scripts loop immediately: 0 s).
    pub think_time: Seconds,
    /// Measurement window once all clients are running (the paper holds for
    /// 10 minutes; simulations use a shorter window since they are noise-free).
    pub hold_time: Seconds,
}

impl ClientRamp {
    /// The paper's protocol with a given final client count: 1 client/s
    /// launch rate, zero think time, and a hold window.
    pub fn paper(max_clients: usize, hold_time: Seconds) -> Self {
        assert!(max_clients > 0, "need at least one client");
        assert!(hold_time.value() > 0.0, "hold time must be positive");
        Self {
            max_clients,
            launch_interval: Seconds(1.0),
            think_time: Seconds::ZERO,
            hold_time,
        }
    }

    /// Time at which client `i` (0-based) starts issuing requests.
    #[inline]
    pub fn launch_time(&self, i: usize) -> Seconds {
        Seconds(self.launch_interval.value() * i as f64)
    }

    /// Time at which the ramp is complete and the measurement hold begins.
    #[inline]
    pub fn ramp_end(&self) -> Seconds {
        self.launch_time(self.max_clients.saturating_sub(1))
    }

    /// Total simulated duration: ramp plus hold.
    #[inline]
    pub fn total_duration(&self) -> Seconds {
        self.ramp_end() + self.hold_time
    }
}

/// Open-loop request arrivals (extension; not used by the paper's protocol).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProcess {
    /// Deterministic arrivals at a fixed rate (requests/second).
    Uniform {
        /// Arrival rate in requests per second.
        rate: f64,
    },
    /// Poisson arrivals at a given mean rate (requests/second).
    Poisson {
        /// Mean arrival rate in requests per second.
        rate: f64,
        /// RNG seed for reproducibility.
        seed: u64,
    },
}

impl ArrivalProcess {
    /// Generates arrival times over `[0, horizon)`, sorted ascending.
    ///
    /// # Panics
    /// Panics if the rate is not positive and finite.
    pub fn arrivals(&self, horizon: Seconds) -> Vec<Seconds> {
        match *self {
            ArrivalProcess::Uniform { rate } => {
                assert!(rate.is_finite() && rate > 0.0, "rate must be positive");
                let step = 1.0 / rate;
                let n = (horizon.value() * rate).floor() as usize;
                (0..n).map(|i| Seconds(i as f64 * step)).collect()
            }
            ArrivalProcess::Poisson { rate, seed } => {
                assert!(rate.is_finite() && rate > 0.0, "rate must be positive");
                let mut rng = StdRng::seed_from_u64(seed);
                let mut t = 0.0f64;
                let mut out = Vec::with_capacity((horizon.value() * rate) as usize + 1);
                loop {
                    // Exponential inter-arrival via inverse CDF.
                    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                    t += -u.ln() / rate;
                    if t >= horizon.value() {
                        break;
                    }
                    out.push(Seconds(t));
                }
                out
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_ramp_launch_schedule() {
        let r = ClientRamp::paper(5, Seconds(60.0));
        assert_eq!(r.launch_time(0), Seconds(0.0));
        assert_eq!(r.launch_time(4), Seconds(4.0));
        assert_eq!(r.ramp_end(), Seconds(4.0));
        assert_eq!(r.total_duration(), Seconds(64.0));
        assert_eq!(r.think_time, Seconds::ZERO);
    }

    #[test]
    #[should_panic(expected = "at least one client")]
    fn empty_ramp_rejected() {
        let _ = ClientRamp::paper(0, Seconds(1.0));
    }

    #[test]
    fn single_client_ramp_ends_immediately() {
        let r = ClientRamp::paper(1, Seconds(10.0));
        assert_eq!(r.ramp_end(), Seconds(0.0));
    }

    #[test]
    fn uniform_arrivals_are_evenly_spaced() {
        let a = ArrivalProcess::Uniform { rate: 10.0 }.arrivals(Seconds(1.0));
        assert_eq!(a.len(), 10);
        assert!((a[1].value() - a[0].value() - 0.1).abs() < 1e-12);
        assert!(a.last().unwrap().value() < 1.0);
    }

    #[test]
    fn poisson_arrivals_have_roughly_correct_rate() {
        let a = ArrivalProcess::Poisson {
            rate: 100.0,
            seed: 42,
        }
        .arrivals(Seconds(100.0));
        // 10_000 expected; CLT gives ±3σ ≈ ±300.
        assert!(
            (a.len() as f64 - 10_000.0).abs() < 500.0,
            "got {} arrivals",
            a.len()
        );
        assert!(a.windows(2).all(|w| w[0] <= w[1]), "sorted");
    }

    #[test]
    fn poisson_is_deterministic_in_seed() {
        let mk = |seed| {
            ArrivalProcess::Poisson { rate: 5.0, seed }
                .arrivals(Seconds(10.0))
                .len()
        };
        assert_eq!(mk(7), mk(7));
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn bad_rate_rejected() {
        let _ = ArrivalProcess::Uniform { rate: 0.0 }.arrivals(Seconds(1.0));
    }
}
