//! Client demand — the paper's `client_volume`.
//!
//! Algorithm 1 stops growing the hierarchy once its throughput reaches the
//! client demand (variables `min_ser_cv`, `throughput_diff` in the paper's
//! Table 2): there is no point consuming more resources than needed, since
//! "when the maximum throughput can be achieved by multiple distinct
//! deployments, the preferred deployment is the one using the least
//! resources" (Section 4).

use std::fmt;

/// How much completed-request throughput the clients will ask for.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum ClientDemand {
    /// No known bound: build the highest-throughput deployment the nodes
    /// allow. This is how the paper's Section 5 experiments run (clients are
    /// added until throughput saturates).
    #[default]
    Unbounded,
    /// A target rate in completed requests per second; the planner may stop
    /// once the platform sustains it.
    Target(f64),
}

impl ClientDemand {
    /// The demand as a comparable rate; `Unbounded` maps to `+∞` so that
    /// `min(demand, ρ)` in the heuristic does the right thing.
    #[inline]
    pub fn rate(self) -> f64 {
        match self {
            ClientDemand::Unbounded => f64::INFINITY,
            ClientDemand::Target(r) => r,
        }
    }

    /// True if a deployment achieving `throughput` satisfies this demand.
    #[inline]
    pub fn satisfied_by(self, throughput: f64) -> bool {
        throughput >= self.rate()
    }

    /// A target demand.
    ///
    /// # Panics
    /// Panics unless the rate is positive and finite (use
    /// [`ClientDemand::Unbounded`] for "as much as possible").
    pub fn target(rate: f64) -> Self {
        assert!(
            rate.is_finite() && rate > 0.0,
            "demand rate must be positive and finite, got {rate}"
        );
        ClientDemand::Target(rate)
    }
}

impl fmt::Display for ClientDemand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientDemand::Unbounded => write!(f, "unbounded"),
            ClientDemand::Target(r) => write!(f, "{r} req/s"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_is_never_satisfied() {
        assert!(!ClientDemand::Unbounded.satisfied_by(1e12));
        assert_eq!(ClientDemand::Unbounded.rate(), f64::INFINITY);
    }

    #[test]
    fn target_satisfaction() {
        let d = ClientDemand::target(100.0);
        assert!(d.satisfied_by(100.0));
        assert!(d.satisfied_by(150.0));
        assert!(!d.satisfied_by(99.9));
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn non_positive_target_rejected() {
        let _ = ClientDemand::target(0.0);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn infinite_target_rejected() {
        let _ = ClientDemand::target(f64::INFINITY);
    }

    #[test]
    fn default_is_unbounded() {
        assert_eq!(ClientDemand::default(), ClientDemand::Unbounded);
    }
}
