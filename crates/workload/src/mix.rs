//! Multi-service workloads — the paper's last future-work item.
//!
//! "Finally, we are interested to find a modelization to deploy several
//! middlewares and/or applications on grid." (Section 6)
//!
//! A [`ServiceMix`] is a set of services with request shares: clients
//! draw each request's service from the shares. Deployment-side, servers
//! are *partitioned* among the services (a SeD serves what it has
//! installed); the planner extension in `adept-core` chooses the
//! partition.

use crate::service::ServiceSpec;
use std::fmt;

/// Why a [`MixDemand`] vector was rejected at construction.
///
/// Validating here — instead of letting the poison flow — matters
/// because every planner comparison downstream is a plain float
/// comparison: a NaN rate makes *every* "is this move better" test
/// silently answer no, so a corrupted demand vector would not crash, it
/// would quietly plan nothing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DemandError {
    /// The vector covers no service.
    Empty,
    /// An entry is NaN (index reported).
    NotANumber {
        /// Offending index.
        index: usize,
    },
    /// An entry is negative.
    Negative {
        /// Offending index.
        index: usize,
        /// The rejected rate.
        rate: f64,
    },
}

impl fmt::Display for DemandError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DemandError::Empty => write!(f, "a demand vector needs at least one service"),
            DemandError::NotANumber { index } => {
                write!(f, "demand rates must not be NaN (service {index})")
            }
            DemandError::Negative { index, rate } => write!(
                f,
                "demand rates must be non-negative, got {rate} for service {index}"
            ),
        }
    }
}

impl std::error::Error for DemandError {}

/// A workload mixing several services with fixed request shares.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceMix {
    services: Vec<ServiceSpec>,
    /// Normalized shares, same length as `services`, summing to 1.
    shares: Vec<f64>,
}

impl ServiceMix {
    /// Builds a mix from `(service, weight)` pairs; weights are
    /// normalized to shares. A **zero** weight keeps the service in the
    /// mix with no request share — the degenerate "installed but idle"
    /// service a demand forecast can produce; planners give it no
    /// servers and it never binds the mix throughput.
    ///
    /// # Panics
    /// Panics on an empty list, negative or non-finite weights, or an
    /// all-zero weight vector.
    pub fn new(entries: Vec<(ServiceSpec, f64)>) -> Self {
        assert!(!entries.is_empty(), "a mix needs at least one service");
        let total: f64 = entries.iter().map(|(_, w)| *w).sum();
        assert!(
            entries.iter().all(|(_, w)| w.is_finite() && *w >= 0.0) && total > 0.0,
            "mix weights must be non-negative and finite, with a positive total"
        );
        let (services, shares) = entries.into_iter().map(|(s, w)| (s, w / total)).unzip();
        Self { services, shares }
    }

    /// A single-service "mix" (share 1.0).
    pub fn single(service: ServiceSpec) -> Self {
        Self::new(vec![(service, 1.0)])
    }

    /// Number of services.
    pub fn len(&self) -> usize {
        self.services.len()
    }

    /// True if the mix holds exactly one service.
    pub fn is_empty(&self) -> bool {
        false // by construction a mix is never empty
    }

    /// The services, in declaration order.
    pub fn services(&self) -> &[ServiceSpec] {
        &self.services
    }

    /// Normalized share of service `i`.
    ///
    /// # Panics
    /// Panics on an out-of-range index.
    pub fn share(&self, i: usize) -> f64 {
        self.shares[i]
    }

    /// One service by index.
    ///
    /// # Panics
    /// Panics on an out-of-range index.
    pub fn service(&self, i: usize) -> &ServiceSpec {
        &self.services[i]
    }

    /// Draws a service index from the shares using a unit sample
    /// `u ∈ [0, 1)`.
    pub fn draw(&self, u: f64) -> usize {
        debug_assert!((0.0..1.0).contains(&u));
        let mut acc = 0.0;
        for (i, &s) in self.shares.iter().enumerate() {
            acc += s;
            if u < acc {
                return i;
            }
        }
        self.services.len() - 1 // guard against rounding
    }

    /// The demand-weighted mean `Wapp` of the mix (MFlop per request).
    pub fn mean_wapp(&self) -> f64 {
        self.services
            .iter()
            .zip(&self.shares)
            .map(|(s, &f)| s.wapp.value() * f)
            .sum()
    }

    /// Number of services with a positive request share (each needs at
    /// least one server; zero-share services may be left empty).
    pub fn demanded_services(&self) -> usize {
        self.shares.iter().filter(|&&f| f > 0.0).count()
    }
}

/// A per-service demand vector for a [`ServiceMix`] deployment — the
/// multi-service counterpart of [`ClientDemand`](crate::ClientDemand).
///
/// Each entry is a target rate in completed requests per second for one
/// service of the mix; `f64::INFINITY` means "as much as possible" (the
/// mix counterpart of `ClientDemand::Unbounded`, never satisfied) and
/// `0.0` means the service demands nothing. A deployment satisfies the
/// vector when its **scheduling phase** sustains the summed rate (every
/// request crosses every agent, whatever its service) and each service's
/// server partition sustains that service's own rate.
#[derive(Debug, Clone, PartialEq)]
pub struct MixDemand {
    rates: Vec<f64>,
}

impl MixDemand {
    /// Unbounded demand for every service of an `n`-service mix: plan the
    /// highest mix throughput the platform allows.
    pub fn unbounded(services: usize) -> Self {
        assert!(services > 0, "a demand vector needs at least one service");
        Self {
            rates: vec![f64::INFINITY; services],
        }
    }

    /// Per-service target rates (req/s). Zero entries are allowed
    /// (service installed, nothing demanded) and `f64::INFINITY` means
    /// "as much as possible" for that service (see the type docs).
    ///
    /// # Panics
    /// Panics on an empty vector or negative/NaN rates — the panicking
    /// wrapper around [`try_targets`](MixDemand::try_targets) for
    /// literal, known-good vectors.
    pub fn targets(rates: Vec<f64>) -> Self {
        // audit: allow(panic, "targets() is the documented panicking
        // convenience over the typed try_targets(); callers wanting errors use
        // the typed API")
        Self::try_targets(rates).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Validating constructor: [`targets`](MixDemand::targets) returning
    /// the rejection instead of panicking, for demand vectors assembled
    /// from measurements or forecasts (a single NaN observation must
    /// surface as an error, not poison every later plan comparison).
    ///
    /// # Errors
    /// [`DemandError`] on an empty vector, NaN, or negative entries.
    pub fn try_targets(rates: Vec<f64>) -> Result<Self, DemandError> {
        if rates.is_empty() {
            return Err(DemandError::Empty);
        }
        for (index, &rate) in rates.iter().enumerate() {
            if rate.is_nan() {
                return Err(DemandError::NotANumber { index });
            }
            if rate < 0.0 {
                return Err(DemandError::Negative { index, rate });
            }
        }
        Ok(Self { rates })
    }

    /// Number of services covered.
    pub fn len(&self) -> usize {
        self.rates.len()
    }

    /// True when the vector covers no service (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.rates.is_empty()
    }

    /// Target rate of service `j`.
    ///
    /// # Panics
    /// Panics on an out-of-range index.
    pub fn rate(&self, j: usize) -> f64 {
        self.rates[j]
    }

    /// Summed rate the scheduling phase must sustain.
    pub fn total_rate(&self) -> f64 {
        self.rates.iter().sum()
    }

    /// True when any service asks for "as much as possible".
    pub fn any_unbounded(&self) -> bool {
        self.rates.iter().any(|r| r.is_infinite())
    }

    /// True when a deployment with scheduling throughput `rho_sched` and
    /// per-service service throughputs `rho_service` satisfies every
    /// entry.
    ///
    /// # Panics
    /// Panics if `rho_service` has a different length than the vector.
    pub fn satisfied_by(&self, rho_sched: f64, rho_service: &[f64]) -> bool {
        assert_eq!(
            rho_service.len(),
            self.rates.len(),
            "one throughput per demanded service"
        );
        rho_sched >= self.total_rate() && self.rates.iter().zip(rho_service).all(|(&d, &r)| r >= d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::Dgemm;

    fn mix() -> ServiceMix {
        ServiceMix::new(vec![
            (Dgemm::new(100).service(), 3.0),
            (Dgemm::new(310).service(), 1.0),
        ])
    }

    #[test]
    fn shares_normalize() {
        let m = mix();
        assert_eq!(m.len(), 2);
        assert!((m.share(0) - 0.75).abs() < 1e-12);
        assert!((m.share(1) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn draw_respects_shares() {
        let m = mix();
        assert_eq!(m.draw(0.0), 0);
        assert_eq!(m.draw(0.74), 0);
        assert_eq!(m.draw(0.76), 1);
        assert_eq!(m.draw(0.999), 1);
    }

    #[test]
    fn mean_wapp_is_weighted() {
        let m = mix();
        let expected = 0.75 * 2.0 + 0.25 * 59.582;
        assert!((m.mean_wapp() - expected).abs() < 1e-9);
    }

    #[test]
    fn single_service_mix() {
        let m = ServiceMix::single(Dgemm::new(10).service());
        assert_eq!(m.len(), 1);
        assert_eq!(m.share(0), 1.0);
        assert_eq!(m.draw(0.5), 0);
        assert!(!m.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one service")]
    fn empty_mix_rejected() {
        let _ = ServiceMix::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "non-negative and finite")]
    fn bad_weights_rejected() {
        let _ = ServiceMix::new(vec![(Dgemm::new(10).service(), -1.0)]);
    }

    #[test]
    #[should_panic(expected = "positive total")]
    fn all_zero_weights_rejected() {
        let _ = ServiceMix::new(vec![
            (Dgemm::new(10).service(), 0.0),
            (Dgemm::new(100).service(), 0.0),
        ]);
    }

    #[test]
    fn zero_weight_service_kept_with_zero_share() {
        let m = ServiceMix::new(vec![
            (Dgemm::new(10).service(), 0.0),
            (Dgemm::new(100).service(), 2.0),
        ]);
        assert_eq!(m.len(), 2);
        assert_eq!(m.share(0), 0.0);
        assert_eq!(m.share(1), 1.0);
        assert_eq!(m.demanded_services(), 1);
        assert_eq!(m.draw(0.0), 1, "zero-share service never drawn");
    }

    #[test]
    fn mix_demand_satisfaction() {
        let d = MixDemand::targets(vec![3.0, 0.0, 2.0]);
        assert_eq!(d.len(), 3);
        assert_eq!(d.total_rate(), 5.0);
        assert!(!d.any_unbounded());
        assert!(d.satisfied_by(5.0, &[3.0, 0.0, 2.0]));
        assert!(
            !d.satisfied_by(4.9, &[3.0, 0.0, 2.0]),
            "sched must carry the sum"
        );
        assert!(
            !d.satisfied_by(10.0, &[2.9, 0.0, 2.0]),
            "each service must cover its own"
        );
        assert!(d.satisfied_by(10.0, &[3.0, 0.0, 9.0]));
    }

    #[test]
    fn unbounded_mix_demand_never_satisfied() {
        let d = MixDemand::unbounded(2);
        assert!(d.any_unbounded());
        assert!(!d.satisfied_by(1e12, &[1e12, 1e12]));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_mix_demand_rejected() {
        let _ = MixDemand::targets(vec![1.0, -0.5]);
    }

    #[test]
    fn try_targets_validates_at_construction() {
        assert_eq!(MixDemand::try_targets(vec![]), Err(DemandError::Empty));
        assert_eq!(
            MixDemand::try_targets(vec![1.0, f64::NAN]),
            Err(DemandError::NotANumber { index: 1 })
        );
        assert!(matches!(
            MixDemand::try_targets(vec![-0.5]),
            Err(DemandError::Negative { index: 0, .. })
        ));
        // Infinity stays legal: the documented per-service "unbounded".
        let d = MixDemand::try_targets(vec![f64::INFINITY, 0.0]).unwrap();
        assert!(d.any_unbounded());
        assert!(DemandError::Empty
            .to_string()
            .contains("at least one service"));
        assert!(DemandError::NotANumber { index: 3 }
            .to_string()
            .contains("NaN"));
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_mix_demand_panics_in_the_literal_constructor() {
        let _ = MixDemand::targets(vec![f64::NAN]);
    }
}
