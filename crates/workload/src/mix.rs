//! Multi-service workloads — the paper's last future-work item.
//!
//! "Finally, we are interested to find a modelization to deploy several
//! middlewares and/or applications on grid." (Section 6)
//!
//! A [`ServiceMix`] is a set of services with request shares: clients
//! draw each request's service from the shares. Deployment-side, servers
//! are *partitioned* among the services (a SeD serves what it has
//! installed); the planner extension in `adept-core` chooses the
//! partition.

use crate::service::ServiceSpec;

/// A workload mixing several services with fixed request shares.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceMix {
    services: Vec<ServiceSpec>,
    /// Normalized shares, same length as `services`, summing to 1.
    shares: Vec<f64>,
}

impl ServiceMix {
    /// Builds a mix from `(service, weight)` pairs; weights are
    /// normalized to shares.
    ///
    /// # Panics
    /// Panics on an empty list or non-positive/non-finite weights.
    pub fn new(entries: Vec<(ServiceSpec, f64)>) -> Self {
        assert!(!entries.is_empty(), "a mix needs at least one service");
        let total: f64 = entries.iter().map(|(_, w)| *w).sum();
        assert!(
            entries.iter().all(|(_, w)| w.is_finite() && *w > 0.0) && total > 0.0,
            "mix weights must be positive and finite"
        );
        let (services, shares) = entries.into_iter().map(|(s, w)| (s, w / total)).unzip();
        Self { services, shares }
    }

    /// A single-service "mix" (share 1.0).
    pub fn single(service: ServiceSpec) -> Self {
        Self::new(vec![(service, 1.0)])
    }

    /// Number of services.
    pub fn len(&self) -> usize {
        self.services.len()
    }

    /// True if the mix holds exactly one service.
    pub fn is_empty(&self) -> bool {
        false // by construction a mix is never empty
    }

    /// The services, in declaration order.
    pub fn services(&self) -> &[ServiceSpec] {
        &self.services
    }

    /// Normalized share of service `i`.
    ///
    /// # Panics
    /// Panics on an out-of-range index.
    pub fn share(&self, i: usize) -> f64 {
        self.shares[i]
    }

    /// One service by index.
    ///
    /// # Panics
    /// Panics on an out-of-range index.
    pub fn service(&self, i: usize) -> &ServiceSpec {
        &self.services[i]
    }

    /// Draws a service index from the shares using a unit sample
    /// `u ∈ [0, 1)`.
    pub fn draw(&self, u: f64) -> usize {
        debug_assert!((0.0..1.0).contains(&u));
        let mut acc = 0.0;
        for (i, &s) in self.shares.iter().enumerate() {
            acc += s;
            if u < acc {
                return i;
            }
        }
        self.services.len() - 1 // guard against rounding
    }

    /// The demand-weighted mean `Wapp` of the mix (MFlop per request).
    pub fn mean_wapp(&self) -> f64 {
        self.services
            .iter()
            .zip(&self.shares)
            .map(|(s, &f)| s.wapp.value() * f)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::Dgemm;

    fn mix() -> ServiceMix {
        ServiceMix::new(vec![
            (Dgemm::new(100).service(), 3.0),
            (Dgemm::new(310).service(), 1.0),
        ])
    }

    #[test]
    fn shares_normalize() {
        let m = mix();
        assert_eq!(m.len(), 2);
        assert!((m.share(0) - 0.75).abs() < 1e-12);
        assert!((m.share(1) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn draw_respects_shares() {
        let m = mix();
        assert_eq!(m.draw(0.0), 0);
        assert_eq!(m.draw(0.74), 0);
        assert_eq!(m.draw(0.76), 1);
        assert_eq!(m.draw(0.999), 1);
    }

    #[test]
    fn mean_wapp_is_weighted() {
        let m = mix();
        let expected = 0.75 * 2.0 + 0.25 * 59.582;
        assert!((m.mean_wapp() - expected).abs() < 1e-9);
    }

    #[test]
    fn single_service_mix() {
        let m = ServiceMix::single(Dgemm::new(10).service());
        assert_eq!(m.len(), 1);
        assert_eq!(m.share(0), 1.0);
        assert_eq!(m.draw(0.5), 0);
        assert!(!m.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one service")]
    fn empty_mix_rejected() {
        let _ = ServiceMix::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn bad_weights_rejected() {
        let _ = ServiceMix::new(vec![(Dgemm::new(10).service(), -1.0)]);
    }
}
