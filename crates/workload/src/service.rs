//! Application services offered by the servers.
//!
//! The model only needs one number per service: `Wapp`, the computation (in
//! MFlop) a server spends to complete one service request (paper Section 3,
//! server computation model). Message sizes for both phases come from the
//! middleware calibration (paper Table 3); services may optionally override
//! the service-phase payloads (an extension — the paper's model folds data
//! movement into the calibrated message sizes).

use adept_platform::units::{Mbit, Mflop};
use std::fmt;

/// A service a server can execute.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceSpec {
    /// Human-readable name (used in reports and XML output).
    pub name: String,
    /// `Wapp`: computation per service request, in MFlop.
    pub wapp: Mflop,
    /// Optional override of the service-phase request payload (Mb).
    /// `None` means "use the calibrated server-tier `Sreq`", which is the
    /// paper's model.
    pub request_payload: Option<Mbit>,
    /// Optional override of the service-phase reply payload (Mb).
    pub reply_payload: Option<Mbit>,
}

impl ServiceSpec {
    /// A service with the given name and per-request computation.
    ///
    /// # Panics
    /// Panics if `wapp` is not positive and finite: the paper's Eq. 8–10
    /// divide by `Wapp`.
    pub fn new(name: impl Into<String>, wapp: Mflop) -> Self {
        assert!(
            wapp.value().is_finite() && wapp.value() > 0.0,
            "Wapp must be positive and finite, got {wapp}"
        );
        Self {
            name: name.into(),
            wapp,
            request_payload: None,
            reply_payload: None,
        }
    }

    /// Sets explicit service-phase payloads (extension over the paper's
    /// model; see module docs).
    pub fn with_payloads(mut self, request: Mbit, reply: Mbit) -> Self {
        self.request_payload = Some(request);
        self.reply_payload = Some(reply);
        self
    }
}

impl fmt::Display for ServiceSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (Wapp = {})", self.name, self.wapp)
    }
}

/// The paper's benchmark application: square matrix multiplication
/// (level-3 BLAS DGEMM).
///
/// `C ← αAB + βC` over `n×n` matrices costs `2n³` floating-point operations
/// (the `n³` multiplies and `n³` adds of the triple loop), i.e.
/// `Wapp = 2n³ / 10⁶` MFlop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Dgemm {
    /// Matrix dimension `n`.
    pub n: u32,
}

impl Dgemm {
    /// DGEMM on `n×n` matrices.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(n: u32) -> Self {
        assert!(n > 0, "matrix dimension must be positive");
        Self { n }
    }

    /// `Wapp = 2n³/10⁶` MFlop.
    pub fn wapp(self) -> Mflop {
        let n = self.n as f64;
        Mflop(2.0 * n * n * n / 1e6)
    }

    /// The corresponding [`ServiceSpec`] named `dgemm-{n}`.
    pub fn service(self) -> ServiceSpec {
        ServiceSpec::new(format!("dgemm-{}", self.n), self.wapp())
    }

    /// The four problem sizes of the paper's Table 4 (10, 100, 310, 1000).
    pub fn paper_table4_sizes() -> [Dgemm; 4] {
        [
            Dgemm::new(10),
            Dgemm::new(100),
            Dgemm::new(310),
            Dgemm::new(1000),
        ]
    }
}

impl From<Dgemm> for ServiceSpec {
    fn from(d: Dgemm) -> Self {
        d.service()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dgemm_flop_counts() {
        // 2 n^3 / 1e6 MFlop.
        assert!((Dgemm::new(10).wapp().value() - 2e-3).abs() < 1e-15);
        assert!((Dgemm::new(100).wapp().value() - 2.0).abs() < 1e-12);
        assert!((Dgemm::new(310).wapp().value() - 59.582).abs() < 1e-9);
        assert!((Dgemm::new(1000).wapp().value() - 2000.0).abs() < 1e-9);
    }

    #[test]
    fn dgemm_service_name() {
        let s = Dgemm::new(310).service();
        assert_eq!(s.name, "dgemm-310");
        assert!(s.request_payload.is_none());
    }

    #[test]
    #[should_panic(expected = "dimension must be positive")]
    fn dgemm_zero_rejected() {
        let _ = Dgemm::new(0);
    }

    #[test]
    #[should_panic(expected = "Wapp must be positive")]
    fn zero_wapp_rejected() {
        let _ = ServiceSpec::new("bad", Mflop(0.0));
    }

    #[test]
    fn payload_override() {
        let s = ServiceSpec::new("x", Mflop(1.0)).with_payloads(Mbit(2.0), Mbit(3.0));
        assert_eq!(s.request_payload, Some(Mbit(2.0)));
        assert_eq!(s.reply_payload, Some(Mbit(3.0)));
    }

    #[test]
    fn table4_sizes() {
        let sizes: Vec<u32> = Dgemm::paper_table4_sizes().iter().map(|d| d.n).collect();
        assert_eq!(sizes, vec![10, 100, 310, 1000]);
    }

    #[test]
    fn conversion_to_service_spec() {
        let s: ServiceSpec = Dgemm::new(100).into();
        assert_eq!(s.name, "dgemm-100");
    }
}
