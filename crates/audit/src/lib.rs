//! `adept-audit` — the workspace's own static-analysis pass.
//!
//! A hand-rolled lexer (no `syn`, no external parser) walks every
//! workspace member and enforces the repo's reliability contract on
//! *library* code (test modules, `tests/`, `benches/`, and `examples/`
//! are exempt):
//!
//! | rule      | forbids                                            |
//! |-----------|----------------------------------------------------|
//! | `unwrap`  | `.unwrap()` / `.expect(..)`                        |
//! | `panic`   | `panic!` / `todo!` / `unimplemented!`              |
//! | `dbg`     | `dbg!`                                             |
//! | `unsafe`  | the `unsafe` keyword outside [`UNSAFE_ALLOWLIST`]  |
//! | `relaxed` | un-annotated `Ordering::Relaxed`                   |
//!
//! Intentional escapes are annotated in source with an audit marker
//! the tool verifies and inventories:
//!
//! ```text
//! // audit: allow(unwrap, "mutex poisoning is unreachable here")
//! // audit: allow-file(unwrap, "parity suite covers every path")
//! ```
//!
//! A per-line `allow` covers the violation on its own line, or — when
//! it is a whole-line comment — the next line that contains code. An
//! `allow-file` covers the entire file for one rule. Every marker must
//! justify itself (non-empty reason) and must actually cover at least
//! one occurrence: stale markers are themselves violations, so the
//! inventory (`adept-audit allows`) never drifts from the tree.
//!
//! The lexer understands strings (incl. raw/byte strings), char
//! literals vs lifetimes, nested block comments, and line comments, so
//! `"panic!"` inside a string or a doc comment never trips a rule; it
//! tracks `#[cfg(test)]` attributes and `mod tests` blocks by brace
//! depth to exempt in-file test code.

#![forbid(unsafe_code)]
use std::fmt;
use std::path::{Path, PathBuf};

/// Files allowed to contain `unsafe` (still only with a justified
/// `audit: allow(unsafe, ..)` marker on each occurrence). Everything
/// else in the tree is `unsafe`-free by construction.
pub const UNSAFE_ALLOWLIST: &[&str] = &["vendor/interleave/src/sync.rs"];

/// Directory names whose contents are exempt from every rule.
const EXEMPT_DIRS: &[&str] = &["tests", "benches", "examples", "fixtures"];

/// The rules the auditor enforces.
#[derive(Clone, Copy, PartialEq, Eq, Debug, PartialOrd, Ord)]
pub enum Rule {
    Unwrap,
    Panic,
    Dbg,
    Unsafe,
    Relaxed,
}

impl Rule {
    pub const ALL: [Rule; 5] = [
        Rule::Unwrap,
        Rule::Panic,
        Rule::Dbg,
        Rule::Unsafe,
        Rule::Relaxed,
    ];

    pub fn name(self) -> &'static str {
        match self {
            Rule::Unwrap => "unwrap",
            Rule::Panic => "panic",
            Rule::Dbg => "dbg",
            Rule::Unsafe => "unsafe",
            Rule::Relaxed => "relaxed",
        }
    }

    pub fn from_name(name: &str) -> Option<Rule> {
        Rule::ALL.into_iter().find(|r| r.name() == name)
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One diagnostic: a rule violation, a stale marker, or a malformed
/// marker. `line`/`col` are 1-based.
#[derive(Debug, Clone)]
pub struct Violation {
    pub file: PathBuf,
    pub line: usize,
    pub col: usize,
    pub rule: &'static str,
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.col,
            self.rule,
            self.message
        )
    }
}

/// One verified `audit: allow` marker, for the inventory.
#[derive(Debug, Clone)]
pub struct Allow {
    pub file: PathBuf,
    pub line: usize,
    pub rule: Rule,
    pub why: String,
    pub file_level: bool,
    /// Occurrences this marker excused.
    pub uses: usize,
}

/// Everything the auditor found in one tree walk.
#[derive(Debug, Default)]
pub struct AuditReport {
    pub violations: Vec<Violation>,
    pub allows: Vec<Allow>,
    pub files_scanned: usize,
}

impl AuditReport {
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

// ---------------------------------------------------------------------
// Lexer: mask out non-code, collect comments.
// ---------------------------------------------------------------------

/// Source text with every string/char literal and comment replaced by
/// spaces (byte-for-byte, so columns survive), plus the comments
/// themselves keyed by the line they start on.
struct Masked {
    /// Masked code, split into lines (no terminators).
    lines: Vec<String>,
    /// `(line_idx_0based, comment_text)` for every comment.
    comments: Vec<(usize, String)>,
}

fn mask_source(src: &str) -> Masked {
    let b = src.as_bytes();
    let mut out = Vec::with_capacity(b.len());
    let mut comments = Vec::new();
    let mut line = 0usize;
    let mut i = 0usize;

    // Pushes `b[i]` masked to space (newlines kept so line structure
    // survives inside block comments and multi-line strings).
    fn push_masked(out: &mut Vec<u8>, c: u8, line: &mut usize) {
        if c == b'\n' {
            out.push(b'\n');
            *line += 1;
        } else {
            out.push(b' ');
        }
    }

    while i < b.len() {
        let c = b[i];
        // Line comment (`//`, `///`, `//!`).
        if c == b'/' && i + 1 < b.len() && b[i + 1] == b'/' {
            let start_line = line;
            let mut text = String::new();
            while i < b.len() && b[i] != b'\n' {
                text.push(b[i] as char);
                out.push(b' ');
                i += 1;
            }
            comments.push((start_line, text));
            continue;
        }
        // Block comment, nested.
        if c == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
            let start_line = line;
            let mut text = String::new();
            let mut depth = 0usize;
            while i < b.len() {
                if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                    depth += 1;
                    text.push_str("/*");
                    out.push(b' ');
                    out.push(b' ');
                    i += 2;
                } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                    depth -= 1;
                    text.push_str("*/");
                    out.push(b' ');
                    out.push(b' ');
                    i += 2;
                    if depth == 0 {
                        break;
                    }
                } else {
                    text.push(b[i] as char);
                    push_masked(&mut out, b[i], &mut line);
                    i += 1;
                }
            }
            comments.push((start_line, text));
            continue;
        }
        // Raw / byte / C strings: [b|c]? r#*" ... "#* — only when not
        // inside an identifier (`let foo_r = ..` must not misfire).
        if (c == b'r' || c == b'b' || c == b'c') && (i == 0 || !is_ident_byte(b[i - 1])) {
            let mut j = i;
            if (b[j] == b'b' || b[j] == b'c') && j + 1 < b.len() && b[j + 1] == b'r' {
                j += 1;
            }
            if b[j] == b'r' {
                let mut hashes = 0usize;
                let mut k = j + 1;
                while k < b.len() && b[k] == b'#' {
                    hashes += 1;
                    k += 1;
                }
                if k < b.len() && b[k] == b'"' {
                    // Mask prefix + opening quote.
                    out.extend(std::iter::repeat_n(b' ', k - i + 1));
                    i = k + 1;
                    // Scan to `"` followed by `hashes` hashes.
                    'raw: while i < b.len() {
                        if b[i] == b'"' {
                            let mut h = 0usize;
                            while h < hashes && i + 1 + h < b.len() && b[i + 1 + h] == b'#' {
                                h += 1;
                            }
                            if h == hashes {
                                out.extend(std::iter::repeat_n(b' ', hashes + 1));
                                i += 1 + hashes;
                                break 'raw;
                            }
                        }
                        push_masked(&mut out, b[i], &mut line);
                        i += 1;
                    }
                    continue;
                }
            }
            // `b"..."` (byte string, non-raw) falls through to the
            // plain-string arm via the quote itself.
        }
        // Plain string.
        if c == b'"' {
            out.push(b' ');
            i += 1;
            while i < b.len() {
                if b[i] == b'\\' && i + 1 < b.len() {
                    out.push(b' ');
                    push_masked(&mut out, b[i + 1], &mut line);
                    i += 2;
                    continue;
                }
                if b[i] == b'"' {
                    out.push(b' ');
                    i += 1;
                    break;
                }
                push_masked(&mut out, b[i], &mut line);
                i += 1;
            }
            continue;
        }
        // Char literal vs lifetime.
        if c == b'\'' {
            let next = b.get(i + 1).copied();
            let is_char = match next {
                Some(b'\\') => true,
                Some(n) if is_ident_byte(n) => b.get(i + 2) == Some(&b'\''),
                Some(b'\'') => false, // `''` — malformed, treat as not-a-char
                Some(_) => true,      // `'('`, `' '` etc.
                None => false,
            };
            if is_char {
                out.push(b' ');
                i += 1;
                while i < b.len() {
                    if b[i] == b'\\' && i + 1 < b.len() {
                        out.push(b' ');
                        out.push(b' ');
                        i += 2;
                        continue;
                    }
                    if b[i] == b'\'' {
                        out.push(b' ');
                        i += 1;
                        break;
                    }
                    push_masked(&mut out, b[i], &mut line);
                    i += 1;
                }
            } else {
                // Lifetime: keep the tick masked, identifier flows on.
                out.push(b' ');
                i += 1;
            }
            continue;
        }
        // Ordinary code byte.
        if c == b'\n' {
            line += 1;
        }
        out.push(c);
        i += 1;
    }

    let text = String::from_utf8_lossy(&out).into_owned();
    Masked {
        lines: text.lines().map(str::to_owned).collect(),
        comments,
    }
}

fn is_ident_byte(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

// ---------------------------------------------------------------------
// Test-region detection.
// ---------------------------------------------------------------------

/// Marks every line (0-based) inside a `#[cfg(test)]` item or a
/// `mod tests { .. }` block as exempt.
fn test_exempt_lines(masked: &[String]) -> Vec<bool> {
    let joined = masked.join("\n");
    let mut exempt = vec![false; masked.len()];
    let bytes = joined.as_bytes();

    let mut mark = |start: usize| {
        // `start` is a byte offset just past the trigger token. Walk
        // forward: the item ends at a top-level `;` (no block) or at
        // the close of its first brace block.
        let mut depth = 0usize;
        let mut saw_brace = false;
        let mut j = start;
        while j < bytes.len() {
            match bytes[j] {
                b'{' => {
                    depth += 1;
                    saw_brace = true;
                }
                b'}' => {
                    depth = depth.saturating_sub(1);
                    if saw_brace && depth == 0 {
                        break;
                    }
                }
                b';' if !saw_brace && depth == 0 => break,
                _ => {}
            }
            j += 1;
        }
        let start_line = joined[..start].matches('\n').count();
        let end_line = joined[..j.min(joined.len())].matches('\n').count();
        for e in exempt.iter_mut().take(end_line + 1).skip(start_line) {
            *e = true;
        }
    };

    for pat in ["#[cfg(test)]", "mod tests"] {
        let mut from = 0usize;
        while let Some(pos) = joined[from..].find(pat) {
            let at = from + pos;
            // `mod tests` must be a whole word (`mod tests_util` no).
            let after = at + pat.len();
            let ok = pat != "mod tests"
                || !joined
                    .as_bytes()
                    .get(after)
                    .copied()
                    .is_some_and(is_ident_byte);
            if ok {
                mark(after);
            }
            from = after;
        }
    }
    exempt
}

// ---------------------------------------------------------------------
// Rule matching on masked code.
// ---------------------------------------------------------------------

/// `(line_0based, col_0based, rule)` occurrences in masked code.
fn find_occurrences(masked: &[String]) -> Vec<(usize, usize, Rule)> {
    let mut hits = Vec::new();
    for (li, code) in masked.iter().enumerate() {
        let cb = code.as_bytes();
        let mut i = 0usize;
        while i < cb.len() {
            if !is_ident_byte(cb[i]) || (i > 0 && is_ident_byte(cb[i - 1])) {
                i += 1;
                continue;
            }
            let mut j = i;
            while j < cb.len() && is_ident_byte(cb[j]) {
                j += 1;
            }
            let word = &code[i..j];
            let rule = match word {
                "unwrap" | "expect" => (prev_nonspace(cb, i) == Some(b'.')
                    && next_nonspace(cb, j) == Some(b'('))
                .then_some(Rule::Unwrap),
                "panic" | "todo" | "unimplemented" => {
                    (next_nonspace(cb, j) == Some(b'!')).then_some(Rule::Panic)
                }
                "dbg" => (next_nonspace(cb, j) == Some(b'!')).then_some(Rule::Dbg),
                "unsafe" => Some(Rule::Unsafe),
                "Relaxed" => code[..i].ends_with("Ordering::").then_some(Rule::Relaxed),
                _ => None,
            };
            if let Some(rule) = rule {
                hits.push((li, i, rule));
            }
            i = j;
        }
    }
    hits
}

fn prev_nonspace(b: &[u8], i: usize) -> Option<u8> {
    b[..i]
        .iter()
        .rev()
        .copied()
        .find(|c| !c.is_ascii_whitespace())
}

fn next_nonspace(b: &[u8], j: usize) -> Option<u8> {
    b[j..].iter().copied().find(|c| !c.is_ascii_whitespace())
}

// ---------------------------------------------------------------------
// Marker parsing.
// ---------------------------------------------------------------------

struct RawMarker {
    line: usize, // 0-based
    rule: Rule,
    why: String,
    file_level: bool,
}

enum MarkerParse {
    Ok(RawMarker),
    Malformed { line: usize, message: String },
}

/// Extracts an `audit: allow(..)` / `audit: allow-file(..)` marker
/// from one comment. Only plain line comments whose first token is
/// `audit:` count — doc comments (`///`, `//!`) and prose that merely
/// *mentions* the syntax never parse as markers, so documentation can
/// show examples freely. A comment anchored on `audit:` that then
/// fails to parse is reported malformed rather than silently ignored.
fn parse_markers(line: usize, text: &str, out: &mut Vec<MarkerParse>) {
    // `text` carries the comment's own leading slashes.
    let Some(body) = text.strip_prefix("//") else {
        return; // block comments are not marker carriers
    };
    if body.starts_with('/') || body.starts_with('!') {
        return; // doc comment
    }
    let Some(rest) = body.trim_start().strip_prefix("audit:") else {
        return;
    };
    let rest = rest.trim_start();
    let (file_level, rest) = if let Some(r) = rest.strip_prefix("allow-file") {
        (true, r)
    } else if let Some(r) = rest.strip_prefix("allow") {
        (false, r)
    } else {
        out.push(MarkerParse::Malformed {
            line,
            message: "audit marker must be `allow(..)` or `allow-file(..)`".into(),
        });
        return;
    };
    let parsed = (|| -> Result<RawMarker, String> {
        let rest = rest
            .trim_start()
            .strip_prefix('(')
            .ok_or("expected `(` after allow")?;
        let comma = rest.find(',').ok_or("expected `,` after rule name")?;
        let rule_name = rest[..comma].trim();
        let rule =
            Rule::from_name(rule_name).ok_or_else(|| format!("unknown rule `{rule_name}`"))?;
        let rest = rest[comma + 1..].trim_start();
        let rest = rest
            .strip_prefix('"')
            .ok_or("expected a double-quoted reason")?;
        let close = rest.find('"').ok_or("unterminated reason string")?;
        let why = rest[..close].trim().to_owned();
        if why.is_empty() {
            return Err("reason must not be empty".into());
        }
        let rest = rest[close + 1..].trim_start();
        if !rest.starts_with(')') {
            return Err("expected `)` after reason".into());
        }
        Ok(RawMarker {
            line,
            rule,
            why,
            file_level,
        })
    })();
    match parsed {
        Ok(m) => out.push(MarkerParse::Ok(m)),
        Err(message) => out.push(MarkerParse::Malformed { line, message }),
    }
}

// ---------------------------------------------------------------------
// Per-file scan.
// ---------------------------------------------------------------------

/// Audits one file's source. `display_path` is used in diagnostics and
/// for the unsafe allowlist (match by `/`-normalized suffix).
pub fn scan_source(display_path: &Path, src: &str) -> (Vec<Violation>, Vec<Allow>) {
    let masked = mask_source(src);
    let exempt = test_exempt_lines(&masked.lines);
    let occurrences = find_occurrences(&masked.lines);

    // A marker may wrap across consecutive whole-line `//` comments
    // (rustfmt-friendly): join each anchor comment with its
    // continuation lines before parsing. Continuations stop at code,
    // doc comments, blank lines, or the next marker anchor.
    fn is_plain(text: &str) -> Option<&str> {
        let body = text.strip_prefix("//")?;
        (!body.starts_with('/') && !body.starts_with('!')).then_some(body)
    }
    fn is_anchor(text: &str) -> bool {
        is_plain(text).is_some_and(|b| b.trim_start().starts_with("audit:"))
    }
    let mut parses = Vec::new();
    for (ci, (line, text)) in masked.comments.iter().enumerate() {
        if !is_anchor(text) {
            continue;
        }
        let mut joined = text.clone();
        for (next_line, (l2, t2)) in (line + 1..).zip(&masked.comments[ci + 1..]) {
            if *l2 != next_line
                || masked.lines.get(*l2).is_some_and(|l| !l.trim().is_empty())
                || is_anchor(t2)
            {
                break;
            }
            let Some(body) = is_plain(t2) else { break };
            joined.push(' ');
            joined.push_str(body.trim());
        }
        parse_markers(*line, &joined, &mut parses);
    }

    let mut violations = Vec::new();
    let mut markers: Vec<RawMarker> = Vec::new();
    for p in parses {
        match p {
            MarkerParse::Ok(m) => {
                // Markers inside test-exempt regions are inert (the
                // rules don't apply there), so don't count them at all
                // — a stale one would otherwise be unfixable.
                if !exempt.get(m.line).copied().unwrap_or(false) {
                    markers.push(m);
                }
            }
            MarkerParse::Malformed { line, message } => violations.push(Violation {
                file: display_path.to_owned(),
                line: line + 1,
                col: 1,
                rule: "marker",
                message,
            }),
        }
    }

    // Which source line does each per-line marker cover? Its own line
    // if that line has code; otherwise the next line with code.
    let covered_line = |marker_line: usize| -> usize {
        if masked
            .lines
            .get(marker_line)
            .is_some_and(|l| !l.trim().is_empty())
        {
            return marker_line;
        }
        let mut l = marker_line + 1;
        while l < masked.lines.len() && masked.lines[l].trim().is_empty() {
            l += 1;
        }
        l
    };

    let mut uses = vec![0usize; markers.len()];
    let unsafe_allowed = {
        let norm = display_path.to_string_lossy().replace('\\', "/");
        UNSAFE_ALLOWLIST.iter().any(|suffix| norm.ends_with(suffix))
    };

    for (line, col, rule) in occurrences {
        if exempt.get(line).copied().unwrap_or(false) {
            continue;
        }
        if rule == Rule::Unsafe && !unsafe_allowed {
            violations.push(Violation {
                file: display_path.to_owned(),
                line: line + 1,
                col: col + 1,
                rule: rule.name(),
                message: format!(
                    "`unsafe` outside the allowlist ({}); a marker cannot excuse it",
                    UNSAFE_ALLOWLIST.join(", ")
                ),
            });
            continue;
        }
        let excused = markers
            .iter()
            .enumerate()
            .find(|(_, m)| m.rule == rule && (m.file_level || covered_line(m.line) == line));
        if let Some((mi, _)) = excused {
            uses[mi] += 1;
            continue;
        }
        let what = match rule {
            Rule::Unwrap => "`.unwrap()`/`.expect(..)` in library code",
            Rule::Panic => "`panic!`/`todo!`/`unimplemented!` in library code",
            Rule::Dbg => "`dbg!` left in library code",
            Rule::Unsafe => "un-annotated `unsafe`",
            Rule::Relaxed => "un-annotated `Ordering::Relaxed`",
        };
        violations.push(Violation {
            file: display_path.to_owned(),
            line: line + 1,
            col: col + 1,
            rule: rule.name(),
            message: format!(
                "{what}; fix it or annotate `// audit: allow({}, \"<why>\")`",
                rule.name()
            ),
        });
    }

    let mut allows = Vec::new();
    for (m, &n) in markers.iter().zip(&uses) {
        if n == 0 {
            violations.push(Violation {
                file: display_path.to_owned(),
                line: m.line + 1,
                col: 1,
                rule: "marker",
                message: format!(
                    "stale `audit: allow{}({}, ..)` marker excuses nothing — remove it",
                    if m.file_level { "-file" } else { "" },
                    m.rule.name()
                ),
            });
            continue; // a stale marker is a violation, not an allow
        }
        allows.push(Allow {
            file: display_path.to_owned(),
            line: m.line + 1,
            rule: m.rule,
            why: m.why.clone(),
            file_level: m.file_level,
            uses: n,
        });
    }
    violations.sort_by_key(|v| (v.line, v.col));

    (violations, allows)
}

// ---------------------------------------------------------------------
// Workspace walk.
// ---------------------------------------------------------------------

/// Reads the member list out of the root `Cargo.toml` (plain quoted
/// paths; the workspace does not use globs).
fn workspace_members(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let manifest = std::fs::read_to_string(root.join("Cargo.toml"))?;
    let mut members = vec![root.to_owned()]; // the root package's own src/
    let Some(start) = manifest.find("members") else {
        return Ok(members);
    };
    let Some(open) = manifest[start..].find('[') else {
        return Ok(members);
    };
    let Some(close) = manifest[start + open..].find(']') else {
        return Ok(members);
    };
    let list = &manifest[start + open + 1..start + open + close];
    for part in list.split(',') {
        let part = part.trim().trim_matches('"');
        if !part.is_empty() {
            members.push(root.join(part));
        }
    }
    Ok(members)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if entry.file_type()?.is_dir() {
            if EXEMPT_DIRS.contains(&name.as_ref()) || name == "target" {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Audits the whole workspace rooted at `root`: every member's `src/`
/// tree (plus root-level `build.rs` if any), library code only.
pub fn audit_workspace(root: &Path) -> std::io::Result<AuditReport> {
    let mut report = AuditReport::default();
    let mut files = Vec::new();
    for member in workspace_members(root)? {
        let src = member.join("src");
        if src.is_dir() {
            collect_rs_files(&src, &mut files)?;
        }
        let build = member.join("build.rs");
        if build.is_file() {
            files.push(build);
        }
    }
    files.sort();
    files.dedup();
    for file in files {
        let src = std::fs::read_to_string(&file)?;
        let display = file.strip_prefix(root).unwrap_or(&file).to_owned();
        let (violations, allows) = scan_source(&display, &src);
        report.violations.extend(violations);
        report.allows.extend(allows);
        report.files_scanned += 1;
    }
    report
        .violations
        .sort_by(|a, b| (&a.file, a.line, a.col).cmp(&(&b.file, b.line, b.col)));
    report
        .allows
        .sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(report)
}

/// Walks upward from `start` to the workspace root (the first
/// directory whose `Cargo.toml` contains `[workspace]`).
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(d.to_owned());
                }
            }
        }
        dir = d.parent();
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(src: &str) -> (Vec<Violation>, Vec<Allow>) {
        scan_source(Path::new("lib.rs"), src)
    }

    #[test]
    fn masking_hides_strings_and_comments() {
        let m = mask_source("let s = \"panic!\"; // panic!\nlet c = '\\n'; /* dbg! */");
        assert!(!m.lines[0].contains("panic"));
        assert!(!m.lines[1].contains("dbg"));
        assert_eq!(m.comments.len(), 2);
        assert!(m.comments[0].1.contains("panic!"));
    }

    #[test]
    fn raw_strings_and_lifetimes() {
        let m = mask_source("fn f<'a>(x: &'a str) { let r = r#\"unsafe \"quoted\" panic!\"#; }");
        assert!(m.lines[0].contains("fn f"));
        assert!(!m.lines[0].contains("unsafe"));
        assert!(!m.lines[0].contains("panic"));
    }

    #[test]
    fn basic_violations_found() {
        let (v, _) = scan("fn f(x: Option<u32>) -> u32 { x.unwrap() }");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "unwrap");
        assert_eq!(v[0].line, 1);
    }

    #[test]
    fn unwrap_or_does_not_match() {
        let (v, _) = scan("fn f(x: Option<u32>) -> u32 { x.unwrap_or(0) }");
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn test_regions_are_exempt() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { None::<u32>.unwrap(); }\n}\n";
        let (v, _) = scan(src);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn same_line_marker_excuses_and_is_inventoried() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() } // audit: allow(unwrap, \"caller guarantees Some\")\n";
        let (v, a) = scan(src);
        assert!(v.is_empty(), "{v:?}");
        assert_eq!(a.len(), 1);
        assert_eq!(a[0].uses, 1);
        assert!(!a[0].file_level);
    }

    #[test]
    fn whole_line_marker_covers_next_code_line() {
        let src = "// audit: allow(panic, \"invariant documented on new()\")\npanic!(\"bad\");\n";
        let (v, a) = scan(src);
        assert!(v.is_empty(), "{v:?}");
        assert_eq!(a[0].uses, 1);
    }

    #[test]
    fn wrapped_marker_joins_continuation_lines() {
        let src = "// audit: allow(panic, \"a reason long enough that it\n// wraps onto a second comment line\")\npanic!(\"bad\");\n";
        let (v, a) = scan(src);
        assert!(v.is_empty(), "{v:?}");
        assert_eq!(a.len(), 1);
        assert!(a[0].why.ends_with("second comment line"), "{:?}", a[0].why);
    }

    #[test]
    fn stale_marker_is_a_violation() {
        let (v, _) = scan("// audit: allow(unwrap, \"nothing here\")\nfn f() {}\n");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "marker");
        assert!(v[0].message.contains("stale"));
    }

    #[test]
    fn malformed_marker_is_a_violation() {
        let (v, _) = scan("// audit: allow(unwrap)\nfn f() {}\n");
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "marker");
    }

    #[test]
    fn unsafe_rejected_even_with_marker_outside_allowlist() {
        let src =
            "// audit: allow(unsafe, \"trust me\")\nunsafe { std::hint::unreachable_unchecked() }\n";
        let (v, _) = scan(src);
        assert!(v.iter().any(|v| v.rule == "unsafe"), "{v:?}");
    }

    #[test]
    fn relaxed_needs_annotation() {
        let (v, _) = scan("fn f(a: &AtomicU64) { a.load(Ordering::Relaxed); }");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "relaxed");
    }
}
