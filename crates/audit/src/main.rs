//! `adept-audit` CLI.
//!
//! ```text
//! cargo run -p adept-audit -- check [--root <dir>]
//! cargo run -p adept-audit -- allows [--root <dir>]
//! ```
//!
//! `check` exits 0 when the tree is clean and 1 with one
//! `file:line:col: [rule] message` diagnostic per violation otherwise.
//! `allows` prints the verified inventory of every `audit: allow`
//! marker (file, rule, use count, justification) and per-rule totals.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(cmd) = args.next() else {
        eprintln!("usage: adept-audit <check|allows> [--root <dir>]");
        return ExitCode::from(2);
    };
    let mut root: Option<PathBuf> = None;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => match args.next() {
                Some(r) => root = Some(PathBuf::from(r)),
                None => {
                    eprintln!("adept-audit: --root needs a value");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("adept-audit: unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }
    let root = match root {
        Some(r) => r,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(d) => d,
                Err(e) => {
                    eprintln!("adept-audit: cannot read cwd: {e}");
                    return ExitCode::from(2);
                }
            };
            match adept_audit::find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!("adept-audit: no workspace root above {}", cwd.display());
                    return ExitCode::from(2);
                }
            }
        }
    };

    let report = match adept_audit::audit_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("adept-audit: walking {} failed: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    match cmd.as_str() {
        "check" => {
            for v in &report.violations {
                println!("{v}");
            }
            if report.is_clean() {
                println!(
                    "audit: clean — {} files, {} allow markers",
                    report.files_scanned,
                    report.allows.len()
                );
                ExitCode::SUCCESS
            } else {
                println!(
                    "audit: {} violation(s) in {} files scanned",
                    report.violations.len(),
                    report.files_scanned
                );
                ExitCode::FAILURE
            }
        }
        "allows" => {
            let mut by_rule = std::collections::BTreeMap::new();
            for a in &report.allows {
                *by_rule.entry(a.rule.name()).or_insert(0usize) += 1;
                println!(
                    "{}:{}: allow{}({}) uses={} — {}",
                    a.file.display(),
                    a.line,
                    if a.file_level { "-file" } else { "" },
                    a.rule,
                    a.uses,
                    a.why
                );
            }
            println!("---");
            for (rule, n) in by_rule {
                println!("{rule}: {n} marker(s)");
            }
            println!("total: {} marker(s)", report.allows.len());
            ExitCode::SUCCESS
        }
        other => {
            eprintln!("adept-audit: unknown command `{other}` (use check|allows)");
            ExitCode::from(2)
        }
    }
}
