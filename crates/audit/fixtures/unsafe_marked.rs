//! Fixture: `unsafe` outside [`UNSAFE_ALLOWLIST`] stays a violation
//! even with a marker — the allowlist is the only escape hatch.

// audit: allow(unsafe, "a marker must NOT be able to excuse this")
pub fn marked_unsafe(p: *const u32) -> u32 {
    unsafe { *p }
}
