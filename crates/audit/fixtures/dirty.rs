//! Fixture: one naked occurrence of every audited construct. Each
//! violation sits at a line the integration test pins exactly.
//! (This directory is exempt from the workspace walk; the test feeds
//! the file to `scan_source` under a non-exempt display path.)

use std::sync::atomic::{AtomicUsize, Ordering};

pub fn unwrap_site(v: Option<u32>) -> u32 {
    v.unwrap() // line 9: unwrap
}

pub fn expect_site(v: Option<u32>) -> u32 {
    v.expect("fixture") // line 13: unwrap (expect form)
}

pub fn panic_site() {
    panic!("fixture"); // line 17: panic
}

pub fn todo_site() {
    todo!() // line 21: panic (todo form)
}

pub fn unimplemented_site() {
    unimplemented!() // line 25: panic (unimplemented form)
}

pub fn dbg_site(x: u32) -> u32 {
    dbg!(x) // line 29: dbg
}

pub fn unsafe_site(p: *const u32) -> u32 {
    unsafe { *p } // line 33: unsafe
}

pub fn relaxed_site(c: &AtomicUsize) -> usize {
    c.load(Ordering::Relaxed) // line 37: relaxed
}
