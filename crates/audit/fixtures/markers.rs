//! Fixture: correctly annotated escapes. Every violation below carries
//! a verified marker, so the scan is clean and the allow inventory has
//! exactly four entries (three per-line, one file-level).

// audit: allow-file(relaxed, "fixture: counters carry no cross-thread
// data, RMW atomicity is enough")

use std::sync::atomic::{AtomicUsize, Ordering};

pub fn counted(c: &AtomicUsize) -> usize {
    c.fetch_add(1, Ordering::Relaxed)
}

pub fn also_counted(c: &AtomicUsize) -> usize {
    c.load(Ordering::Relaxed)
}

pub fn same_line(v: Option<u32>) -> u32 {
    v.unwrap() // audit: allow(unwrap, "fixture: caller checked is_some")
}

pub fn whole_line_marker(v: Option<u32>) -> u32 {
    // audit: allow(unwrap, "fixture: marker on its own line covers the
    // next code line, and wraps across continuation comments")
    v.expect("covered by the marker above")
}

pub fn annotated_panic(ok: bool) {
    if !ok {
        // audit: allow(panic, "fixture: contract violation is unrecoverable")
        panic!("fixture contract violated")
    }
}
