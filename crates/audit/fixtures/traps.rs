//! Fixture: every audited token appears here only inside strings,
//! comments, doc text, or as a lifetime — the scan must report zero
//! violations. Each arm targets one lexer hazard.

// .unwrap() and panic! in a line comment must not fire.
/* block comment: .expect("x") dbg!(y) unsafe { } /* nested:
Ordering::Relaxed */ still inside */

/// Doc text mentioning `.unwrap()`, `panic!`, and `unsafe` blocks.
pub fn strings() -> Vec<String> {
    vec![
        "call .unwrap() here".to_string(),
        "then panic!(\"nope\") with an escaped quote".to_string(),
        r#"raw string: dbg!(x) and "quoted" unsafe"#.to_string(),
        r##"more hashes: .expect("deep") todo!()"##.to_string(),
        String::from_utf8_lossy(b"byte string: unimplemented!()").into_owned(),
    ]
}

/// A lifetime is not a char literal: masking `'a` as a string would
/// swallow the rest of the file and hide the marker grammar.
pub fn lifetimes<'a>(s: &'a str) -> &'a str {
    let _delim: char = '"';
    let _escaped: char = '\'';
    s
}

/// `Relaxed` without the `Ordering::` path prefix is someone else's
/// identifier, not an atomics ordering.
pub struct Relaxed;
pub fn not_an_ordering() -> Relaxed {
    Relaxed
}

/// An identifier ending in `r` followed by a string is not a raw
/// string (`let for_r = ...` must not misfire the raw-string arm).
pub fn ident_r_then_string() -> &'static str {
    let var_r = "not raw: .unwrap()";
    var_r
}
