//! Fixture: every way a marker itself can be wrong. Each one is a
//! `[marker]` violation at a line the integration test pins.

pub fn clean_code(v: Option<u32>) -> Option<u32> {
    v
}

// audit: allow(unwrap, "stale: nothing on the next code line") line 8
pub fn stale_marker(v: Option<u32>) -> Option<u32> {
    v
}

// audit: allow(made-up-rule, "no such rule") line 13
pub fn unknown_rule() {}

// audit: allow(panic, "") line 16: empty reason
pub fn empty_reason() {}

// audit: allow(unwrap "missing comma") line 19
pub fn malformed_syntax() {}

// audit: deny(unwrap, "unknown directive") line 22
pub fn unknown_directive() {}
