//! Fixture: violations that sit only inside in-file test code, which
//! the scan exempts by `#[cfg(test)]` attribute / `mod tests` brace
//! tracking. Must scan clean.

pub fn library_code(v: Option<u32>) -> Option<u32> {
    v
}

#[cfg(test)]
mod tests {
    use super::library_code;

    #[test]
    fn exercised_with_unwraps() {
        assert_eq!(library_code(Some(3)).unwrap(), 3);
        let _ = library_code(None).is_none() || panic!("fixture");
    }
}

#[cfg(test)]
fn test_helper(v: Option<u32>) -> u32 {
    v.expect("helpers under cfg(test) are exempt too")
}
