//! Fixture-driven acceptance tests for the audit rules, plus the
//! self-check that the committed tree itself is audit-clean.
//!
//! The fixture files live in `crates/audit/fixtures/` (a directory the
//! workspace walk exempts, so committed fixtures can be deliberately
//! dirty); each test feeds one to [`scan_source`] under a non-exempt
//! display path and pins the exact diagnostics.

use adept_audit::{audit_workspace, find_workspace_root, scan_source, Rule, Violation};
use std::path::Path;

fn scan(fixture_src: &str) -> (Vec<Violation>, Vec<adept_audit::Allow>) {
    // A display path that is neither test-exempt nor unsafe-allowlisted.
    scan_source(Path::new("crates/fixture/src/lib.rs"), fixture_src)
}

fn lines_for(violations: &[Violation], rule: &str) -> Vec<usize> {
    violations
        .iter()
        .filter(|v| v.rule == rule)
        .map(|v| v.line)
        .collect()
}

#[test]
fn dirty_fixture_flags_every_rule_with_file_line() {
    let (violations, allows) = scan(include_str!("../fixtures/dirty.rs"));
    assert!(allows.is_empty());
    assert_eq!(lines_for(&violations, "unwrap"), vec![9, 13]);
    assert_eq!(lines_for(&violations, "panic"), vec![17, 21, 25]);
    assert_eq!(lines_for(&violations, "dbg"), vec![29]);
    assert_eq!(lines_for(&violations, "unsafe"), vec![33]);
    assert_eq!(lines_for(&violations, "relaxed"), vec![37]);
    assert_eq!(violations.len(), 8);
    // Diagnostics render as clickable `file:line:col: [rule] ..`.
    let first = violations
        .iter()
        .find(|v| v.rule == "unwrap")
        .expect("unwrap violation")
        .to_string();
    assert!(
        first.starts_with("crates/fixture/src/lib.rs:9:"),
        "diagnostic should lead with file:line, got {first:?}"
    );
    assert!(first.contains("[unwrap]"), "got {first:?}");
}

#[test]
fn string_comment_and_lifetime_traps_do_not_fire() {
    let (violations, allows) = scan(include_str!("../fixtures/traps.rs"));
    assert!(
        violations.is_empty(),
        "trap fixture must scan clean, got: {violations:?}"
    );
    assert!(allows.is_empty());
}

#[test]
fn in_file_test_code_is_exempt() {
    let (violations, _) = scan(include_str!("../fixtures/test_exempt.rs"));
    assert!(
        violations.is_empty(),
        "cfg(test) fixture must scan clean, got: {violations:?}"
    );
}

#[test]
fn verified_markers_excuse_and_are_inventoried() {
    let (violations, allows) = scan(include_str!("../fixtures/markers.rs"));
    assert!(
        violations.is_empty(),
        "annotated fixture must scan clean, got: {violations:?}"
    );
    assert_eq!(allows.len(), 4);
    let file_level: Vec<_> = allows.iter().filter(|a| a.file_level).collect();
    assert_eq!(file_level.len(), 1);
    assert_eq!(file_level[0].rule, Rule::Relaxed);
    // The file-level marker excused both Relaxed sites.
    assert_eq!(file_level[0].uses, 2);
    // Every marker is used and carries a reason.
    assert!(allows.iter().all(|a| a.uses >= 1 && !a.why.is_empty()));
    assert_eq!(
        allows.iter().filter(|a| a.rule == Rule::Unwrap).count(),
        2,
        "same-line and whole-line unwrap markers both inventoried"
    );
}

#[test]
fn stale_and_malformed_markers_are_violations() {
    let (violations, allows) = scan(include_str!("../fixtures/bad_markers.rs"));
    assert!(allows.is_empty(), "no bad marker may reach the inventory");
    let marker_lines = lines_for(&violations, "marker");
    assert_eq!(
        marker_lines,
        vec![8, 13, 16, 19, 22],
        "each bad marker is flagged at its own line, got: {violations:?}"
    );
    assert_eq!(violations.len(), 5);
    let stale = &violations[0];
    assert!(
        stale.message.contains("stale") || stale.message.contains("covers no"),
        "line 8 is the stale marker, got {:?}",
        stale.message
    );
}

#[test]
fn markers_cannot_excuse_unsafe_outside_the_allowlist() {
    let (violations, allows) = scan(include_str!("../fixtures/unsafe_marked.rs"));
    assert!(allows.is_empty());
    assert_eq!(
        lines_for(&violations, "unsafe"),
        vec![6],
        "the marked unsafe block stays a violation: {violations:?}"
    );
    // ... and the impotent marker is therefore stale: a second finding.
    assert_eq!(lines_for(&violations, "marker"), vec![4]);
}

#[test]
fn unsafe_allowlisted_file_still_needs_markers() {
    let src = "pub fn f(p: *const u32) -> u32 {\n    unsafe { *p }\n}\n";
    // Allowlisted path, no marker: the unsafe needs an annotation.
    let (violations, _) = scan_source(Path::new("vendor/interleave/src/sync.rs"), src);
    assert_eq!(lines_for(&violations, "unsafe"), vec![2]);

    let marked = "pub fn f(p: *const u32) -> u32 {\n    \
        // audit: allow(unsafe, \"fixture: p is checked by the caller\")\n    \
        unsafe { *p }\n}\n";
    let (violations, allows) = scan_source(Path::new("vendor/interleave/src/sync.rs"), marked);
    assert!(violations.is_empty(), "got: {violations:?}");
    assert_eq!(allows.len(), 1);
    assert_eq!(allows[0].rule, Rule::Unsafe);
}

/// The acceptance gate from the issue: the committed tree is
/// audit-clean. Any un-annotated unwrap/panic/unsafe/Relaxed added
/// anywhere in the workspace turns this test red.
#[test]
fn committed_tree_is_audit_clean() {
    let manifest_dir = Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = find_workspace_root(manifest_dir).expect("workspace root above crates/audit");
    let report = audit_workspace(&root).expect("workspace scan");
    assert!(
        report.is_clean(),
        "the tree must stay audit-clean; run `cargo run -p adept-audit -- check`:\n{}",
        report
            .violations
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(
        report.files_scanned > 50,
        "workspace walk looks truncated: only {} files",
        report.files_scanned
    );
    assert!(
        report.allows.iter().all(|a| a.uses >= 1),
        "every allow marker in the tree must excuse at least one site"
    );
}
