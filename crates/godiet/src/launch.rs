//! Launch ordering.
//!
//! A child element can only register with its parent once the parent is
//! running, so the launch order is a topological order of the tree. Like
//! GoDIET, we launch in **breadth-first stages**: stage 0 is the root
//! agent, stage `k` holds every element at depth `k`; elements within a
//! stage start concurrently.

use adept_hierarchy::{DeploymentPlan, Slot};

/// Launch stages: `stages[k]` holds the slots at depth `k`, in slot order.
pub fn launch_stages(plan: &DeploymentPlan) -> Vec<Vec<Slot>> {
    let mut stages: Vec<Vec<Slot>> = Vec::new();
    for slot in plan.bfs_order() {
        let level = plan.level(slot);
        if level >= stages.len() {
            stages.resize(level + 1, Vec::new());
        }
        stages[level].push(slot);
    }
    stages
}

/// The stage (depth) a slot launches in.
pub fn stage_of(plan: &DeploymentPlan, slot: Slot) -> usize {
    plan.level(slot)
}

#[cfg(test)]
mod tests {
    use super::*;
    use adept_hierarchy::builder::{balanced_two_level, csd_tree, star};
    use adept_platform::NodeId;

    fn ids(n: u32) -> Vec<NodeId> {
        (0..n).map(NodeId).collect()
    }

    #[test]
    fn star_has_two_stages() {
        let stages = launch_stages(&star(&ids(6)));
        assert_eq!(stages.len(), 2);
        assert_eq!(stages[0].len(), 1);
        assert_eq!(stages[1].len(), 5);
    }

    #[test]
    fn balanced_has_three_stages() {
        let stages = launch_stages(&balanced_two_level(&ids(20), 4));
        assert_eq!(stages.len(), 3);
        assert_eq!(stages[1].len(), 4);
        assert_eq!(stages[2].len(), 15);
    }

    #[test]
    fn parents_always_precede_children() {
        let plan = csd_tree(&ids(30), 3);
        for slot in plan.slots() {
            if let Some(parent) = plan.parent(slot) {
                assert!(
                    stage_of(&plan, parent) < stage_of(&plan, slot),
                    "parent of {slot} must launch first"
                );
            }
        }
    }

    #[test]
    fn stages_cover_every_slot_once() {
        let plan = csd_tree(&ids(25), 2);
        let stages = launch_stages(&plan);
        let total: usize = stages.iter().map(Vec::len).sum();
        assert_eq!(total, plan.len());
    }
}
