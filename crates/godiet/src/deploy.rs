//! Staged deployment with failure injection and spare substitution.

use crate::launch::launch_stages;
use adept_hierarchy::xml::{parse_xml, XmlError};
use adept_hierarchy::{validate::validate_on, DeploymentPlan, Slot};
use adept_platform::{NodeId, Platform, Seconds};
use std::collections::HashSet;
use std::fmt;

/// Errors raised by [`GoDiet::deploy`].
#[derive(Debug, Clone, PartialEq)]
pub enum DeployError {
    /// The descriptor failed to parse.
    Xml(XmlError),
    /// The plan failed validation against the platform.
    InvalidPlan(String),
    /// An element could not be started and no spare node was available.
    LaunchFailed {
        /// The plan slot that could not be brought up.
        slot: Slot,
        /// The node whose launches kept failing.
        node: NodeId,
        /// Attempts made (initial + retries).
        attempts: u32,
    },
    /// A migration script's preconditions do not hold against the
    /// running deployment it is being executed on.
    ScriptMismatch(String),
    /// The requested transition cannot be expressed as a live migration
    /// (e.g. it replaces the root agent).
    ScriptUncompilable(String),
}

impl fmt::Display for DeployError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeployError::Xml(e) => write!(f, "descriptor error: {e}"),
            DeployError::InvalidPlan(msg) => write!(f, "invalid plan: {msg}"),
            DeployError::LaunchFailed {
                slot,
                node,
                attempts,
            } => write!(
                f,
                "element {slot} on {node} failed to start after {attempts} attempts and no spare node remains"
            ),
            DeployError::ScriptMismatch(msg) => {
                write!(f, "migration script does not match the running deployment: {msg}")
            }
            DeployError::ScriptUncompilable(msg) => {
                write!(f, "transition is not migratable: {msg}")
            }
        }
    }
}

impl std::error::Error for DeployError {}

impl From<XmlError> for DeployError {
    fn from(e: XmlError) -> Self {
        DeployError::Xml(e)
    }
}

/// Outcome of a deployment run.
#[derive(Debug, Clone, PartialEq)]
pub struct DeploymentReport {
    /// The plan actually running (may differ from the input by spare
    /// substitutions).
    pub plan: DeploymentPlan,
    /// Number of launch stages (tree depth).
    pub stages: usize,
    /// Launch attempts performed (including failures).
    pub launches: u32,
    /// Failed launch attempts.
    pub failures: u32,
    /// `(failed_node, spare_node)` substitutions performed.
    pub substitutions: Vec<(NodeId, NodeId)>,
    /// Wall-clock launch makespan: stages run sequentially, elements
    /// within a stage concurrently, each attempt costing the launch
    /// latency.
    pub makespan: Seconds,
}

/// The deployment tool.
#[derive(Debug, Clone, Copy)]
pub struct GoDiet {
    /// Time to start one element (fork + ssh + registration).
    pub launch_latency: Seconds,
    /// Probability that a single launch attempt fails.
    pub failure_probability: f64,
    /// Retries on the same node before substituting a spare.
    pub max_retries: u32,
    /// Seed for deterministic failure injection.
    pub seed: u64,
}

impl Default for GoDiet {
    fn default() -> Self {
        Self {
            launch_latency: Seconds(0.5),
            failure_probability: 0.0,
            max_retries: 2,
            seed: 0,
        }
    }
}

impl GoDiet {
    /// A tool with failure injection enabled.
    pub fn with_failures(probability: f64, seed: u64) -> Self {
        assert!(
            (0.0..1.0).contains(&probability),
            "failure probability must be in [0,1), got {probability}"
        );
        Self {
            failure_probability: probability,
            seed,
            ..Self::default()
        }
    }

    /// Deterministic per-attempt failure decision (SplitMix64 over
    /// seed/node/attempt).
    fn attempt_fails(&self, node: NodeId, attempt: u32) -> bool {
        if self.failure_probability == 0.0 {
            return false;
        }
        let mut z = self
            .seed
            .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(u64::from(node.0) + 1))
            .wrapping_add(0xD1B5_4A32_D192_ED03u64.wrapping_mul(u64::from(attempt) + 1));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        let unit = (z >> 11) as f64 / (1u64 << 53) as f64;
        unit < self.failure_probability
    }

    /// Brings one element up: attempts on `node` with bounded retries,
    /// substituting spares (recorded in `substitutions`) when a node
    /// keeps failing. This is the per-element engine shared by the
    /// full-tree [`deploy`](GoDiet::deploy) and the incremental
    /// [`migrate`](GoDiet::migrate) paths.
    ///
    /// Returns the node the element finally started on and the attempt
    /// streak on that node (the element's contribution to its stage's
    /// makespan).
    pub(crate) fn start_element(
        &self,
        slot: Slot,
        mut node: NodeId,
        spares: &mut Vec<NodeId>,
        launches: &mut u32,
        failures: &mut u32,
        substitutions: &mut Vec<(NodeId, NodeId)>,
    ) -> Result<StartedElement, DeployError> {
        let mut attempts = 0u32;
        loop {
            attempts += 1;
            *launches += 1;
            if !self.attempt_fails(node, attempts) {
                return Ok(StartedElement { node, attempts });
            }
            *failures += 1;
            if attempts > self.max_retries {
                // Substitute a spare and start over on it.
                match spares.pop() {
                    Some(spare) => {
                        substitutions.push((node, spare));
                        node = spare;
                        attempts = 0;
                    }
                    None => {
                        return Err(DeployError::LaunchFailed {
                            slot,
                            node,
                            attempts,
                        });
                    }
                }
            }
        }
    }

    /// Deploys a plan on a platform: validates, computes launch stages,
    /// starts every element (with failure injection), substitutes spares
    /// for nodes that keep failing, and reports the running deployment.
    ///
    /// # Errors
    /// [`DeployError::InvalidPlan`] if the plan does not validate against
    /// the platform (relaxed arity rules are accepted; unknown nodes are
    /// not); [`DeployError::LaunchFailed`] when an element exhausts its
    /// retries and no spare node remains.
    pub fn deploy(
        &self,
        platform: &Platform,
        plan: &DeploymentPlan,
    ) -> Result<DeploymentReport, DeployError> {
        // Membership errors are fatal; arity warnings are GoDIET's
        // problem only insofar as elements would fail to register — the
        // simulator accepts relaxed plans, so accept them here too.
        let fatal: Vec<String> = validate_on(plan, platform)
            .into_iter()
            .filter(|e| {
                matches!(
                    e,
                    adept_hierarchy::ValidationError::NodeNotOnPlatform(_)
                        | adept_hierarchy::ValidationError::RootHasNoChildren
                )
            })
            .map(|e| e.to_string())
            .collect();
        if !fatal.is_empty() {
            return Err(DeployError::InvalidPlan(fatal.join("; ")));
        }

        let used: HashSet<NodeId> = plan.slots().map(|s| plan.node(s)).collect();
        let mut spares = spare_nodes(platform, |id| used.contains(&id));

        let mut running = plan.clone();
        let mut launches = 0u32;
        let mut failures = 0u32;
        let mut substitutions = Vec::new();
        let mut makespan = 0.0f64;

        let stages = launch_stages(plan);
        for stage in &stages {
            // Elements in a stage launch concurrently; the stage takes as
            // long as its slowest element (attempts are sequential per
            // element).
            let mut stage_attempts_max = 0u32;
            for &slot in stage {
                let node = running.node(slot);
                let started = self.start_element(
                    slot,
                    node,
                    &mut spares,
                    &mut launches,
                    &mut failures,
                    &mut substitutions,
                )?;
                if started.node != node {
                    running = substitute(&running, slot, started.node);
                }
                stage_attempts_max = stage_attempts_max.max(started.attempts);
            }
            makespan += self.launch_latency.value() * f64::from(stage_attempts_max.max(1));
        }

        Ok(DeploymentReport {
            plan: running,
            stages: stages.len(),
            launches,
            failures,
            substitutions,
            makespan: Seconds(makespan),
        })
    }

    /// Parses a GoDIET-style XML descriptor and deploys it.
    ///
    /// # Errors
    /// XML errors plus everything [`GoDiet::deploy`] can raise.
    pub fn deploy_xml(
        &self,
        platform: &Platform,
        descriptor: &str,
    ) -> Result<DeploymentReport, DeployError> {
        let plan = parse_xml(descriptor)?;
        self.deploy(platform, &plan)
    }
}

/// A successfully started element.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct StartedElement {
    /// The node it came up on (a spare when the planned node failed).
    pub node: NodeId,
    /// Attempt streak on that node (its stage-makespan contribution).
    pub attempts: u32,
}

/// Spare pool: platform nodes for which `used` is false, ordered so
/// `pop()` takes the most powerful first.
pub(crate) fn spare_nodes(platform: &Platform, used: impl Fn(NodeId) -> bool) -> Vec<NodeId> {
    let mut spares: Vec<NodeId> = platform
        .ids_by_power_desc()
        .into_iter()
        .filter(|&id| !used(id))
        .collect();
    spares.reverse();
    spares
}

/// Returns a copy of `plan` with the platform node of `slot` replaced by
/// `spare`, preserving the tree shape.
pub(crate) fn substitute(plan: &DeploymentPlan, slot: Slot, spare: NodeId) -> DeploymentPlan {
    let mut rebuilt = DeploymentPlan::with_root(if slot == plan.root() {
        spare
    } else {
        plan.node(plan.root())
    });
    // Rebuild in BFS order, mapping old slots to new ones.
    let order = plan.bfs_order();
    let mut map = std::collections::HashMap::new();
    map.insert(plan.root(), rebuilt.root());
    for &s in order.iter().skip(1) {
        // audit: allow(unwrap, "rebuild maps preserve node-id uniqueness; the
        // diff tests pin this")
        let parent_new = map[&plan.parent(s).expect("non-root has a parent")];
        let node = if s == slot { spare } else { plan.node(s) };
        let new_slot = match plan.role(s) {
            adept_hierarchy::Role::Agent => rebuilt
                .add_agent(parent_new, node)
                // audit: allow(unwrap, "rebuild maps preserve node-id
                // uniqueness; the diff tests pin this")
                .expect("rebuild preserves uniqueness"),
            adept_hierarchy::Role::Server => rebuilt
                .add_server(parent_new, node)
                // audit: allow(unwrap, "rebuild maps preserve node-id
                // uniqueness; the diff tests pin this")
                .expect("rebuild preserves uniqueness"),
        };
        map.insert(s, new_slot);
    }
    rebuilt
}

#[cfg(test)]
mod tests {
    use super::*;
    use adept_hierarchy::builder::{balanced_two_level, star};
    use adept_hierarchy::xml::write_xml;
    use adept_platform::generator::lyon_cluster;

    fn ids(n: u32) -> Vec<NodeId> {
        (0..n).map(NodeId).collect()
    }

    #[test]
    fn failure_free_deploy_keeps_plan() {
        let platform = lyon_cluster(10);
        let plan = star(&ids(6));
        let report = GoDiet::default().deploy(&platform, &plan).unwrap();
        assert!(report.plan.structurally_eq(&plan));
        assert_eq!(report.stages, 2);
        assert_eq!(report.launches, 6);
        assert_eq!(report.failures, 0);
        assert!(report.substitutions.is_empty());
        // Two stages, one attempt each, 0.5 s latency.
        assert!((report.makespan.value() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn xml_pipeline_deploys() {
        let platform = lyon_cluster(8);
        let plan = balanced_two_level(&ids(8), 2);
        let xml = write_xml(&plan, Some(&platform));
        let report = GoDiet::default().deploy_xml(&platform, &xml).unwrap();
        assert!(report.plan.structurally_eq(&plan));
        assert_eq!(report.stages, 3);
    }

    #[test]
    fn bad_xml_is_reported() {
        let platform = lyon_cluster(4);
        let err = GoDiet::default()
            .deploy_xml(&platform, "<deployment>")
            .unwrap_err();
        assert!(matches!(err, DeployError::Xml(_)));
    }

    #[test]
    fn plan_outside_platform_rejected() {
        let platform = lyon_cluster(3);
        let plan = star(&ids(6));
        let err = GoDiet::default().deploy(&platform, &plan).unwrap_err();
        assert!(matches!(err, DeployError::InvalidPlan(_)));
    }

    #[test]
    fn failures_trigger_retries_and_substitutions() {
        let platform = lyon_cluster(30);
        let plan = star(&ids(10)); // 20 spare nodes
        let tool = GoDiet::with_failures(0.4, 7);
        let report = tool.deploy(&platform, &plan).unwrap();
        assert!(report.failures > 0, "with p=0.4 some launches must fail");
        assert_eq!(report.plan.len(), plan.len(), "shape preserved");
        // Substituted nodes must come from outside the original plan.
        for &(failed, spare) in &report.substitutions {
            assert!(plan.uses_node(failed));
            assert!(!plan.uses_node(spare));
        }
        // And the running plan must still be deployable on the platform.
        assert!(validate_on(&report.plan, &platform)
            .iter()
            .all(|e| !matches!(e, adept_hierarchy::ValidationError::NodeNotOnPlatform(_))));
    }

    #[test]
    fn no_spares_means_launch_failed() {
        let platform = lyon_cluster(4);
        let plan = star(&ids(4)); // no spares at all
                                  // High failure probability: some element will exhaust retries.
        let tool = GoDiet::with_failures(0.95, 3);
        let err = tool.deploy(&platform, &plan).unwrap_err();
        assert!(matches!(err, DeployError::LaunchFailed { .. }));
    }

    #[test]
    fn failure_injection_is_deterministic() {
        let platform = lyon_cluster(20);
        let plan = star(&ids(10));
        let tool = GoDiet::with_failures(0.3, 99);
        let a = tool.deploy(&platform, &plan).unwrap();
        let b = tool.deploy(&platform, &plan).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn substitute_preserves_shape() {
        let plan = balanced_two_level(&ids(10), 3);
        let replaced = substitute(&plan, Slot(1), NodeId(42));
        assert_eq!(replaced.len(), plan.len());
        assert_eq!(replaced.agent_count(), plan.agent_count());
        assert!(replaced.uses_node(NodeId(42)));
        assert!(!replaced.uses_node(plan.node(Slot(1))));
    }

    #[test]
    fn substitute_root_works() {
        let plan = star(&ids(4));
        let replaced = substitute(&plan, Slot(0), NodeId(9));
        assert_eq!(replaced.node(replaced.root()), NodeId(9));
        assert_eq!(replaced.server_count(), 3);
    }

    #[test]
    #[should_panic(expected = "failure probability must be in")]
    fn bad_probability_rejected() {
        let _ = GoDiet::with_failures(1.5, 0);
    }
}
