//! # adept-godiet
//!
//! A deployment-tool substrate modelled on **GoDIET** \[5\], the launcher
//! the paper used on Grid'5000 ("GoDIET version 2.0.0 is used to perform
//! the actual software deployment", Section 5.1).
//!
//! GoDIET consumes the XML descriptor produced by the planner
//! (`write_xml`, paper Table 1), computes a launch order in which parents
//! come up before their children (agents must be registered before a
//! child can attach), starts every element, and reports the resulting
//! running platform.
//!
//! This crate reproduces that pipeline against the simulator instead of
//! `ssh`:
//!
//! * [`launch`] — breadth-first launch stages (parents strictly before
//!   children), stage makespan accounting;
//! * [`deploy`] — staged launch with per-element latency, deterministic
//!   failure injection, bounded retries, and spare-node substitution
//!   (re-planning a failed element onto an unused node of the platform);
//! * [`deploy::GoDiet::deploy_xml`] — the full XML → running-deployment
//!   path;
//! * [`migrate`] — incremental migration of a *running* deployment: a
//!   [`PlanDiff`](adept_hierarchy::PlanDiff) compiled into an ordered
//!   [`MigrationScript`] (parents launch before children, children stop
//!   before parents, demotions last) and executed stage by stage with
//!   the same failure injection and spare substitution as a full
//!   launch. This is what an autonomic replanning loop hands to the
//!   deployment tool instead of a fresh tree.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod deploy;
pub mod launch;
pub mod migrate;

pub use deploy::{DeployError, DeploymentReport, GoDiet};
pub use launch::{launch_stages, stage_of};
pub use migrate::{MigrationAction, MigrationReport, MigrationScript};
