//! Incremental migration of a *running* deployment.
//!
//! Full redeployment kills every element and relaunches the tree; a
//! replanning round that adds two servers must not pay that. This module
//! compiles the structural difference between the running plan and a
//! revised plan into an ordered [`MigrationScript`] — the first-class
//! migration artifact — which [`GoDiet`] then executes
//! stage by stage against the running deployment, with the same failure
//! injection and spare-node substitution as a full launch.
//!
//! Ordering rules (verified by [`MigrationScript::verify`]):
//!
//! 1. **Build-up phase** — launches of new elements, promote-restarts
//!    (server → agent) and re-attachments, staged by depth in the *new*
//!    plan: a parent is always running in its new role before a child
//!    registers with it (the launch-stage rule of
//!    [`launch_stages`](crate::launch::launch_stages), applied to the
//!    changed subset).
//! 2. **Tear-down phase** — stops of leaving elements, deepest first
//!    (children before parents), after every surviving child has been
//!    re-attached elsewhere.
//! 3. **Demotion phase** — restarts of agents returning to server duty,
//!    last, deepest (old-plan) first: an agent can only step down once
//!    all of its former children are gone, and a chain of nested
//!    demoting agents unwinds child-before-parent.

// audit: allow-file(unwrap, "the migration verifier checks every action against the
// target plan before apply; each expect documents a verified invariant")
use crate::deploy::{DeployError, GoDiet};
use adept_hierarchy::{DeploymentPlan, NodeChange, PlanDiff, Role, Slot};
use adept_platform::{NodeId, Platform, Seconds};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt;

/// One step of a migration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MigrationAction {
    /// Start a new element on `node`, registering with `parent`.
    Launch {
        /// Platform node joining the deployment.
        node: NodeId,
        /// Role it comes up in.
        role: Role,
        /// Parent node it registers with.
        parent: NodeId,
    },
    /// Stop the element on `node`; the machine leaves the deployment.
    Stop {
        /// Node leaving.
        node: NodeId,
        /// Role it had.
        role: Role,
    },
    /// Stop and relaunch the element on `node` in a new role (a rerole
    /// is a reinstall: a SeD cannot become an agent in place).
    Restart {
        /// Node changing role.
        node: NodeId,
        /// Role before.
        from: Role,
        /// Role after.
        to: Role,
        /// Parent it re-registers with.
        parent: NodeId,
    },
    /// Re-register the running element on `node` with a new parent
    /// (control-plane message; the element itself keeps running).
    Reattach {
        /// Node whose parent changes.
        node: NodeId,
        /// The new parent node.
        new_parent: NodeId,
    },
}

impl MigrationAction {
    /// The node the action operates on.
    pub fn node(&self) -> NodeId {
        match *self {
            MigrationAction::Launch { node, .. }
            | MigrationAction::Stop { node, .. }
            | MigrationAction::Restart { node, .. }
            | MigrationAction::Reattach { node, .. } => node,
        }
    }
}

impl fmt::Display for MigrationAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            MigrationAction::Launch { node, role, parent } => {
                write!(f, "launch {role} on {node} under {parent}")
            }
            MigrationAction::Stop { node, role } => write!(f, "stop {role} on {node}"),
            MigrationAction::Restart {
                node,
                from,
                to,
                parent,
            } => write!(f, "restart {node} as {to} (was {from}) under {parent}"),
            MigrationAction::Reattach { node, new_parent } => {
                write!(f, "reattach {node} under {new_parent}")
            }
        }
    }
}

/// An ordered, executable migration: the compiled form of a
/// [`PlanDiff`].
#[derive(Debug, Clone, PartialEq)]
pub struct MigrationScript {
    /// Actions per stage; stages run sequentially, actions within a
    /// stage concurrently.
    pub stages: Vec<Vec<MigrationAction>>,
    /// The plan the migration converges to (before any mid-migration
    /// spare substitution).
    pub target: DeploymentPlan,
}

impl MigrationScript {
    /// Compiles the transition from `running` to `target` into ordered
    /// stages.
    ///
    /// # Errors
    /// [`DeployError::ScriptUncompilable`] when the transition replaces
    /// or re-roles the root: a live deployment cannot hot-swap its
    /// master agent — that is a full redeployment, not a migration.
    pub fn compile(running: &DeploymentPlan, target: &DeploymentPlan) -> Result<Self, DeployError> {
        let diff = PlanDiff::between(running, target);
        let old_root = running.node(running.root());
        let new_root = target.node(target.root());
        if old_root != new_root {
            return Err(DeployError::ScriptUncompilable(format!(
                "root changes {old_root} -> {new_root}; migrate cannot hot-swap the master agent"
            )));
        }
        let new_slot: HashMap<NodeId, Slot> = target.slots().map(|s| (target.node(s), s)).collect();
        let old_slot: HashMap<NodeId, Slot> =
            running.slots().map(|s| (running.node(s), s)).collect();

        // Build-up actions bucketed by depth in the new plan; stops and
        // demotions by depth in the old plan (they unwind what exists).
        let mut up: BTreeMap<usize, Vec<MigrationAction>> = BTreeMap::new();
        let mut stops: BTreeMap<usize, Vec<MigrationAction>> = BTreeMap::new();
        let mut demotions: BTreeMap<usize, Vec<MigrationAction>> = BTreeMap::new();
        for (&node, change) in &diff.changes {
            match *change {
                NodeChange::Added { role, parent } => {
                    let parent = parent.expect("non-root additions carry a parent");
                    let depth = target.level(new_slot[&node]);
                    up.entry(depth).or_default().push(MigrationAction::Launch {
                        node,
                        role,
                        parent,
                    });
                }
                NodeChange::Removed { role } => {
                    let depth = running.level(old_slot[&node]);
                    stops
                        .entry(depth)
                        .or_default()
                        .push(MigrationAction::Stop { node, role });
                }
                NodeChange::Rerole { from, to, parent } => {
                    let parent = parent.expect("the root never re-roles (checked above)");
                    let action = MigrationAction::Restart {
                        node,
                        from,
                        to,
                        parent,
                    };
                    match to {
                        // Promotions join the build-up, staged by their
                        // depth in the new plan like fresh launches.
                        Role::Agent => {
                            let depth = target.level(new_slot[&node]);
                            up.entry(depth).or_default().push(action);
                        }
                        // Demotions are staged by OLD-plan depth so a
                        // chain of nested demoting agents steps down
                        // child-before-parent (deepest first), exactly
                        // like the stop ordering.
                        Role::Server => {
                            let depth = running.level(old_slot[&node]);
                            demotions.entry(depth).or_default().push(action);
                        }
                    }
                }
                NodeChange::Reparented { to, .. } => {
                    let new_parent = to.expect("only the root has no parent");
                    let depth = target.level(new_slot[&node]);
                    up.entry(depth)
                        .or_default()
                        .push(MigrationAction::Reattach { node, new_parent });
                }
            }
        }

        let mut stages: Vec<Vec<MigrationAction>> = Vec::new();
        stages.extend(up.into_values());
        // Tear-down: deepest first, so children stop before parents.
        stages.extend(stops.into_values().rev());
        // Demotions likewise unwind deepest first: a nested demoting
        // agent steps down before the former parent it hung under.
        stages.extend(demotions.into_values().rev());
        Ok(Self {
            stages,
            target: target.clone(),
        })
    }

    /// Total number of actions.
    pub fn len(&self) -> usize {
        self.stages.iter().map(Vec::len).sum()
    }

    /// True when the script does nothing (plans already agree).
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// Dry-runs the script against `running` and checks every ordering
    /// invariant: an element only ever registers with a parent that is
    /// up *as an agent* at that stage, agents only stop or step down
    /// once childless, and the final state equals the target plan.
    ///
    /// # Errors
    /// A description of the first violated invariant.
    pub fn verify(&self, running: &DeploymentPlan) -> Result<(), String> {
        // node -> (role, parent) of the live state.
        let mut state: BTreeMap<NodeId, (Role, Option<NodeId>)> = running
            .slots()
            .map(|s| {
                (
                    running.node(s),
                    (running.role(s), running.parent(s).map(|p| running.node(p))),
                )
            })
            .collect();
        let attached_children = |state: &BTreeMap<NodeId, (Role, Option<NodeId>)>, node| {
            state
                .values()
                .filter(|&&(_, parent)| parent == Some(node))
                .count()
        };
        for (i, stage) in self.stages.iter().enumerate() {
            // Registration targets are checked against the state at the
            // *start* of the stage: within a stage actions run
            // concurrently, so a parent launched in stage i is only
            // usable from stage i+1 on.
            let at_start = state.clone();
            let up = |parent: NodeId| match at_start.get(&parent) {
                Some(&(Role::Agent, _)) => Ok(()),
                Some(_) => Err(format!("stage {i}: parent {parent} is not an agent")),
                None => Err(format!("stage {i}: parent {parent} is not running")),
            };
            for action in stage {
                match *action {
                    MigrationAction::Launch { node, role, parent } => {
                        up(parent)?;
                        if state.insert(node, (role, Some(parent))).is_some() {
                            return Err(format!("stage {i}: {node} launched twice"));
                        }
                    }
                    MigrationAction::Stop { node, role } => {
                        if attached_children(&at_start, node) > 0 {
                            return Err(format!("stage {i}: stopping {node} orphans children"));
                        }
                        match state.remove(&node) {
                            Some((r, _)) if r == role => {}
                            _ => return Err(format!("stage {i}: {node} is not a running {role}")),
                        }
                    }
                    MigrationAction::Restart {
                        node,
                        from,
                        to,
                        parent,
                    } => {
                        up(parent)?;
                        if to == Role::Server && attached_children(&at_start, node) > 0 {
                            return Err(format!("stage {i}: demoting {node} orphans children"));
                        }
                        match state.get_mut(&node) {
                            Some(entry) if entry.0 == from => *entry = (to, Some(parent)),
                            _ => return Err(format!("stage {i}: {node} is not a running {from}")),
                        }
                    }
                    MigrationAction::Reattach { node, new_parent } => {
                        up(new_parent)?;
                        match state.get_mut(&node) {
                            Some(entry) => entry.1 = Some(new_parent),
                            None => return Err(format!("stage {i}: {node} is not running")),
                        }
                    }
                }
            }
        }
        for s in self.target.slots() {
            let node = self.target.node(s);
            let want = (
                self.target.role(s),
                self.target.parent(s).map(|p| self.target.node(p)),
            );
            match state.remove(&node) {
                Some(got) if got == want => {}
                other => {
                    return Err(format!(
                        "final state of {node} is {other:?}, target wants {want:?}"
                    ))
                }
            }
        }
        if let Some((&node, _)) = state.iter().next() {
            return Err(format!("{node} still running but absent from the target"));
        }
        Ok(())
    }
}

impl fmt::Display for MigrationScript {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "no migration needed");
        }
        for (i, stage) in self.stages.iter().enumerate() {
            writeln!(f, "stage {i}:")?;
            for action in stage {
                writeln!(f, "  {action}")?;
            }
        }
        Ok(())
    }
}

/// Outcome of executing a [`MigrationScript`].
#[derive(Debug, Clone, PartialEq)]
pub struct MigrationReport {
    /// The plan actually running after the migration (differs from the
    /// script's target by any mid-migration spare substitutions).
    pub plan: DeploymentPlan,
    /// Stages executed.
    pub stages: usize,
    /// Launch attempts performed (launches + restarts, incl. failures).
    pub launches: u32,
    /// Failed launch attempts.
    pub failures: u32,
    /// Elements stopped (tear-downs; restarts not counted).
    pub stops: u32,
    /// `(planned_node, spare_node)` substitutions performed when a
    /// launch kept failing mid-migration.
    pub substitutions: Vec<(NodeId, NodeId)>,
    /// Wall-clock migration makespan: stages run sequentially, actions
    /// within a stage concurrently, each launch attempt costing the
    /// launch latency (stops are control-plane messages, free).
    pub makespan: Seconds,
}

impl GoDiet {
    /// Executes a migration script against the running deployment:
    /// launches, restarts and re-attachments stage by stage, with the
    /// same deterministic failure injection, bounded retries, and
    /// spare-node substitution as a full [`deploy`](GoDiet::deploy).
    /// Spares are platform nodes used by neither the running plan nor
    /// the target.
    ///
    /// When a planned element keeps failing, a spare substitutes for it
    /// *mid-migration*: later actions that register with the failed
    /// node are transparently redirected to the spare, and the reported
    /// plan reflects the substitution.
    ///
    /// # Errors
    /// [`DeployError::ScriptMismatch`] when a precondition does not
    /// hold against `running` (the script was compiled from another
    /// plan); [`DeployError::LaunchFailed`] when an element exhausts
    /// its retries with no spare left.
    pub fn migrate(
        &self,
        platform: &Platform,
        running: &DeploymentPlan,
        script: &MigrationScript,
    ) -> Result<MigrationReport, DeployError> {
        script
            .verify(running)
            .map_err(DeployError::ScriptMismatch)?;
        for s in script.target.slots() {
            let node = script.target.node(s);
            if platform.node(node).is_err() {
                return Err(DeployError::InvalidPlan(format!(
                    "target node {node} is not on the platform"
                )));
            }
        }
        let used: HashSet<NodeId> = running
            .slots()
            .map(|s| running.node(s))
            .chain(script.target.slots().map(|s| script.target.node(s)))
            .collect();
        let mut spares = crate::deploy::spare_nodes(platform, |id| used.contains(&id));

        let mut launches = 0u32;
        let mut failures = 0u32;
        let mut stops = 0u32;
        let mut substitutions: Vec<(NodeId, NodeId)> = Vec::new();
        let mut makespan = 0.0f64;
        // planned node -> node actually hosting it (spare substitution).
        let mut alias: HashMap<NodeId, NodeId> = HashMap::new();

        for stage in &script.stages {
            let mut stage_attempts_max = 0u32;
            for action in stage {
                match *action {
                    MigrationAction::Launch { node, .. }
                    | MigrationAction::Restart { node, .. } => {
                        let slot = script
                            .target
                            .slots()
                            .find(|&s| script.target.node(s) == node)
                            .expect("verify checked the action against the target");
                        let started = self.start_element(
                            slot,
                            node,
                            &mut spares,
                            &mut launches,
                            &mut failures,
                            &mut substitutions,
                        )?;
                        if started.node != node {
                            alias.insert(node, started.node);
                        }
                        stage_attempts_max = stage_attempts_max.max(started.attempts);
                    }
                    MigrationAction::Reattach { .. } => {
                        // Re-registration is one control message; it
                        // occupies the stage but cannot fail.
                        stage_attempts_max = stage_attempts_max.max(1);
                    }
                    MigrationAction::Stop { .. } => {
                        stops += 1;
                    }
                }
            }
            makespan += self.launch_latency.value() * f64::from(stage_attempts_max);
        }

        // The running plan converges to the target, with substituted
        // nodes standing in for the elements that kept failing.
        let mut plan = script.target.clone();
        for (&planned, &actual) in &alias {
            let slot = plan
                .slots()
                .find(|&s| plan.node(s) == planned)
                .expect("alias keys are target nodes");
            plan = crate::deploy::substitute(&plan, slot, actual);
        }
        Ok(MigrationReport {
            plan,
            stages: script.stages.len(),
            launches,
            failures,
            stops,
            substitutions,
            makespan: Seconds(makespan),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adept_hierarchy::builder::{balanced_two_level, star};
    use adept_platform::generator::lyon_cluster;

    fn ids(n: u32) -> Vec<NodeId> {
        (0..n).map(NodeId).collect()
    }

    #[test]
    fn empty_migration_for_identical_plans() {
        let p = star(&ids(5));
        let script = MigrationScript::compile(&p, &p.clone()).unwrap();
        assert!(script.is_empty());
        assert_eq!(script.to_string(), "no migration needed");
        let report = GoDiet::default()
            .migrate(&lyon_cluster(6), &p, &script)
            .unwrap();
        assert!(report.plan.structurally_eq(&p));
        assert_eq!(report.launches, 0);
        assert_eq!(report.makespan, Seconds(0.0));
    }

    #[test]
    fn growth_migration_launches_only_the_new_servers() {
        let old = star(&ids(4));
        let mut new = star(&ids(4));
        new.add_server(new.root(), NodeId(7)).unwrap();
        new.add_server(new.root(), NodeId(8)).unwrap();
        let script = MigrationScript::compile(&old, &new).unwrap();
        assert_eq!(script.len(), 2);
        assert_eq!(script.stages.len(), 1, "same depth: one stage");
        script.verify(&old).unwrap();
        let report = GoDiet::default()
            .migrate(&lyon_cluster(10), &old, &script)
            .unwrap();
        assert!(report.plan.structurally_eq(&new));
        assert_eq!(report.launches, 2, "running elements are not relaunched");
        assert_eq!(report.stops, 0);
        // One stage, one attempt: one latency tick — vs 2 for a full
        // redeploy of the two-level tree.
        assert!((report.makespan.value() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn promote_and_grow_orders_parent_before_child() {
        // Convert server 1 to an agent and hang a fresh server off it —
        // the online replanner's convert-grow move.
        let old = star(&ids(3));
        let mut new = star(&ids(3));
        new.convert_to_agent(Slot(1)).unwrap();
        new.add_server(Slot(1), NodeId(7)).unwrap();
        let script = MigrationScript::compile(&old, &new).unwrap();
        script.verify(&old).unwrap();
        assert_eq!(script.stages.len(), 2);
        assert!(matches!(
            script.stages[0][0],
            MigrationAction::Restart {
                to: Role::Agent,
                ..
            }
        ));
        assert!(matches!(
            script.stages[1][0],
            MigrationAction::Launch { .. }
        ));
        let report = GoDiet::default()
            .migrate(&lyon_cluster(8), &old, &script)
            .unwrap();
        assert!(report.plan.structurally_eq(&new));
    }

    #[test]
    fn teardown_stops_children_before_parents_and_demotes_last() {
        // old: root -> a1 -> {s2, s3}; new: root -> s1 (a1 demoted, its
        // children gone).
        let mut old = DeploymentPlan::with_root(NodeId(0));
        let a1 = old.add_agent(old.root(), NodeId(1)).unwrap();
        old.add_server(a1, NodeId(2)).unwrap();
        old.add_server(a1, NodeId(3)).unwrap();
        let mut new = DeploymentPlan::with_root(NodeId(0));
        new.add_server(new.root(), NodeId(1)).unwrap();
        let script = MigrationScript::compile(&old, &new).unwrap();
        script.verify(&old).unwrap();
        // Stops of s2/s3 precede the demotion restart of a1.
        let stop_stage = script
            .stages
            .iter()
            .position(|st| st.iter().any(|a| matches!(a, MigrationAction::Stop { .. })))
            .unwrap();
        let demote_stage = script
            .stages
            .iter()
            .position(|st| {
                st.iter().any(|a| {
                    matches!(
                        a,
                        MigrationAction::Restart {
                            to: Role::Server,
                            ..
                        }
                    )
                })
            })
            .unwrap();
        assert!(stop_stage < demote_stage);
        let report = GoDiet::default()
            .migrate(&lyon_cluster(5), &old, &script)
            .unwrap();
        assert!(report.plan.structurally_eq(&new));
        assert_eq!(report.stops, 2);
    }

    #[test]
    fn chained_demotions_unwind_child_before_parent() {
        // old: root(0) -> A(1) -> B(2) -> s(3); new: flat star — both
        // nested agents demote. B must step down before A, so the
        // demotion stages follow OLD-plan depth, deepest first.
        let mut old = DeploymentPlan::with_root(NodeId(0));
        let a = old.add_agent(old.root(), NodeId(1)).unwrap();
        let b = old.add_agent(a, NodeId(2)).unwrap();
        old.add_server(b, NodeId(3)).unwrap();
        let new = star(&ids(4));
        let script = MigrationScript::compile(&old, &new).unwrap();
        script.verify(&old).unwrap();
        let demoted_at = |node: u32| {
            script
                .stages
                .iter()
                .position(|st| {
                    st.iter().any(|act| {
                        matches!(
                            *act,
                            MigrationAction::Restart {
                                node: n,
                                to: Role::Server,
                                ..
                            } if n == NodeId(node)
                        )
                    })
                })
                .expect("both agents demote")
        };
        assert!(demoted_at(2) < demoted_at(1), "B steps down before A");
        let report = GoDiet::default()
            .migrate(&lyon_cluster(5), &old, &script)
            .unwrap();
        assert!(report.plan.structurally_eq(&new));
    }

    #[test]
    fn reattach_waits_for_its_new_parent() {
        // s2 moves under a freshly promoted agent: the reattach must
        // come in a later stage than the promotion.
        let old = star(&ids(4));
        let mut new = star(&ids(4));
        new.convert_to_agent(Slot(1)).unwrap();
        new.move_child(Slot(2), Slot(1)).unwrap();
        let script = MigrationScript::compile(&old, &new).unwrap();
        script.verify(&old).unwrap();
        let report = GoDiet::default()
            .migrate(&lyon_cluster(6), &old, &script)
            .unwrap();
        assert!(report.plan.structurally_eq(&new));
    }

    #[test]
    fn deep_stop_chain_unwinds_leaf_first() {
        let old = balanced_two_level(&ids(7), 2); // root -> 2 agents -> 4 servers
        let new = DeploymentPlan::agent_server(NodeId(0), NodeId(1));
        // Everything except root and node 1 leaves; node 1 (an agent in
        // `old`) demotes to a server.
        let script = MigrationScript::compile(&old, &new).unwrap();
        script.verify(&old).unwrap();
        let report = GoDiet::default()
            .migrate(&lyon_cluster(7), &old, &script)
            .unwrap();
        assert!(report.plan.structurally_eq(&new));
    }

    #[test]
    fn root_replacement_is_uncompilable() {
        let old = star(&ids(3));
        let mut new = DeploymentPlan::with_root(NodeId(9));
        new.add_server(new.root(), NodeId(1)).unwrap();
        let err = MigrationScript::compile(&old, &new).unwrap_err();
        assert!(matches!(err, DeployError::ScriptUncompilable(_)));
        assert!(err.to_string().contains("master agent"));
    }

    #[test]
    fn mismatched_script_is_rejected() {
        let old = star(&ids(4));
        let mut new = star(&ids(4));
        new.add_server(new.root(), NodeId(7)).unwrap();
        let script = MigrationScript::compile(&old, &new).unwrap();
        // Execute against a different running plan: node 7 is already up.
        let err = GoDiet::default()
            .migrate(&lyon_cluster(9), &new, &script)
            .unwrap_err();
        assert!(matches!(err, DeployError::ScriptMismatch(_)));
    }

    #[test]
    fn failing_launch_substitutes_a_spare_mid_migration() {
        let platform = lyon_cluster(20);
        let old = star(&ids(4));
        let mut new = star(&ids(4));
        for i in [7u32, 8, 9, 10] {
            new.add_server(new.root(), NodeId(i)).unwrap();
        }
        // High failure probability: at least one of the four launches
        // will exhaust its retries and take a spare.
        let tool = GoDiet::with_failures(0.75, 11);
        let report = tool
            .migrate(
                &platform,
                &old,
                &MigrationScript::compile(&old, &new).unwrap(),
            )
            .unwrap();
        assert!(report.failures > 0);
        assert!(
            !report.substitutions.is_empty(),
            "p=0.75 over 4 launches with 3 attempts each must substitute (seeded)"
        );
        for &(planned, spare) in &report.substitutions {
            assert!(new.uses_node(planned));
            assert!(!new.uses_node(spare) && !old.uses_node(spare));
            assert!(report.plan.uses_node(spare));
            assert!(!report.plan.uses_node(planned));
        }
        assert_eq!(report.plan.len(), new.len(), "shape preserved");
        // Determinism: same seed, same outcome.
        let again = tool
            .migrate(
                &platform,
                &old,
                &MigrationScript::compile(&old, &new).unwrap(),
            )
            .unwrap();
        assert_eq!(again, report);
    }

    #[test]
    fn migration_without_spares_fails_cleanly() {
        let platform = lyon_cluster(5);
        let old = star(&ids(4));
        let mut new = star(&ids(4));
        new.add_server(new.root(), NodeId(4)).unwrap(); // uses the last node
        let tool = GoDiet::with_failures(0.97, 5);
        let err = tool
            .migrate(
                &platform,
                &old,
                &MigrationScript::compile(&old, &new).unwrap(),
            )
            .unwrap_err();
        assert!(matches!(err, DeployError::LaunchFailed { .. }));
    }
}
