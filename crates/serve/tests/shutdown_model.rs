//! Exhaustive model check (vendored `interleave` checker) of the
//! daemon's drain handshake: a hosted control loop keeps ticking a
//! tenant session while `drain`/shutdown concurrently sets a stop
//! flag and `take()`s the session out of its slot (a
//! `Mutex<Option<TenantSession>>` in `daemon.rs`).
//!
//! The invariant the wire protocol depends on: **no tick lands after
//! the drain** — every tick the ticker ever performs is recorded in
//! the session the drainer took, so the archived journal is complete.
//! The kernel guarantees it by doing both the tick and the `take()`
//! under the slot lock: a tick either happens before the take (and is
//! in the taken session) or finds the slot empty and does nothing.
//!
//! A companion negative test models the tempting shortcut — snapshot
//! the tick count *before* taking, outside the lock — and asserts the
//! checker refutes it, certifying the harness can see this bug class.

use interleave::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use interleave::sync::Mutex;
use interleave::{model, thread};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

/// Minimal session: just the tick counter the journal records.
struct Session {
    ticks: u64,
}

#[test]
fn no_tick_lands_after_drain_takes_the_session() {
    let report = model(|| {
        let stop = Arc::new(AtomicBool::new(false));
        let slot = Arc::new(Mutex::new(Some(Session { ticks: 0 })));
        // Ground truth: every tick the ticker actually performed.
        let total = Arc::new(AtomicU64::new(0));

        let ticker = {
            let (stop, slot, total) = (Arc::clone(&stop), Arc::clone(&slot), Arc::clone(&total));
            thread::spawn(move || {
                for _ in 0..2 {
                    if stop.load(Ordering::Acquire) {
                        break;
                    }
                    // Tick under the slot lock, exactly like the
                    // hosted loop: observe() locks the slot, then
                    // ticks the session and appends to its journal.
                    let mut guard = slot.lock();
                    if let Some(sess) = guard.as_mut() {
                        sess.ticks += 1;
                        total.fetch_add(1, Ordering::Relaxed);
                    }
                }
            })
        };

        // The drainer: flag first (so the ticker winds down), then
        // take() under the same lock — the take is the linearization
        // point of the drain.
        stop.store(true, Ordering::Release);
        let drained = slot.lock().take().expect("only the drainer takes");
        ticker.join();

        assert_eq!(
            drained.ticks,
            total.load(Ordering::Relaxed),
            "a tick landed after the drain took the session"
        );
        // And the slot stays empty: a late ticker pass must be a no-op.
        assert!(slot.lock().is_none());
    });
    assert!(report.schedules > 1, "expected multiple interleavings");
}

/// The broken handshake: the drainer snapshots the tick count before
/// the `take()`, outside the lock. A tick can land between snapshot
/// and take, so the recorded count under-reports — the checker must
/// find that schedule.
#[test]
fn pre_take_snapshot_under_reports_and_is_refuted() {
    let msg = expect_caught(|| {
        let stop = Arc::new(AtomicBool::new(false));
        let slot = Arc::new(Mutex::new(Some(Session { ticks: 0 })));
        let ticks_mirror = Arc::new(AtomicU64::new(0));
        let total = Arc::new(AtomicU64::new(0));

        let ticker = {
            let (stop, slot) = (Arc::clone(&stop), Arc::clone(&slot));
            let (mirror, total) = (Arc::clone(&ticks_mirror), Arc::clone(&total));
            thread::spawn(move || {
                if !stop.load(Ordering::Acquire) {
                    let mut guard = slot.lock();
                    if let Some(sess) = guard.as_mut() {
                        sess.ticks += 1;
                        mirror.fetch_add(1, Ordering::Relaxed);
                        total.fetch_add(1, Ordering::Relaxed);
                    }
                }
            })
        };

        // Bug: record the count from the lock-free mirror BEFORE the
        // flag+take, instead of from the taken session.
        let recorded = ticks_mirror.load(Ordering::Relaxed);
        stop.store(true, Ordering::Release);
        let _drained = slot.lock().take();
        ticker.join();

        assert_eq!(
            recorded,
            total.load(Ordering::Relaxed),
            "snapshot missed ticks that landed before the take"
        );
    });
    assert!(msg.contains("snapshot missed"), "unexpected: {msg}");
}

/// Runs `f` under the checker expecting it to FAIL; returns the panic
/// message of the refuting schedule.
fn expect_caught(f: impl Fn() + Send + Sync + 'static) -> String {
    match catch_unwind(AssertUnwindSafe(|| model(f))) {
        Ok(report) => panic!(
            "expected the model check to catch a bug, but {} schedules all passed",
            report.schedules
        ),
        Err(payload) => {
            if let Some(s) = payload.downcast_ref::<String>() {
                s.clone()
            } else if let Some(s) = payload.downcast_ref::<&str>() {
                (*s).to_string()
            } else {
                String::from("(non-string panic)")
            }
        }
    }
}
