//! Drives a real daemon through every lock-holding code path, then
//! asserts the recorded `serve.*` held-before graph is exactly the
//! designed DAG — the lock-order detector in the vendored
//! `parking_lot` shim panics on any cycle at acquisition time, so
//! this test doubles as proof the serving path has no lock-order
//! deadlock.
//!
//! Debug builds only: the registry compiles out in release.

#![cfg(debug_assertions)]

use adept_platform::generator;
use adept_serve::{Daemon, ServeClient, ServeConfig, ServiceDef, SessionConfig};
use parking_lot::lock_order;

#[test]
fn serve_daemon_lock_graph_is_acyclic() {
    let dir = std::env::temp_dir().join(format!("adept-lock-order-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let daemon = Daemon::start(ServeConfig::new(
        "127.0.0.1:0",
        dir.clone(),
        vec![("lyon8".into(), generator::lyon_cluster(8))],
    ))
    .expect("daemon boots");
    let mut client = ServeClient::connect(daemon.addr()).expect("daemon is listening");
    let services = [
        ServiceDef {
            name: "dgemm-310".into(),
            wapp_mflop: 59.6,
            weight: 1.0,
        },
        ServiceDef {
            name: "dgemm-1000".into(),
            wapp_mflop: 2000.0,
            weight: 1.0,
        },
    ];

    // Exercise every lock-holding path: stateless plan (cache), a
    // session lifecycle (slot + journal), status (tenants + slots +
    // cache stats), replan preview, migrate, drain.
    client
        .plan("lyon8", &services, Some(&[1.0, 0.2]))
        .expect("stateless plan");
    client
        .plan("lyon8", &services, Some(&[1.0, 0.2]))
        .expect("stateless plan again (cache exact hit)");
    client
        .register(
            "acme",
            "lyon8",
            &services,
            &[1.5, 0.2],
            &SessionConfig::default(),
        )
        .expect("register");
    client
        .observe("acme", &[1.6, 0.2], &[])
        .expect("observe tick");
    client.replan("acme", &[2.2, 0.3]).expect("replan preview");
    client.migrate("acme", &[2.2, 0.3]).expect("migrate round");
    let status = client.status().expect("status");
    assert_eq!(status.tenants.len(), 1);
    client.drain("acme").expect("drain");
    daemon.stop();
    std::fs::remove_dir_all(&dir).ok();

    // Reaching here means no acquisition panicked: the detector saw
    // no inversion anywhere on the serving path. Now pin the shape of
    // the graph itself.
    lock_order::assert_acyclic_within("serve.");
    let edges = lock_order::edges();
    let serve_edges: Vec<(String, String)> = edges
        .into_iter()
        .filter(|(f, t)| f.starts_with("serve.") && t.starts_with("serve."))
        .collect();
    // The designed nesting: a tenant-slot guard wraps the session,
    // whose journal appends and register-time cache fill happen
    // inside it.
    assert!(
        serve_edges
            .iter()
            .any(|(f, t)| f == "serve.tenant-slot" && t == "serve.journal"),
        "expected serve.tenant-slot → serve.journal in {serve_edges:?}"
    );
    for (from, to) in &serve_edges {
        assert!(
            from == "serve.tenant-slot",
            "unexpected lock nesting {from} → {to}: every serve edge should \
             originate at the tenant slot (map/cache/journal locks are leaves)"
        );
    }
}
