use adept_platform::generator;
use adept_serve::{Daemon, ServeClient, ServeConfig, ServiceDef, SessionConfig};
use std::io::{BufRead, BufReader, Write};

#[test]
fn inf_rate_poisons_journal() {
    let dir = std::env::temp_dir().join(format!("adept-inf-repro-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let daemon = Daemon::start(ServeConfig::new(
        "127.0.0.1:0",
        dir.clone(),
        vec![("lyon8".into(), generator::lyon_cluster(8))],
    ))
    .unwrap();
    let mut client = ServeClient::connect(daemon.addr()).unwrap();
    let services = [ServiceDef {
        name: "s".into(),
        wapp_mflop: 59.6,
        weight: 1.0,
    }];
    client
        .register("t1", "lyon8", &services, &[1.0], &SessionConfig::default())
        .unwrap();

    // Raw socket: send 1e999 (parses to f64::INFINITY server-side).
    let mut raw = std::net::TcpStream::connect(daemon.addr()).unwrap();
    raw.write_all(
        b"{\"id\":1,\"method\":\"observe\",\"params\":{\"tenant\":\"t1\",\"rates\":[1e999]}}\n",
    )
    .unwrap();
    let mut reader = BufReader::new(raw.try_clone().unwrap());
    let mut resp = String::new();
    reader.read_line(&mut resp).unwrap();
    eprintln!("raw observe response: {resp}");
    drop(reader);
    drop(raw);

    daemon.stop();
    let journal = std::fs::read_to_string(dir.join("t1.jsonl")).unwrap();
    eprintln!("journal:\n{journal}");
    let daemon2 = Daemon::start(ServeConfig::new(
        "127.0.0.1:0",
        dir.clone(),
        vec![("lyon8".into(), generator::lyon_cluster(8))],
    ))
    .unwrap();
    eprintln!("resume_errors after restart: {:?}", daemon2.resume_errors());
    daemon2.stop();
    let _ = std::fs::remove_dir_all(&dir);
}
