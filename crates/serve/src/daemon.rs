//! The resident planning daemon.
//!
//! [`Daemon::start`] binds a TCP listener and serves the line-delimited
//! JSON protocol (`docs/WIRE_API.md`) with one thread per connection —
//! plain blocking sockets with short read timeouts, no async runtime.
//! The daemon hosts:
//!
//! - a set of **shared, read-only platform catalogs** (`Arc<Platform>`,
//!   named at startup), and
//! - one [`TenantSession`] per registered tenant, each behind its own
//!   mutex, so tenants proceed concurrently and only requests for the
//!   *same* tenant serialize.
//!
//! At startup the daemon scans its journal directory and resumes every
//! live journal by deterministic replay (see
//! [`TenantSession::resume`]); journals that fail to resume are
//! reported per-tenant in the `status` frame instead of aborting the
//! whole daemon — one corrupt tenant must not take down the others.

use crate::cache::{CacheLookup, PlanCache, DEFAULT_PLAN_CACHE_CAPACITY};
use crate::error::ServeError;
use crate::json::Json;
use crate::session::{validate_tenant_id, TenantSession};
use crate::wire::{
    demand_field, err_response, executions_field, f64_array, objective_field, ok_response,
    services_field, str_field, DaemonStatus, PlanSummary, Request, SessionConfig,
};
use adept_core::model::mix::MixReport;
use adept_core::planner::{MixObjective, MixPlan, MixPlanner, OnlinePlanner};
use adept_platform::Platform;
use adept_workload::{MixDemand, ServiceMix};
use parking_lot::{Mutex, RwLock};
use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// How often blocked reads and the accept loop re-check the shutdown
/// flag.
const POLL: Duration = Duration::from_millis(50);

/// Daemon startup configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address (`"127.0.0.1:0"` picks a free port).
    pub addr: String,
    /// Directory holding one `<tenant>.jsonl` journal per tenant.
    pub journal_dir: PathBuf,
    /// Named platform catalogs served to every tenant.
    pub platforms: Vec<(String, Platform)>,
    /// Thread warm incremental-engine state across each tenant's replan
    /// rounds (default `true`). An ablation flag: answers are
    /// bit-identical either way, only replan latency differs.
    pub warm_start: bool,
    /// Entry capacity of the shared cross-tenant plan cache
    /// ([`DEFAULT_PLAN_CACHE_CAPACITY`] by default); `0` disables
    /// caching. Memory grows as `capacity × O(plan size)`.
    pub plan_cache_capacity: usize,
}

impl ServeConfig {
    /// A config with the performance defaults: warm-started replanning
    /// on, a [`DEFAULT_PLAN_CACHE_CAPACITY`]-entry plan cache.
    pub fn new(
        addr: impl Into<String>,
        journal_dir: impl Into<PathBuf>,
        platforms: Vec<(String, Platform)>,
    ) -> ServeConfig {
        ServeConfig {
            addr: addr.into(),
            journal_dir: journal_dir.into(),
            platforms,
            warm_start: true,
            plan_cache_capacity: DEFAULT_PLAN_CACHE_CAPACITY,
        }
    }
}

/// One tenant slot: `None` while a drain is underway, so concurrent
/// requests observe a clean "unknown tenant" instead of racing the
/// teardown.
type Slot = Arc<Mutex<Option<TenantSession>>>;

struct SharedState {
    platforms: BTreeMap<String, Arc<Platform>>,
    journal_dir: PathBuf,
    tenants: RwLock<BTreeMap<String, Slot>>,
    /// `(tenant, error code, message)` for journals that failed to
    /// resume at startup.
    resume_errors: Mutex<Vec<(String, String, String)>>,
    /// The shared cross-tenant plan cache (its own internal lock).
    cache: PlanCache,
    /// Warm-replanning ablation flag, threaded into every session.
    warm_start: bool,
    shutdown: AtomicBool,
}

/// The daemon entry point; see [`Daemon::start`].
pub struct Daemon;

/// A running daemon. Dropping the handle stops it.
pub struct DaemonHandle {
    addr: SocketAddr,
    state: Arc<SharedState>,
    accept: Option<JoinHandle<()>>,
    workers: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl Daemon {
    /// Boots the daemon: resumes every journal in
    /// `config.journal_dir`, binds the listener, and starts accepting
    /// connections. Returns immediately; the daemon runs on background
    /// threads until [`DaemonHandle::stop`] (or drop).
    ///
    /// # Errors
    /// [`ServeError::Io`] when the journal directory or listener
    /// cannot be set up, [`ServeError::BadRequest`] on an empty
    /// platform catalog.
    pub fn start(config: ServeConfig) -> Result<DaemonHandle, ServeError> {
        if config.platforms.is_empty() {
            return Err(ServeError::BadRequest(
                "a daemon needs at least one platform catalog".into(),
            ));
        }
        std::fs::create_dir_all(&config.journal_dir)?;
        let platforms: BTreeMap<String, Arc<Platform>> = config
            .platforms
            .into_iter()
            .map(|(name, p)| (name, Arc::new(p)))
            .collect();

        let state = Arc::new(SharedState {
            platforms,
            journal_dir: config.journal_dir,
            tenants: RwLock::named("serve.tenants", BTreeMap::new()),
            resume_errors: Mutex::named("serve.resume-errors", Vec::new()),
            cache: PlanCache::new(config.plan_cache_capacity),
            warm_start: config.warm_start,
            shutdown: AtomicBool::new(false),
        });
        resume_all(&state);

        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;

        let workers: Arc<Mutex<Vec<JoinHandle<()>>>> =
            Arc::new(Mutex::named("serve.workers", Vec::new()));
        let accept = {
            let state = Arc::clone(&state);
            let workers = Arc::clone(&workers);
            std::thread::spawn(move || accept_loop(&listener, &state, &workers))
        };
        Ok(DaemonHandle {
            addr,
            state,
            accept: Some(accept),
            workers,
        })
    }
}

impl DaemonHandle {
    /// The bound address (with the actual port when `:0` was asked).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Journals that failed to resume at startup, as
    /// `(tenant, error code, message)`.
    pub fn resume_errors(&self) -> Vec<(String, String, String)> {
        self.state.resume_errors.lock().clone()
    }

    /// Stops the daemon: open connections are dropped (within one poll
    /// interval), every thread is joined, journals stay on disk for the
    /// next start to resume. In-flight requests finish first — the
    /// journal write-ahead discipline means even a hard kill here loses
    /// at most unacknowledged work.
    pub fn stop(mut self) {
        self.stop_inner();
    }

    fn stop_inner(&mut self) {
        self.state.shutdown.store(true, Ordering::SeqCst);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        let workers = std::mem::take(&mut *self.workers.lock());
        for w in workers {
            let _ = w.join();
        }
    }
}

impl Drop for DaemonHandle {
    fn drop(&mut self) {
        self.stop_inner();
    }
}

/// Resumes every `*.jsonl` journal in the journal directory.
fn resume_all(state: &Arc<SharedState>) {
    let Ok(entries) = std::fs::read_dir(&state.journal_dir) else {
        return;
    };
    let lookup = |name: &str| state.platforms.get(name).cloned();
    let mut paths: Vec<PathBuf> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "jsonl"))
        .collect();
    paths.sort();
    for path in paths {
        let tenant = path
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or_default()
            .to_string();
        // Replay depends only on the journal — never on the plan cache.
        match TenantSession::resume(&path, &lookup, state.warm_start) {
            Ok(Some(session)) => {
                state.tenants.write().insert(
                    tenant,
                    Arc::new(Mutex::named("serve.tenant-slot", Some(session))),
                );
            }
            Ok(None) => {
                // The journal ends in a drain record: the previous
                // daemon died between the record and the archive
                // rename. Finish the rename now.
                let mut archived = path.clone().into_os_string();
                archived.push(".drained");
                let _ = std::fs::rename(&path, archived);
            }
            Err(e) => {
                state.resume_errors.lock().push((
                    tenant,
                    e.code().as_str().to_string(),
                    e.to_string(),
                ));
            }
        }
    }
}

fn accept_loop(
    listener: &TcpListener,
    state: &Arc<SharedState>,
    workers: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    while !state.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let state = Arc::clone(state);
                let handle = std::thread::spawn(move || serve_connection(stream, &state));
                workers.lock().push(handle);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(POLL);
            }
            Err(_) => break,
        }
    }
}

/// One connection: read lines, dispatch, answer — until EOF, a socket
/// error, or daemon shutdown.
fn serve_connection(mut stream: TcpStream, state: &Arc<SharedState>) {
    // Request/response over small frames: Nagle + delayed ACK would add
    // ~40ms per round trip, so disable coalescing outright.
    let _ = stream.set_nodelay(true);
    if stream.set_read_timeout(Some(POLL)).is_err() {
        return;
    }
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        if state.shutdown.load(Ordering::SeqCst) {
            return;
        }
        match stream.read(&mut chunk) {
            Ok(0) => return, // EOF
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                while let Some(pos) = buf.iter().position(|&b| b == b'\n') {
                    let line: Vec<u8> = buf.drain(..=pos).collect();
                    let line = String::from_utf8_lossy(&line[..line.len() - 1]).into_owned();
                    if line.trim().is_empty() {
                        continue;
                    }
                    let mut response = answer(&line, state);
                    response.push('\n');
                    if stream
                        .write_all(response.as_bytes())
                        .and_then(|()| stream.flush())
                        .is_err()
                    {
                        return;
                    }
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut
                    || e.kind() == std::io::ErrorKind::Interrupted =>
            {
                continue;
            }
            Err(_) => return,
        }
    }
}

/// Parses and dispatches one request line into one response line.
fn answer(line: &str, state: &Arc<SharedState>) -> String {
    let request = match Request::parse(line) {
        Ok(r) => r,
        Err(e) => return err_response(0, &e),
    };
    match dispatch(&request, state) {
        Ok(result) => ok_response(request.id, result),
        Err(e) => err_response(request.id, &e),
    }
}

fn dispatch(request: &Request, state: &Arc<SharedState>) -> Result<Json, ServeError> {
    let p = &request.params;
    match request.method.as_str() {
        "status" => Ok(daemon_status(state).to_json()),
        "plan" => plan(p, state),
        "register" => register(p, state),
        "observe" => {
            let rates = f64_array(p, "rates")?;
            let executions = executions_field(p)?;
            with_session(p, state, |s| {
                Ok(s.observe(rates.clone(), executions.clone())?.to_json())
            })
        }
        "replan" => {
            let demand = demand_field(p, "demand")?;
            with_session(p, state, |s| Ok(s.preview(demand.clone())?.to_json()))
        }
        "migrate" => {
            let demand = demand_field(p, "demand")?;
            with_session(p, state, |s| {
                let migration = s.migrate(demand.clone())?;
                Ok(Json::obj(vec![
                    ("migrated", Json::Bool(migration.is_some())),
                    ("migration", migration.map_or(Json::Null, |m| m.to_json())),
                ]))
            })
        }
        "drain" => drain(p, state),
        "shutdown" => {
            state.shutdown.store(true, Ordering::SeqCst);
            Ok(Json::obj(vec![("stopping", Json::Bool(true))]))
        }
        other => Err(ServeError::UnknownMethod(other.to_string())),
    }
}

/// Runs `f` on the named tenant's session, holding only that tenant's
/// lock.
fn with_session<T>(
    params: &Json,
    state: &Arc<SharedState>,
    f: impl FnOnce(&mut TenantSession) -> Result<T, ServeError>,
) -> Result<T, ServeError> {
    let tenant = str_field(params, "tenant")?;
    let slot = state
        .tenants
        .read()
        .get(&tenant)
        .cloned()
        .ok_or_else(|| ServeError::UnknownTenant(tenant.clone()))?;
    let mut guard = slot.lock();
    let session = guard.as_mut().ok_or(ServeError::UnknownTenant(tenant))?;
    f(session)
}

/// The stateless `plan` frame: evaluate a mix on a catalog platform
/// without creating a session.
fn plan(params: &Json, state: &Arc<SharedState>) -> Result<Json, ServeError> {
    let platform_name = str_field(params, "platform")?;
    let platform = state
        .platforms
        .get(&platform_name)
        .ok_or(ServeError::UnknownPlatform(platform_name))?;
    let services = services_field(params, "services")?;
    let mix = crate::session::build_mix(&services)?;
    let demand = match params.get("demand") {
        None => MixDemand::unbounded(mix.len()),
        Some(_) => {
            let rates = demand_field(params, "demand")?;
            let d = MixDemand::try_targets(rates)?;
            if d.len() != mix.len() {
                return Err(ServeError::BadRequest(format!(
                    "demand covers {} services, mix declares {}",
                    d.len(),
                    mix.len()
                )));
            }
            d
        }
    };
    let objective = objective_field(params)?;
    let got = plan_with_cache(state, platform, &mix, objective, &demand)?;
    let mut per_service = vec![0u64; mix.len()];
    for &service in got.assignment.service_of.values() {
        if let Some(n) = per_service.get_mut(service) {
            *n += 1;
        }
    }
    let summary = PlanSummary {
        rho: got.report.rho,
        rho_service: got.report.rho_service.clone(),
        servers: got.plan.server_count() as u64,
        agents: got.plan.agent_count() as u64,
        per_service_servers: per_service,
    };
    Ok(Json::obj(vec![
        ("plan", summary.to_json()),
        ("objective_value", Json::num(got.objective_value)),
    ]))
}

/// Answers a stateless planning question through the shared cache.
///
/// Three outcomes, in preference order:
///
/// 1. **Exact hit** — the cache holds the canonical cold answer for
///    bit-identical inputs; return it (deterministic planner ⇒ equal to
///    recomputing).
/// 2. **Near hit** — a neighboring entry seeds an unbounded-budget
///    revision toward the queried demand: the search is accelerated,
///    and the revised answer is *not* inserted (only canonical cold
///    results populate the cache). A revision failure falls back cold.
/// 3. **Miss** — plan cold and insert the result for the next caller.
fn plan_with_cache(
    state: &Arc<SharedState>,
    platform: &Arc<Platform>,
    mix: &ServiceMix,
    objective: MixObjective,
    demand: &MixDemand,
) -> Result<MixPlan, ServeError> {
    let rates: Vec<f64> = (0..demand.len()).map(|j| demand.rate(j)).collect();
    let cold = |state: &Arc<SharedState>| -> Result<MixPlan, ServeError> {
        let got = MixPlanner::with_objective(objective).plan_mix(platform, mix, demand)?;
        state.cache.insert(platform, mix, objective, &rates, &got);
        Ok(got)
    };
    match state.cache.lookup(platform, mix, objective, &rates, true) {
        CacheLookup::Exact(hit) => Ok(*hit),
        CacheLookup::Near(seed) => {
            let reviser = OnlinePlanner {
                max_changes: usize::MAX,
                ..OnlinePlanner::default()
            };
            match reviser.replan_mix(platform, &seed.plan, mix, &seed.assignment, demand) {
                Ok(replan) => Ok(MixPlan {
                    objective_value: objective_value(objective, mix, &replan.report),
                    plan: replan.plan,
                    assignment: replan.assignment,
                    report: replan.report,
                }),
                Err(_) => cold(state),
            }
        }
        CacheLookup::Miss => cold(state),
    }
}

/// The serve-side mirror of the planner's objective scoring, computed
/// from a [`MixReport`] (for near-tier revisions, whose reports come
/// from the reviser rather than [`MixPlanner`]).
fn objective_value(objective: MixObjective, mix: &ServiceMix, report: &MixReport) -> f64 {
    match objective {
        MixObjective::WeightedMin => report.rho,
        MixObjective::WeightedSum => (0..mix.len())
            .filter(|&j| mix.share(j) > 0.0)
            .map(|j| mix.share(j) * report.rho_sched.min(report.rho_service[j]))
            .sum(),
    }
}

fn register(params: &Json, state: &Arc<SharedState>) -> Result<Json, ServeError> {
    let tenant = str_field(params, "tenant")?;
    validate_tenant_id(&tenant)?;
    let platform_name = str_field(params, "platform")?;
    let platform = state
        .platforms
        .get(&platform_name)
        .cloned()
        .ok_or(ServeError::UnknownPlatform(platform_name.clone()))?;
    let services = services_field(params, "services")?;
    let demand = demand_field(params, "demand")?;
    let config = match params.get("config") {
        None => SessionConfig::default(),
        Some(c) => SessionConfig::from_json(c)?,
    };

    // Claim the tenant id in the live map first (an atomic reservation:
    // two concurrent registers race on this lock, not on the journal
    // file), then build the session.
    let slot: Slot = Arc::new(Mutex::named("serve.tenant-slot", None));
    {
        let mut tenants = state.tenants.write();
        if tenants.contains_key(&tenant) {
            return Err(ServeError::TenantExists(tenant));
        }
        tenants.insert(tenant.clone(), Arc::clone(&slot));
    }
    let mut guard = slot.lock();
    match TenantSession::register(
        &state.journal_dir,
        &tenant,
        &platform_name,
        platform,
        &services,
        demand,
        &config,
        Some(&state.cache),
        state.warm_start,
    ) {
        Ok(session) => {
            let status = session.status();
            *guard = Some(session);
            Ok(status.to_json())
        }
        Err(e) => {
            // Roll the reservation back so the id is claimable again.
            drop(guard);
            state.tenants.write().remove(&tenant);
            Err(e)
        }
    }
}

fn drain(params: &Json, state: &Arc<SharedState>) -> Result<Json, ServeError> {
    let tenant = str_field(params, "tenant")?;
    let slot = state
        .tenants
        .read()
        .get(&tenant)
        .cloned()
        .ok_or_else(|| ServeError::UnknownTenant(tenant.clone()))?;
    let session = slot
        .lock()
        .take()
        .ok_or_else(|| ServeError::UnknownTenant(tenant.clone()))?;
    // Concurrent requests now see `None` (unknown tenant); safe to
    // archive and unlist.
    let archived = session.drain()?;
    state.tenants.write().remove(&tenant);
    Ok(Json::obj(vec![
        ("tenant", Json::str(tenant)),
        ("journal", Json::str(archived.display().to_string())),
    ]))
}

fn daemon_status(state: &Arc<SharedState>) -> DaemonStatus {
    let slots: Vec<Slot> = state.tenants.read().values().cloned().collect();
    let mut tenants = Vec::new();
    for slot in slots {
        if let Some(session) = slot.lock().as_ref() {
            tenants.push(session.status());
        }
    }
    // Hoisted out of the struct literal: a temporary guard inside the
    // literal would live to the end of the whole expression, holding
    // `serve.resume-errors` across the cache-lock acquisition in
    // `stats()` for no reason.
    let resume_errors = state.resume_errors.lock().clone();
    DaemonStatus {
        platforms: state.platforms.keys().cloned().collect(),
        tenants,
        resume_errors,
        cache: state.cache.stats(),
    }
}
