//! A typed client handle for the wire protocol.
//!
//! [`ServeClient`] owns one TCP connection and turns every protocol
//! frame into a typed call: requests are encoded, sent, and matched to
//! their response by id; error frames come back as a [`RemoteError`]
//! carrying the machine-readable [`ErrorCode`]. One client drives one
//! connection; a tenant's requests are serialized by the daemon anyway,
//! so the simplest client is also the truthful one.

use crate::error::{ErrorCode, ServeError};
use crate::json::Json;
use crate::wire::{
    self, decode_response, demand_json, executions_json, num_array_json, services_json,
    DaemonStatus, MigrationSummary, PlanSummary, ReplanPreview, Request, ServiceDef, SessionConfig,
    TenantStatus, TickOutcome,
};
use adept_control::controller::ExecutionSample;
use std::fmt;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};

/// A request that failed — locally (socket, framing) or remotely (the
/// daemon answered an error frame).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RemoteError {
    /// The wire error code (`io` / `bad-frame` for local failures).
    pub code: ErrorCode,
    /// Human-readable detail.
    pub message: String,
}

impl fmt::Display for RemoteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.code, self.message)
    }
}

impl std::error::Error for RemoteError {}

impl From<ServeError> for RemoteError {
    fn from(e: ServeError) -> Self {
        RemoteError {
            code: e.code(),
            message: e.to_string(),
        }
    }
}

/// A connected wire-protocol client.
///
/// # Examples
///
/// Boot an in-process daemon, plan a mix over the wire, and read the
/// typed response:
///
/// ```
/// use adept_platform::generator;
/// use adept_serve::{Daemon, ServeClient, ServeConfig, ServiceDef};
///
/// let dir = std::env::temp_dir().join(format!("adept-serve-doc-{}", std::process::id()));
/// let _ = std::fs::remove_dir_all(&dir);
/// let daemon = Daemon::start(ServeConfig::new(
///     "127.0.0.1:0",
///     dir.clone(),
///     vec![("lyon8".into(), generator::lyon_cluster(8))],
/// ))
/// .expect("daemon boots");
///
/// let mut client = ServeClient::connect(daemon.addr()).expect("daemon is listening");
/// let services = [ServiceDef {
///     name: "dgemm-310".into(),
///     wapp_mflop: 59.6,
///     weight: 1.0,
/// }];
/// let (plan, _objective) = client
///     .plan("lyon8", &services, None)
///     .expect("the catalog platform fits the mix");
/// assert!(plan.servers > 0, "a non-empty deployment was planned");
///
/// daemon.stop();
/// std::fs::remove_dir_all(&dir).ok();
/// ```
#[derive(Debug)]
pub struct ServeClient {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
    next_id: u64,
}

impl ServeClient {
    /// Connects to a running daemon.
    ///
    /// # Errors
    /// [`RemoteError`] with code `io` when the connection fails.
    pub fn connect(addr: SocketAddr) -> Result<ServeClient, RemoteError> {
        let stream = TcpStream::connect(addr).map_err(io_err)?;
        // One small frame per direction per call: disable Nagle so the
        // round trip is not held hostage to the peer's delayed ACK.
        stream.set_nodelay(true).map_err(io_err)?;
        let reader = BufReader::new(stream.try_clone().map_err(io_err)?);
        Ok(ServeClient {
            stream,
            reader,
            next_id: 1,
        })
    }

    /// Sends one request frame and blocks for its response, returning
    /// the raw `result` object. The typed methods below are wrappers
    /// over this; it is public for driving protocol extensions.
    ///
    /// # Errors
    /// [`RemoteError`]: remote error frames keep their wire code,
    /// local socket/framing failures map to `io` / `bad-frame`.
    pub fn call(&mut self, method: &str, params: Json) -> Result<Json, RemoteError> {
        let id = self.next_id;
        self.next_id += 1;
        let mut line = Request {
            id,
            method: method.to_string(),
            params,
        }
        .encode();
        line.push('\n');
        self.stream.write_all(line.as_bytes()).map_err(io_err)?;
        self.stream.flush().map_err(io_err)?;

        let mut response = String::new();
        let n = self.reader.read_line(&mut response).map_err(io_err)?;
        if n == 0 {
            return Err(RemoteError {
                code: ErrorCode::Io,
                message: "daemon closed the connection".into(),
            });
        }
        let (answer_id, result) =
            decode_response(response.trim_end_matches('\n')).map_err(RemoteError::from)?;
        if answer_id != id {
            return Err(RemoteError {
                code: ErrorCode::BadFrame,
                message: format!("response id {answer_id} does not match request id {id}"),
            });
        }
        result.map_err(|(code, message)| RemoteError { code, message })
    }

    /// The daemon's `status`: catalogs, live tenants, resume errors.
    ///
    /// # Errors
    /// [`RemoteError`] as for [`call`](ServeClient::call).
    pub fn status(&mut self) -> Result<DaemonStatus, RemoteError> {
        let result = self.call("status", Json::obj(vec![]))?;
        DaemonStatus::from_json(&result).map_err(RemoteError::from)
    }

    /// Stateless `plan`: size a deployment for a mix on a catalog
    /// platform without registering a tenant. `demand: None` plans the
    /// highest-throughput deployment the platform allows. Returns the
    /// plan summary and the planner's objective value.
    ///
    /// # Errors
    /// [`RemoteError`] as for [`call`](ServeClient::call) — notably
    /// `unknown-platform`, `bad-demand`, and `planner`.
    pub fn plan(
        &mut self,
        platform: &str,
        services: &[ServiceDef],
        demand: Option<&[f64]>,
    ) -> Result<(PlanSummary, f64), RemoteError> {
        let mut params = vec![
            ("platform", Json::str(platform)),
            ("services", services_json(services)),
        ];
        if let Some(d) = demand {
            params.push(("demand", demand_json(d)));
        }
        let result = self.call("plan", Json::obj(params))?;
        let summary =
            PlanSummary::from_json(wire::field(&result, "plan").map_err(RemoteError::from)?)
                .map_err(RemoteError::from)?;
        let objective = wire::f64_field(&result, "objective_value").map_err(RemoteError::from)?;
        Ok((summary, objective))
    }

    /// Registers a tenant: plans the initial deployment, claims the
    /// journal, starts the hosted control loop. Returns the newborn
    /// session's status.
    ///
    /// # Errors
    /// [`RemoteError`] — notably `tenant-exists`, `journal-mismatch`
    /// (journaled claim), `bad-demand`, and `planner`.
    pub fn register(
        &mut self,
        tenant: &str,
        platform: &str,
        services: &[ServiceDef],
        demand: &[f64],
        config: &SessionConfig,
    ) -> Result<TenantStatus, RemoteError> {
        let result = self.call(
            "register",
            Json::obj(vec![
                ("tenant", Json::str(tenant)),
                ("platform", Json::str(platform)),
                ("services", services_json(services)),
                ("demand", demand_json(demand)),
                ("config", config.to_json()),
            ]),
        )?;
        TenantStatus::from_json(&result).map_err(RemoteError::from)
    }

    /// Feeds one observed control interval to a tenant's loop.
    ///
    /// # Errors
    /// [`RemoteError`] — notably `unknown-tenant`, `bad-request`
    /// (arity), `revise`, and `deploy`.
    pub fn observe(
        &mut self,
        tenant: &str,
        rates: &[f64],
        executions: &[ExecutionSample],
    ) -> Result<TickOutcome, RemoteError> {
        let result = self.call(
            "observe",
            Json::obj(vec![
                ("tenant", Json::str(tenant)),
                ("rates", num_array_json(rates)),
                ("executions", executions_json(executions)),
            ]),
        )?;
        TickOutcome::from_json(&result).map_err(RemoteError::from)
    }

    /// Dry-run `replan`: what a migration toward `demand` would change,
    /// without executing anything.
    ///
    /// # Errors
    /// [`RemoteError`] — notably `unknown-tenant`, `bad-demand`,
    /// `revise`, and `diff`.
    pub fn replan(&mut self, tenant: &str, demand: &[f64]) -> Result<ReplanPreview, RemoteError> {
        let result = self.call(
            "replan",
            Json::obj(vec![
                ("tenant", Json::str(tenant)),
                ("demand", demand_json(demand)),
            ]),
        )?;
        ReplanPreview::from_json(&result).map_err(RemoteError::from)
    }

    /// Operator-forced `migrate` toward `demand`. Returns the executed
    /// migration, or `None` when the running deployment already fits.
    ///
    /// # Errors
    /// [`RemoteError`] — notably `unknown-tenant`, `bad-demand`,
    /// `revise`, and `deploy`.
    pub fn migrate(
        &mut self,
        tenant: &str,
        demand: &[f64],
    ) -> Result<Option<MigrationSummary>, RemoteError> {
        let result = self.call(
            "migrate",
            Json::obj(vec![
                ("tenant", Json::str(tenant)),
                ("demand", demand_json(demand)),
            ]),
        )?;
        match wire::field(&result, "migration").map_err(RemoteError::from)? {
            Json::Null => Ok(None),
            m => MigrationSummary::from_json(m)
                .map(Some)
                .map_err(RemoteError::from),
        }
    }

    /// Drains a tenant: journals the clean end, archives the journal,
    /// frees the id. Returns the archived journal path.
    ///
    /// # Errors
    /// [`RemoteError`] — notably `unknown-tenant`.
    pub fn drain(&mut self, tenant: &str) -> Result<String, RemoteError> {
        let result = self.call("drain", Json::obj(vec![("tenant", Json::str(tenant))]))?;
        wire::str_field(&result, "journal").map_err(RemoteError::from)
    }

    /// Asks the daemon to shut down (connections drop within its poll
    /// interval; journals stay for the next start to resume).
    ///
    /// # Errors
    /// [`RemoteError`] on socket failure.
    pub fn shutdown(&mut self) -> Result<(), RemoteError> {
        self.call("shutdown", Json::obj(vec![])).map(|_| ())
    }
}

fn io_err(e: std::io::Error) -> RemoteError {
    RemoteError {
        code: ErrorCode::Io,
        message: e.to_string(),
    }
}
