//! The wire protocol: typed request/response frames over line-delimited
//! JSON.
//!
//! One request per line, one response per line, in order. A request is
//! `{"id":N,"method":"...","params":{...}}`; the response echoes the id
//! as `{"id":N,"ok":true,"result":{...}}` or
//! `{"id":N,"ok":false,"error":{"code":"...","message":"..."}}`. Every
//! frame, field, and error code is documented (with worked examples) in
//! `docs/WIRE_API.md`; the doc and this module are kept honest by the
//! round-trip tests below and the end-to-end daemon tests.
//!
//! The shape follows the PURAIFY deployment-planner REST surface
//! (SNIPPETS.md §2) translated to a socket: `plan` is the stateless
//! plan/validate call, `register`/`observe`/`replan`/`migrate`/`drain`
//! are the tenant lifecycle, `status` is the operator's read side.

use crate::cache::CacheStats;
use crate::error::{ErrorCode, ServeError};
use crate::json::Json;
use adept_control::controller::ExecutionSample;
use adept_core::planner::MixObjective;
use adept_platform::{MflopRate, Seconds};

/// One parsed request frame.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Client-chosen correlation id, echoed in the response (0 when
    /// absent).
    pub id: u64,
    /// Method name (`plan`, `register`, `observe`, ...).
    pub method: String,
    /// Method parameters (an object; `{}` when absent).
    pub params: Json,
}

impl Request {
    /// Parses one request line.
    ///
    /// # Errors
    /// [`ServeError::BadFrame`] when the line is not a JSON object with
    /// a string `method`.
    pub fn parse(line: &str) -> Result<Request, ServeError> {
        let v = Json::parse(line).map_err(ServeError::BadFrame)?;
        let method = v
            .get("method")
            .and_then(Json::as_str)
            .ok_or_else(|| ServeError::BadFrame("frame has no string \"method\"".into()))?
            .to_string();
        let id = v.get("id").and_then(Json::as_f64).unwrap_or(0.0) as u64;
        let params = v.get("params").cloned().unwrap_or(Json::Obj(Vec::new()));
        Ok(Request { id, method, params })
    }

    /// Encodes the frame as one line (no trailing newline).
    pub fn encode(&self) -> String {
        Json::obj(vec![
            ("id", Json::Num(self.id as f64)),
            ("method", Json::str(&self.method)),
            ("params", self.params.clone()),
        ])
        .to_string()
    }
}

/// Encodes a success response.
pub fn ok_response(id: u64, result: Json) -> String {
    Json::obj(vec![
        ("id", Json::Num(id as f64)),
        ("ok", Json::Bool(true)),
        ("result", result),
    ])
    .to_string()
}

/// Encodes an error response from a [`ServeError`].
pub fn err_response(id: u64, error: &ServeError) -> String {
    Json::obj(vec![
        ("id", Json::Num(id as f64)),
        ("ok", Json::Bool(false)),
        (
            "error",
            Json::obj(vec![
                ("code", Json::str(error.code().as_str())),
                ("message", Json::str(error.to_string())),
            ]),
        ),
    ])
    .to_string()
}

// ---------------------------------------------------------------------------
// Field-extraction helpers (shared by daemon dispatch and client decode).
// ---------------------------------------------------------------------------

/// A required field of a params object.
pub(crate) fn field<'a>(obj: &'a Json, key: &str) -> Result<&'a Json, ServeError> {
    obj.get(key)
        .ok_or_else(|| ServeError::BadRequest(format!("missing field {key:?}")))
}

pub(crate) fn str_field(obj: &Json, key: &str) -> Result<String, ServeError> {
    field(obj, key)?
        .as_str()
        .map(str::to_string)
        .ok_or_else(|| ServeError::BadRequest(format!("field {key:?} must be a string")))
}

pub(crate) fn f64_field(obj: &Json, key: &str) -> Result<f64, ServeError> {
    field(obj, key)?
        .as_f64()
        .ok_or_else(|| ServeError::BadRequest(format!("field {key:?} must be a number")))
}

pub(crate) fn u64_field(obj: &Json, key: &str) -> Result<u64, ServeError> {
    let v = f64_field(obj, key)?;
    if v < 0.0 || v.fract() != 0.0 {
        return Err(ServeError::BadRequest(format!(
            "field {key:?} must be a non-negative integer"
        )));
    }
    Ok(v as u64)
}

/// A demand vector: JSON numbers, with `null` meaning *unbounded*
/// (`f64::INFINITY`). Finite validation (NaN/negative rejection) is the
/// job of [`MixDemand::try_targets`](adept_workload::MixDemand), so the
/// typed [`DemandError`](adept_workload::DemandError) surfaces.
pub(crate) fn demand_field(obj: &Json, key: &str) -> Result<Vec<f64>, ServeError> {
    let arr = field(obj, key)?
        .as_arr()
        .ok_or_else(|| ServeError::BadRequest(format!("field {key:?} must be an array")))?;
    arr.iter()
        .enumerate()
        .map(|(i, v)| match v {
            Json::Null => Ok(f64::INFINITY),
            Json::Num(x) => Ok(*x),
            _ => Err(ServeError::BadRequest(format!(
                "field {key:?}[{i}] must be a number or null"
            ))),
        })
        .collect()
}

/// Encodes a demand vector (`INFINITY` → `null`).
pub(crate) fn demand_json(rates: &[f64]) -> Json {
    Json::Arr(rates.iter().map(|&r| Json::num(r)).collect())
}

pub(crate) fn f64_array(obj: &Json, key: &str) -> Result<Vec<f64>, ServeError> {
    let arr = field(obj, key)?
        .as_arr()
        .ok_or_else(|| ServeError::BadRequest(format!("field {key:?} must be an array")))?;
    arr.iter()
        .enumerate()
        .map(|(i, v)| {
            v.as_f64().ok_or_else(|| {
                ServeError::BadRequest(format!("field {key:?}[{i}] must be a number"))
            })
        })
        .collect()
}

pub(crate) fn num_array_json(values: &[f64]) -> Json {
    Json::Arr(values.iter().map(|&v| Json::num(v)).collect())
}

// ---------------------------------------------------------------------------
// Protocol data types.
// ---------------------------------------------------------------------------

/// One service of a tenant's mix, as declared over the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceDef {
    /// Service name (reports, XML output).
    pub name: String,
    /// `Wapp`: computation per request, MFlop.
    pub wapp_mflop: f64,
    /// Mix weight (normalized to request shares server-side).
    pub weight: f64,
}

impl ServiceDef {
    pub(crate) fn to_json(&self) -> Json {
        Json::obj(vec![
            ("name", Json::str(&self.name)),
            ("wapp_mflop", Json::num(self.wapp_mflop)),
            ("weight", Json::num(self.weight)),
        ])
    }

    pub(crate) fn from_json(v: &Json) -> Result<ServiceDef, ServeError> {
        Ok(ServiceDef {
            name: str_field(v, "name")?,
            wapp_mflop: f64_field(v, "wapp_mflop")?,
            weight: f64_field(v, "weight")?,
        })
    }
}

pub(crate) fn services_field(obj: &Json, key: &str) -> Result<Vec<ServiceDef>, ServeError> {
    let arr = field(obj, key)?
        .as_arr()
        .ok_or_else(|| ServeError::BadRequest(format!("field {key:?} must be an array")))?;
    if arr.is_empty() {
        return Err(ServeError::BadRequest(format!(
            "field {key:?} must name at least one service"
        )));
    }
    arr.iter().map(ServiceDef::from_json).collect()
}

pub(crate) fn services_json(services: &[ServiceDef]) -> Json {
    Json::Arr(services.iter().map(ServiceDef::to_json).collect())
}

/// Parses the optional `objective` field (`"weighted-min"` default).
pub(crate) fn objective_field(obj: &Json) -> Result<MixObjective, ServeError> {
    match obj.get("objective").and_then(Json::as_str) {
        None => Ok(MixObjective::WeightedMin),
        Some("weighted-min") => Ok(MixObjective::WeightedMin),
        Some("weighted-sum") => Ok(MixObjective::WeightedSum),
        Some(other) => Err(ServeError::BadRequest(format!(
            "unknown objective {other:?} (want \"weighted-min\" or \"weighted-sum\")"
        ))),
    }
}

/// Per-tenant session policy carried in `register` frames and journaled
/// for resume. Every field has a default, so `{}` is a valid config.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionConfig {
    /// Forecast-drift trigger threshold (relative).
    pub drift_threshold: f64,
    /// Hysteresis: consecutive firing ticks before a round runs.
    pub min_sustained: u64,
    /// Hysteresis: quiet ticks after a round.
    pub cooldown_ticks: u64,
    /// Demand-forecaster EMA factor, `(0, 1]`.
    pub demand_alpha: f64,
    /// Execution-estimator EMA factor, `(0, 1]`.
    pub wapp_alpha: f64,
    /// Demand multiplier when sizing revisions.
    pub headroom: f64,
    /// Disruption budget per revision round (node-level changes).
    pub max_changes: u64,
    /// GoDiet launch failure-injection probability, `[0, 1)`.
    pub failure_probability: f64,
    /// Seed of the deterministic failure injection.
    pub failure_seed: u64,
}

impl Default for SessionConfig {
    fn default() -> Self {
        Self {
            drift_threshold: 0.2,
            min_sustained: 2,
            cooldown_ticks: 2,
            demand_alpha: 1.0,
            wapp_alpha: 0.3,
            headroom: 1.0,
            max_changes: 20,
            failure_probability: 0.0,
            failure_seed: 0,
        }
    }
}

impl SessionConfig {
    pub(crate) fn to_json(&self) -> Json {
        Json::obj(vec![
            ("drift_threshold", Json::num(self.drift_threshold)),
            ("min_sustained", Json::num(self.min_sustained as f64)),
            ("cooldown_ticks", Json::num(self.cooldown_ticks as f64)),
            ("demand_alpha", Json::num(self.demand_alpha)),
            ("wapp_alpha", Json::num(self.wapp_alpha)),
            ("headroom", Json::num(self.headroom)),
            ("max_changes", Json::num(self.max_changes as f64)),
            ("failure_probability", Json::num(self.failure_probability)),
            ("failure_seed", Json::num(self.failure_seed as f64)),
        ])
    }

    /// Parses a config object; absent fields keep their defaults.
    pub(crate) fn from_json(v: &Json) -> Result<SessionConfig, ServeError> {
        let d = SessionConfig::default();
        let num = |key: &str, default: f64| -> Result<f64, ServeError> {
            match v.get(key) {
                None => Ok(default),
                Some(j) => j.as_f64().ok_or_else(|| {
                    ServeError::BadRequest(format!("config field {key:?} must be a number"))
                }),
            }
        };
        let cfg = SessionConfig {
            drift_threshold: num("drift_threshold", d.drift_threshold)?,
            min_sustained: num("min_sustained", d.min_sustained as f64)? as u64,
            cooldown_ticks: num("cooldown_ticks", d.cooldown_ticks as f64)? as u64,
            demand_alpha: num("demand_alpha", d.demand_alpha)?,
            wapp_alpha: num("wapp_alpha", d.wapp_alpha)?,
            headroom: num("headroom", d.headroom)?,
            max_changes: num("max_changes", d.max_changes as f64)? as u64,
            failure_probability: num("failure_probability", d.failure_probability)?,
            failure_seed: num("failure_seed", d.failure_seed as f64)? as u64,
        };
        if !(cfg.demand_alpha > 0.0 && cfg.demand_alpha <= 1.0) {
            return Err(ServeError::BadRequest(format!(
                "config field \"demand_alpha\" must be in (0, 1], got {}",
                cfg.demand_alpha
            )));
        }
        if !(cfg.wapp_alpha > 0.0 && cfg.wapp_alpha <= 1.0) {
            return Err(ServeError::BadRequest(format!(
                "config field \"wapp_alpha\" must be in (0, 1], got {}",
                cfg.wapp_alpha
            )));
        }
        if !(0.0..1.0).contains(&cfg.failure_probability) {
            return Err(ServeError::BadRequest(format!(
                "config field \"failure_probability\" must be in [0, 1), got {}",
                cfg.failure_probability
            )));
        }
        if !(cfg.drift_threshold.is_finite() && cfg.drift_threshold > 0.0) {
            return Err(ServeError::BadRequest(format!(
                "config field \"drift_threshold\" must be positive, got {}",
                cfg.drift_threshold
            )));
        }
        if !(cfg.headroom.is_finite() && cfg.headroom > 0.0) {
            return Err(ServeError::BadRequest(format!(
                "config field \"headroom\" must be positive, got {}",
                cfg.headroom
            )));
        }
        if cfg.max_changes == 0 {
            return Err(ServeError::BadRequest(
                "config field \"max_changes\" must be at least 1".into(),
            ));
        }
        Ok(cfg)
    }
}

/// Model evaluation of a (planned or running) deployment, as returned
/// by `plan`, `register`, and `status`.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanSummary {
    /// Completed-mix throughput (req/s).
    pub rho: f64,
    /// Per-service throughput (req/s).
    pub rho_service: Vec<f64>,
    /// Server count.
    pub servers: u64,
    /// Agent count.
    pub agents: u64,
    /// Servers assigned to each service.
    pub per_service_servers: Vec<u64>,
}

impl PlanSummary {
    pub(crate) fn to_json(&self) -> Json {
        Json::obj(vec![
            ("rho", Json::num(self.rho)),
            ("rho_service", num_array_json(&self.rho_service)),
            ("servers", Json::num(self.servers as f64)),
            ("agents", Json::num(self.agents as f64)),
            (
                "per_service_servers",
                Json::Arr(
                    self.per_service_servers
                        .iter()
                        .map(|&n| Json::num(n as f64))
                        .collect(),
                ),
            ),
        ])
    }

    pub(crate) fn from_json(v: &Json) -> Result<PlanSummary, ServeError> {
        Ok(PlanSummary {
            rho: f64_field(v, "rho")?,
            rho_service: f64_array(v, "rho_service")?,
            servers: u64_field(v, "servers")?,
            agents: u64_field(v, "agents")?,
            per_service_servers: f64_array(v, "per_service_servers")?
                .into_iter()
                .map(|n| n as u64)
                .collect(),
        })
    }
}

/// One executed migration round, as reported over the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct MigrationSummary {
    /// 1-based migration number within the session.
    pub seq: u64,
    /// The tick at which it ran (0 for operator `migrate` rounds
    /// between ticks).
    pub tick: u64,
    /// Why the round fired.
    pub reason: String,
    /// Tree-level changes (added/removed/re-roled/reparented nodes).
    pub changes: u64,
    /// Servers reinstalled for another service.
    pub reassigned: u64,
    /// Failed launches healed by spare substitution.
    pub substitutions: u64,
    /// Stages of the migration script.
    pub stages: u64,
    /// Wall-clock makespan of the scripted migration (model time, s).
    pub makespan_s: f64,
    /// Servers after the migration.
    pub servers_after: u64,
    /// Model throughput after the migration (req/s).
    pub rho_after: f64,
}

impl MigrationSummary {
    pub(crate) fn to_json(&self) -> Json {
        Json::obj(vec![
            ("seq", Json::num(self.seq as f64)),
            ("tick", Json::num(self.tick as f64)),
            ("reason", Json::str(&self.reason)),
            ("changes", Json::num(self.changes as f64)),
            ("reassigned", Json::num(self.reassigned as f64)),
            ("substitutions", Json::num(self.substitutions as f64)),
            ("stages", Json::num(self.stages as f64)),
            ("makespan_s", Json::num(self.makespan_s)),
            ("servers_after", Json::num(self.servers_after as f64)),
            ("rho_after", Json::num(self.rho_after)),
        ])
    }

    pub(crate) fn from_json(v: &Json) -> Result<MigrationSummary, ServeError> {
        Ok(MigrationSummary {
            seq: u64_field(v, "seq")?,
            tick: u64_field(v, "tick")?,
            reason: str_field(v, "reason")?,
            changes: u64_field(v, "changes")?,
            reassigned: u64_field(v, "reassigned")?,
            substitutions: u64_field(v, "substitutions")?,
            stages: u64_field(v, "stages")?,
            makespan_s: f64_field(v, "makespan_s")?,
            servers_after: u64_field(v, "servers_after")?,
            rho_after: f64_field(v, "rho_after")?,
        })
    }
}

/// Result of one `observe` tick.
#[derive(Debug, Clone, PartialEq)]
pub struct TickOutcome {
    /// The tenant's tick counter after this observation.
    pub tick: u64,
    /// The migration this tick executed, if any.
    pub migration: Option<MigrationSummary>,
    /// Corrupt samples dropped so far (session total).
    pub rejected_samples: u64,
    /// Per-service demand forecast after this observation.
    pub forecast: Vec<f64>,
}

impl TickOutcome {
    pub(crate) fn to_json(&self) -> Json {
        Json::obj(vec![
            ("tick", Json::num(self.tick as f64)),
            ("migrated", Json::Bool(self.migration.is_some())),
            (
                "migration",
                self.migration
                    .as_ref()
                    .map_or(Json::Null, MigrationSummary::to_json),
            ),
            ("rejected_samples", Json::num(self.rejected_samples as f64)),
            ("forecast", num_array_json(&self.forecast)),
        ])
    }

    pub(crate) fn from_json(v: &Json) -> Result<TickOutcome, ServeError> {
        let migration = match field(v, "migration")? {
            Json::Null => None,
            m => Some(MigrationSummary::from_json(m)?),
        };
        Ok(TickOutcome {
            tick: u64_field(v, "tick")?,
            migration,
            rejected_samples: u64_field(v, "rejected_samples")?,
            forecast: f64_array(v, "forecast")?,
        })
    }
}

/// A dry-run revision: what `migrate` would do, without doing it.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplanPreview {
    /// Total disruptions (tree changes + reinstalls).
    pub changes: u64,
    /// Nodes added by the diff.
    pub added: u64,
    /// Nodes removed by the diff.
    pub removed: u64,
    /// Nodes whose role changes.
    pub reroled: u64,
    /// Nodes moved to a new parent (same role).
    pub reparented: u64,
    /// Servers reinstalled for another service.
    pub reassigned: u64,
    /// Model throughput of the revised deployment (req/s).
    pub rho: f64,
    /// Per-service throughput of the revised deployment.
    pub rho_service: Vec<f64>,
}

impl ReplanPreview {
    pub(crate) fn to_json(&self) -> Json {
        Json::obj(vec![
            ("changes", Json::num(self.changes as f64)),
            ("added", Json::num(self.added as f64)),
            ("removed", Json::num(self.removed as f64)),
            ("reroled", Json::num(self.reroled as f64)),
            ("reparented", Json::num(self.reparented as f64)),
            ("reassigned", Json::num(self.reassigned as f64)),
            ("rho", Json::num(self.rho)),
            ("rho_service", num_array_json(&self.rho_service)),
        ])
    }

    pub(crate) fn from_json(v: &Json) -> Result<ReplanPreview, ServeError> {
        Ok(ReplanPreview {
            changes: u64_field(v, "changes")?,
            added: u64_field(v, "added")?,
            removed: u64_field(v, "removed")?,
            reroled: u64_field(v, "reroled")?,
            reparented: u64_field(v, "reparented")?,
            reassigned: u64_field(v, "reassigned")?,
            rho: f64_field(v, "rho")?,
            rho_service: f64_array(v, "rho_service")?,
        })
    }
}

/// One tenant's live counters and model state.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantStatus {
    /// Tenant id.
    pub tenant: String,
    /// Catalog platform the session deploys on.
    pub platform: String,
    /// Ticks observed.
    pub ticks: u64,
    /// Replan rounds run (including no-op rounds).
    pub replans: u64,
    /// Replan rounds that started from warm incremental-engine state
    /// instead of a cold rebuild (0 when `warm_start` is off).
    pub warm_replans: u64,
    /// Migrations executed.
    pub migrations: u64,
    /// Corrupt samples dropped.
    pub rejected_samples: u64,
    /// Current deployment summary.
    pub plan: PlanSummary,
    /// Per-service demand forecast.
    pub forecast: Vec<f64>,
}

impl TenantStatus {
    pub(crate) fn to_json(&self) -> Json {
        Json::obj(vec![
            ("tenant", Json::str(&self.tenant)),
            ("platform", Json::str(&self.platform)),
            ("ticks", Json::num(self.ticks as f64)),
            ("replans", Json::num(self.replans as f64)),
            ("warm_replans", Json::num(self.warm_replans as f64)),
            ("migrations", Json::num(self.migrations as f64)),
            ("rejected_samples", Json::num(self.rejected_samples as f64)),
            ("plan", self.plan.to_json()),
            ("forecast", num_array_json(&self.forecast)),
        ])
    }

    pub(crate) fn from_json(v: &Json) -> Result<TenantStatus, ServeError> {
        Ok(TenantStatus {
            tenant: str_field(v, "tenant")?,
            platform: str_field(v, "platform")?,
            ticks: u64_field(v, "ticks")?,
            replans: u64_field(v, "replans")?,
            warm_replans: u64_field(v, "warm_replans")?,
            migrations: u64_field(v, "migrations")?,
            rejected_samples: u64_field(v, "rejected_samples")?,
            plan: PlanSummary::from_json(field(v, "plan")?)?,
            forecast: f64_array(v, "forecast")?,
        })
    }
}

/// The daemon-level `status` result.
#[derive(Debug, Clone, PartialEq)]
pub struct DaemonStatus {
    /// Names of the hosted (shared, read-only) platform catalogs.
    pub platforms: Vec<String>,
    /// Every live tenant session.
    pub tenants: Vec<TenantStatus>,
    /// Journals that failed to resume at daemon start:
    /// `(tenant, code, message)`.
    pub resume_errors: Vec<(String, String, String)>,
    /// Counters of the shared cross-tenant plan cache.
    pub cache: CacheStats,
}

impl CacheStats {
    pub(crate) fn to_json(&self) -> Json {
        Json::obj(vec![
            ("capacity", Json::num(self.capacity as f64)),
            ("entries", Json::num(self.entries as f64)),
            ("exact_hits", Json::num(self.exact_hits as f64)),
            ("near_hits", Json::num(self.near_hits as f64)),
            ("misses", Json::num(self.misses as f64)),
            ("insertions", Json::num(self.insertions as f64)),
        ])
    }

    pub(crate) fn from_json(v: &Json) -> Result<CacheStats, ServeError> {
        Ok(CacheStats {
            capacity: u64_field(v, "capacity")?,
            entries: u64_field(v, "entries")?,
            exact_hits: u64_field(v, "exact_hits")?,
            near_hits: u64_field(v, "near_hits")?,
            misses: u64_field(v, "misses")?,
            insertions: u64_field(v, "insertions")?,
        })
    }
}

impl DaemonStatus {
    pub(crate) fn to_json(&self) -> Json {
        Json::obj(vec![
            (
                "platforms",
                Json::Arr(self.platforms.iter().map(Json::str).collect()),
            ),
            (
                "tenants",
                Json::Arr(self.tenants.iter().map(TenantStatus::to_json).collect()),
            ),
            (
                "resume_errors",
                Json::Arr(
                    self.resume_errors
                        .iter()
                        .map(|(tenant, code, message)| {
                            Json::obj(vec![
                                ("tenant", Json::str(tenant)),
                                ("code", Json::str(code)),
                                ("message", Json::str(message)),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("cache", self.cache.to_json()),
        ])
    }

    pub(crate) fn from_json(v: &Json) -> Result<DaemonStatus, ServeError> {
        let platforms = field(v, "platforms")?
            .as_arr()
            .ok_or_else(|| ServeError::BadRequest("\"platforms\" must be an array".into()))?
            .iter()
            .map(|p| {
                p.as_str()
                    .map(str::to_string)
                    .ok_or_else(|| ServeError::BadRequest("platform names are strings".into()))
            })
            .collect::<Result<_, _>>()?;
        let tenants = field(v, "tenants")?
            .as_arr()
            .ok_or_else(|| ServeError::BadRequest("\"tenants\" must be an array".into()))?
            .iter()
            .map(TenantStatus::from_json)
            .collect::<Result<_, _>>()?;
        let resume_errors = field(v, "resume_errors")?
            .as_arr()
            .ok_or_else(|| ServeError::BadRequest("\"resume_errors\" must be an array".into()))?
            .iter()
            .map(|e| {
                Ok((
                    str_field(e, "tenant")?,
                    str_field(e, "code")?,
                    str_field(e, "message")?,
                ))
            })
            .collect::<Result<_, ServeError>>()?;
        Ok(DaemonStatus {
            platforms,
            tenants,
            resume_errors,
            cache: CacheStats::from_json(field(v, "cache")?)?,
        })
    }
}

/// Parses the optional `executions` array of an `observe` frame.
pub(crate) fn executions_field(obj: &Json) -> Result<Vec<ExecutionSample>, ServeError> {
    let Some(v) = obj.get("executions") else {
        return Ok(Vec::new());
    };
    let arr = v
        .as_arr()
        .ok_or_else(|| ServeError::BadRequest("field \"executions\" must be an array".into()))?;
    arr.iter()
        .map(|e| {
            Ok(ExecutionSample {
                service: u64_field(e, "service")? as usize,
                duration: Seconds(f64_field(e, "duration_s")?),
                power: MflopRate(f64_field(e, "power_mflops")?),
            })
        })
        .collect()
}

/// Encodes execution samples for a frame or journal record.
pub(crate) fn executions_json(executions: &[ExecutionSample]) -> Json {
    Json::Arr(
        executions
            .iter()
            .map(|e| {
                Json::obj(vec![
                    ("service", Json::num(e.service as f64)),
                    ("duration_s", Json::num(e.duration.value())),
                    ("power_mflops", Json::num(e.power.value())),
                ])
            })
            .collect(),
    )
}

/// A decoded response frame: the echoed request id, and either the
/// `result` payload or the error's `(code, message)`.
pub type DecodedResponse = (u64, Result<Json, (ErrorCode, String)>);

/// Decodes a raw response line into `(id, Result<result, (code, message)>)`.
///
/// # Errors
/// [`ServeError::BadFrame`] when the line is not a response frame.
pub fn decode_response(line: &str) -> Result<DecodedResponse, ServeError> {
    let v = Json::parse(line).map_err(ServeError::BadFrame)?;
    let id = v.get("id").and_then(Json::as_f64).unwrap_or(0.0) as u64;
    let ok = v
        .get("ok")
        .and_then(Json::as_bool)
        .ok_or_else(|| ServeError::BadFrame("response has no boolean \"ok\"".into()))?;
    if ok {
        let result = v
            .get("result")
            .cloned()
            .ok_or_else(|| ServeError::BadFrame("ok response has no \"result\"".into()))?;
        Ok((id, Ok(result)))
    } else {
        let error = v
            .get("error")
            .ok_or_else(|| ServeError::BadFrame("error response has no \"error\"".into()))?;
        let code = error
            .get("code")
            .and_then(Json::as_str)
            .and_then(ErrorCode::from_wire)
            .unwrap_or(ErrorCode::BadFrame);
        let message = error
            .get("message")
            .and_then(Json::as_str)
            .unwrap_or("")
            .to_string();
        Ok((id, Err((code, message))))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip() {
        let req = Request {
            id: 7,
            method: "observe".into(),
            params: Json::obj(vec![
                ("tenant", Json::str("t1")),
                ("rates", num_array_json(&[1.0, 0.5])),
            ]),
        };
        assert_eq!(Request::parse(&req.encode()).unwrap(), req);
    }

    #[test]
    fn response_roundtrip() {
        let line = ok_response(3, Json::obj(vec![("rho", Json::num(12.5))]));
        let (id, result) = decode_response(&line).unwrap();
        assert_eq!(id, 3);
        assert_eq!(
            result.unwrap().get("rho").and_then(Json::as_f64),
            Some(12.5)
        );

        let line = err_response(4, &ServeError::UnknownTenant("t9".into()));
        let (id, result) = decode_response(&line).unwrap();
        assert_eq!(id, 4);
        let (code, message) = result.unwrap_err();
        assert_eq!(code, ErrorCode::UnknownTenant);
        assert!(message.contains("t9"));
    }

    #[test]
    fn demand_null_means_unbounded_both_ways() {
        let obj = Json::parse("{\"demand\":[1.5,null,0.0]}").unwrap();
        let demand = demand_field(&obj, "demand").unwrap();
        assert_eq!(demand, vec![1.5, f64::INFINITY, 0.0]);
        assert_eq!(demand_json(&demand).to_string(), "[1.5,null,0]");
    }

    #[test]
    fn session_config_defaults_and_validation() {
        let cfg = SessionConfig::from_json(&Json::parse("{}").unwrap()).unwrap();
        assert_eq!(cfg, SessionConfig::default());
        let back = SessionConfig::from_json(&cfg.to_json()).unwrap();
        assert_eq!(back, cfg);
        for bad in [
            "{\"demand_alpha\":0}",
            "{\"wapp_alpha\":1.5}",
            "{\"failure_probability\":1.0}",
            "{\"drift_threshold\":-1}",
            "{\"max_changes\":0}",
            "{\"headroom\":\"lots\"}",
        ] {
            let parsed = SessionConfig::from_json(&Json::parse(bad).unwrap());
            assert!(parsed.is_err(), "{bad} must be rejected");
        }
    }

    #[test]
    fn summaries_roundtrip() {
        let m = MigrationSummary {
            seq: 2,
            tick: 14,
            reason: "forecast drift".into(),
            changes: 5,
            reassigned: 1,
            substitutions: 1,
            stages: 3,
            makespan_s: 1.5,
            servers_after: 18,
            rho_after: 22.25,
        };
        assert_eq!(MigrationSummary::from_json(&m.to_json()).unwrap(), m);

        let t = TickOutcome {
            tick: 14,
            migration: Some(m),
            rejected_samples: 0,
            forecast: vec![1.0, 0.5],
        };
        assert_eq!(TickOutcome::from_json(&t.to_json()).unwrap(), t);

        let p = PlanSummary {
            rho: 10.0,
            rho_service: vec![6.0, 4.0],
            servers: 12,
            agents: 2,
            per_service_servers: vec![7, 5],
        };
        assert_eq!(PlanSummary::from_json(&p.to_json()).unwrap(), p);

        let r = ReplanPreview {
            changes: 4,
            added: 2,
            removed: 0,
            reroled: 1,
            reparented: 0,
            reassigned: 1,
            rho: 11.0,
            rho_service: vec![6.0, 5.0],
        };
        assert_eq!(ReplanPreview::from_json(&r.to_json()).unwrap(), r);
    }

    #[test]
    fn status_frames_roundtrip_counters() {
        let tenant = TenantStatus {
            tenant: "acme".into(),
            platform: "lyon30".into(),
            ticks: 34,
            replans: 9,
            warm_replans: 7,
            migrations: 2,
            rejected_samples: 1,
            plan: PlanSummary {
                rho: 10.0,
                rho_service: vec![6.0, 4.0],
                servers: 12,
                agents: 2,
                per_service_servers: vec![7, 5],
            },
            forecast: vec![1.0, 0.5],
        };
        assert_eq!(TenantStatus::from_json(&tenant.to_json()).unwrap(), tenant);

        let daemon = DaemonStatus {
            platforms: vec!["lyon30".into()],
            tenants: vec![tenant],
            resume_errors: vec![("stale".into(), "replay_divergence".into(), "rho".into())],
            cache: CacheStats {
                capacity: 64,
                entries: 3,
                exact_hits: 5,
                near_hits: 2,
                misses: 4,
                insertions: 4,
            },
        };
        assert_eq!(DaemonStatus::from_json(&daemon.to_json()).unwrap(), daemon);
    }

    #[test]
    fn malformed_frames_are_typed_errors() {
        assert!(matches!(
            Request::parse("not json"),
            Err(ServeError::BadFrame(_))
        ));
        assert!(matches!(
            Request::parse("{\"id\":1}"),
            Err(ServeError::BadFrame(_))
        ));
        let obj = Json::parse("{\"demand\":[true]}").unwrap();
        assert!(matches!(
            demand_field(&obj, "demand"),
            Err(ServeError::BadRequest(_))
        ));
    }
}
