//! A minimal JSON value: parser and writer.
//!
//! The build environment has no crates.io access, so — like the
//! hand-rolled parser in `adept-bench`'s CI gate — the wire protocol
//! carries its own ~300-line JSON implementation instead of `serde`.
//! Only what the protocol needs: the six JSON types, shortest-roundtrip
//! number formatting (Rust's `f64` `Display`), and string escapes. Two
//! deliberate conventions:
//!
//! * **Non-finite numbers serialize as `null`** — JSON has no `Infinity`,
//!   and the one place the protocol carries an unbounded value (a demand
//!   rate) documents `null` as "unbounded".
//! * **Object key order is preserved** (a `Vec` of pairs, not a map), so
//!   journals are byte-stable across a write/read/write round trip.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always an `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object constructor from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// String constructor.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Number constructor; non-finite values become [`Json::Null`]
    /// (the wire convention for "unbounded").
    pub fn num(v: f64) -> Json {
        if v.is_finite() {
            Json::Num(v)
        } else {
            Json::Null
        }
    }

    /// Looks up a key in an object. `None` when the value is not an
    /// object or the key is absent.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// True for `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// Parses one JSON document, requiring it to span the whole input
    /// (trailing whitespace allowed).
    ///
    /// # Errors
    /// A human-readable description with a byte offset.
    pub fn parse(input: &str) -> Result<Json, String> {
        let bytes = input.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(value)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => write!(f, "null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(v) if v.is_finite() => write!(f, "{v}"),
            Json::Num(_) => write!(f, "null"), // non-finite: wire "unbounded"
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                write!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
            Json::Obj(pairs) => {
                write!(f, "{{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write_escaped(f, k)?;
                    write!(f, ":{v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    write!(f, "\"")?;
    for c in s.chars() {
        match c {
            '"' => write!(f, "\\\"")?,
            '\\' => write!(f, "\\\\")?,
            '\n' => write!(f, "\\n")?,
            '\r' => write!(f, "\\r")?,
            '\t' => write!(f, "\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    write!(f, "\"")
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}", pos = *pos));
                }
                *pos += 1;
                let value = parse_value(bytes, pos)?;
                pairs.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(pairs));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}", pos = *pos))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}", pos = *pos));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                        let code = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                        // Surrogate pairs are not needed by this protocol;
                        // lone surrogates become the replacement character.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}", pos = *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so this is safe).
                let start = *pos;
                *pos += 1;
                while *pos < bytes.len() && (bytes[*pos] & 0xC0) == 0x80 {
                    *pos += 1;
                }
                out.push_str(std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?);
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("invalid number {text:?} at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_values() {
        let cases = [
            "null",
            "true",
            "false",
            "0",
            "-1.5",
            "1e10",
            "\"hello\"",
            "[]",
            "[1,2,3]",
            "{\"a\":1,\"b\":[true,null]}",
        ];
        for case in cases {
            let v = Json::parse(case).expect(case);
            let back = Json::parse(&v.to_string()).expect(case);
            assert_eq!(v, back, "{case}");
        }
    }

    #[test]
    fn float_display_roundtrips_exactly() {
        // Journal replay depends on rates surviving a write/read cycle
        // bit-exactly; Rust's f64 Display is shortest-roundtrip.
        for &v in &[1.2, 0.1 + 0.2, 1.0 / 3.0, 59.582, f64::MIN_POSITIVE] {
            let s = Json::Num(v).to_string();
            let Json::Num(back) = Json::parse(&s).unwrap() else {
                panic!("not a number: {s}");
            };
            assert_eq!(v.to_bits(), back.to_bits(), "{v} -> {s}");
        }
    }

    #[test]
    fn non_finite_numbers_serialize_as_null() {
        assert_eq!(Json::num(f64::INFINITY), Json::Null);
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
    }

    #[test]
    fn escapes_strings() {
        let s = "line\nbreak \"quoted\" back\\slash";
        let v = Json::Str(s.to_string());
        assert_eq!(Json::parse(&v.to_string()).unwrap(), v);
    }

    #[test]
    fn rejects_garbage() {
        for bad in ["", "{", "[1,", "{\"a\"}", "tru", "1.2.3", "\"unterminated"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn object_lookup_and_accessors() {
        let v = Json::parse("{\"rho\":12.5,\"name\":\"t1\",\"ok\":true,\"xs\":[1]}").unwrap();
        assert_eq!(v.get("rho").and_then(Json::as_f64), Some(12.5));
        assert_eq!(v.get("name").and_then(Json::as_str), Some("t1"));
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(
            v.get("xs").and_then(Json::as_arr).map(<[Json]>::len),
            Some(1)
        );
        assert!(v.get("absent").is_none());
    }
}
