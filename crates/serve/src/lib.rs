//! Planner-as-a-service: a resident, multi-tenant deployment-planning
//! daemon.
//!
//! Everything below this crate plans and revises middleware deployments
//! as a *library*: one process, one platform borrow, one control loop.
//! This crate turns that library into a **service**: a daemon that
//! hosts one autonomic [`Controller`](adept_control::Controller) per
//! tenant deployment, concurrently, over shared read-only platform
//! catalogs, and exposes the whole lifecycle over a line-delimited JSON
//! wire protocol:
//!
//! | frame | does |
//! |---|---|
//! | `plan` | stateless: size a deployment for a mix on a catalog platform |
//! | `register` | claim a tenant id, plan + "deploy", start its control loop |
//! | `observe` | feed one control interval; may migrate |
//! | `replan` | dry-run: what a migration toward a demand would change |
//! | `migrate` | operator-forced replan round |
//! | `drain` | end the session cleanly, archive its journal |
//! | `status` | catalogs, live tenants, resume errors |
//! | `shutdown` | stop the daemon (journals stay) |
//!
//! The full frame-by-frame contract (fields, error codes, worked JSON
//! examples) is in `docs/WIRE_API.md`; the operator's view (startup,
//! tenant lifecycle, journal recovery, capacity) is in
//! `docs/OPERATIONS.md`.
//!
//! # Durability: write-ahead journals + deterministic replay
//!
//! Every tenant session appends its inputs (observed ticks, operator
//! replans) to an append-only JSONL journal *before* consuming them,
//! and checkpoints every executed migration. Because the entire stack
//! underneath — planner, online reviser, GoDiet's seeded failure
//! injection — is deterministic, a restarted daemon rebuilds every
//! session by replaying its journal; no planner state is ever
//! serialized. Replay cross-checks the journaled migration checkpoints
//! and refuses to resume a journal whose history the code cannot
//! reproduce ([`JournalError::ReplayDivergence`]), a journal whose
//! platform changed shape underneath
//! ([`JournalError::FingerprintMismatch`], via
//! [`Platform::fingerprint`](adept_platform::Platform::fingerprint)),
//! and interior corruption — while tolerating exactly the damage a
//! crash can cause: a truncated final line, one unacknowledged tick.
//!
//! # Concurrency model
//!
//! Plain blocking sockets, one thread per connection, short read
//! timeouts to notice shutdown — no async runtime. Tenants are
//! independent: each session lives behind its own mutex, so only
//! requests for the *same* tenant serialize. Platform catalogs are
//! `Arc<Platform>`, shared read-only by every session; this is what
//! forced [`Controller`](adept_control::Controller) to be `Send` (owned
//! `Arc` platform, `Box<dyn Revise + Send>` reviser), which the
//! assertions below pin down.
//!
//! # Warm replanning + the shared plan cache
//!
//! Two layers accelerate the *search* without ever changing an answer:
//! sessions thread warm incremental-engine state across replan rounds
//! ([`ControllerConfig::warm_start`](adept_control::ControllerConfig),
//! the daemon's [`ServeConfig::warm_start`] flag), and one [`PlanCache`]
//! — shared by every tenant — answers repeated `plan`/`register`
//! questions from canonical cached results (exact tier, bit-identical)
//! or seeds a revision from a near neighbor (near tier, `plan` only).
//! Replay bypasses both concerns: resume depends only on the journal,
//! and warm answers are bit-equal to cold ones, so restart determinism
//! is preserved — the restart tests assert it.
//!
//! [`JournalError::ReplayDivergence`]: crate::JournalError::ReplayDivergence
//! [`JournalError::FingerprintMismatch`]: crate::JournalError::FingerprintMismatch

#![forbid(unsafe_code)]
pub mod cache;
pub mod client;
pub mod daemon;
pub mod error;
pub mod journal;
pub mod json;
pub mod session;
pub mod wire;

pub use cache::{CacheStats, PlanCache, DEFAULT_PLAN_CACHE_CAPACITY};
pub use client::{RemoteError, ServeClient};
pub use daemon::{Daemon, DaemonHandle, ServeConfig};
pub use error::{ErrorCode, JournalError, ServeError};
pub use journal::{Journal, Record};
pub use json::Json;
pub use session::TenantSession;
pub use wire::{
    DaemonStatus, MigrationSummary, PlanSummary, ReplanPreview, Request, ServiceDef, SessionConfig,
    TenantStatus, TickOutcome,
};

/// Re-export: the execution-sample type `observe` frames carry.
pub use adept_control::controller::ExecutionSample;

#[cfg(test)]
mod tests {
    use super::*;

    /// The daemon moves sessions (and the controllers inside them)
    /// across threads; every hosted type must stay `Send`.
    #[test]
    fn hosted_types_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<TenantSession>();
        assert_send::<adept_control::Controller>();
        assert_send::<ServeClient>();
        assert_send::<DaemonHandle>();
    }
}
