//! The shared cross-tenant plan cache.
//!
//! Every tenant on one daemon plans against the same read-only platform
//! catalogs, and fleets of tenants tend to ask near-identical questions
//! (same mix, demand vectors a few percent apart). [`PlanCache`] is one
//! LRU, shared across every session and connection under a single lock,
//! keyed by (platform fingerprint, mix signature, objective, quantized
//! demand vector). It serves two tiers:
//!
//! * **Exact tier** — the stored demand vector bit-equals the query's.
//!   Because [`MixPlanner`](adept_core::planner::MixPlanner) is
//!   deterministic, returning the cached result is *bit-identical* to
//!   recomputing it, so exact hits are safe everywhere — including the
//!   journaled `register` answer path, whose replay recomputes cold and
//!   must land on the same plan.
//! * **Near tier** — no exact entry, but a neighbor within
//!   `NEAR_RADIUS` relative distance exists. The neighbor's plan is
//!   served as a *revision starting point* (the caller revises it
//!   toward the actual demand), never as an answer. Only the stateless
//!   `plan` endpoint uses this tier; journaled paths stay exact-only.
//!
//! Only canonical cold-computed planner results are ever inserted —
//! revised near-tier answers are not — so the cache can never drift
//! away from what the planner would say. Resume/replay bypasses the
//! cache entirely: replay correctness must not depend on what other
//! tenants planned since the journal was written.
//!
//! Memory bound: at most `capacity` entries, each one deployment plan +
//! assignment (O(servers) each), so the worst case is
//! `capacity × O(n)`. Operators size it via
//! [`ServeConfig::plan_cache_capacity`](crate::ServeConfig); `0`
//! disables caching outright.

use adept_core::planner::{MixObjective, MixPlan};
use adept_platform::Platform;
use adept_workload::ServiceMix;
use parking_lot::Mutex;

/// Default entry capacity of a daemon's plan cache.
pub const DEFAULT_PLAN_CACHE_CAPACITY: usize = 64;

/// Maximum symmetric relative per-service distance for a near-tier hit:
/// a neighbor further than this from the queried demand is a worse
/// starting point than the incumbent-free cold planner.
const NEAR_RADIUS: f64 = 0.5;

/// Geometric quantization step (~5% buckets) for the demand key used to
/// deduplicate insertions.
const QUANT_STEP: f64 = 0.05;

/// Counters and occupancy of a [`PlanCache`], as reported in the
/// daemon's `status` frame.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Configured entry capacity (`0` = caching disabled).
    pub capacity: u64,
    /// Entries currently held.
    pub entries: u64,
    /// Lookups answered bit-identically from a stored result.
    pub exact_hits: u64,
    /// Lookups that found a revision starting point within the
    /// near-tier radius.
    pub near_hits: u64,
    /// Lookups that found nothing usable.
    pub misses: u64,
    /// Canonical planner results stored (including replacements).
    pub insertions: u64,
}

/// Cache identity of a planning question, minus the demand vector.
///
/// The platform is identified by its structural
/// [`fingerprint`](Platform::fingerprint) — the same identity the
/// journal layer uses to refuse resuming on changed hardware — and the
/// mix by its exact share/`Wapp` bit patterns (service *names* are
/// deliberately excluded: they label reports, they never shape a plan).
#[derive(Debug, Clone, PartialEq)]
struct Key {
    fingerprint: u64,
    objective: MixObjective,
    /// `(share bits, wapp bits)` per mix service.
    mix: Vec<(u64, u64)>,
}

impl Key {
    fn of(platform: &Platform, mix: &ServiceMix, objective: MixObjective) -> Key {
        Key {
            fingerprint: platform.fingerprint(),
            objective,
            mix: (0..mix.len())
                .map(|j| {
                    (
                        mix.share(j).to_bits(),
                        mix.service(j).wapp.value().to_bits(),
                    )
                })
                .collect(),
        }
    }
}

struct Entry {
    key: Key,
    /// The exact demand rates the stored result was planned for.
    demand: Vec<f64>,
    /// Quantized demand — the insertion-dedup key.
    quantized: Vec<i64>,
    result: MixPlan,
    /// LRU clock value of the last touch.
    stamp: u64,
}

struct Inner {
    capacity: usize,
    clock: u64,
    entries: Vec<Entry>,
    exact_hits: u64,
    near_hits: u64,
    misses: u64,
    insertions: u64,
}

/// What a [`PlanCache::lookup`] found.
pub(crate) enum CacheLookup {
    /// A stored result for bit-identical inputs — safe to return as the
    /// answer on any path, journaled or not.
    Exact(Box<MixPlan>),
    /// A neighboring entry usable as a revision starting point. The
    /// caller must still search toward the actual demand.
    Near(Box<MixPlan>),
    /// Nothing usable; plan cold (and [`insert`](PlanCache::insert) the
    /// result).
    Miss,
}

/// The daemon-wide shared plan cache. One lock, many tenants: every
/// operation is a short critical section over at most `capacity`
/// entries, so contention is bounded by design.
#[derive(Debug)]
pub struct PlanCache {
    inner: Mutex<Inner>,
}

impl std::fmt::Debug for Inner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Inner")
            .field("capacity", &self.capacity)
            .field("entries", &self.entries.len())
            .finish_non_exhaustive()
    }
}

impl PlanCache {
    /// A cache holding at most `capacity` entries; `0` disables it
    /// (every lookup misses silently, every insert is dropped).
    pub fn new(capacity: usize) -> PlanCache {
        PlanCache {
            inner: Mutex::named(
                "serve.plan-cache",
                Inner {
                    capacity,
                    clock: 0,
                    entries: Vec::new(),
                    exact_hits: 0,
                    near_hits: 0,
                    misses: 0,
                    insertions: 0,
                },
            ),
        }
    }

    /// Looks up a planning question. `allow_near` enables the near tier
    /// — only ever pass `true` on paths whose answers are not journaled
    /// (the stateless `plan` endpoint).
    pub(crate) fn lookup(
        &self,
        platform: &Platform,
        mix: &ServiceMix,
        objective: MixObjective,
        demand: &[f64],
        allow_near: bool,
    ) -> CacheLookup {
        let mut inner = self.inner.lock();
        if inner.capacity == 0 {
            return CacheLookup::Miss;
        }
        let key = Key::of(platform, mix, objective);
        inner.clock += 1;
        let clock = inner.clock;

        if let Some(e) = inner
            .entries
            .iter_mut()
            .find(|e| e.key == key && bits_eq(&e.demand, demand))
        {
            e.stamp = clock;
            let result = Box::new(e.result.clone());
            inner.exact_hits += 1;
            return CacheLookup::Exact(result);
        }

        // Nearest neighbor under the same key: the entry minimizing the
        // worst per-service symmetric relative distance. Unbounded
        // demands never near-match — revising toward infinity from an
        // arbitrary neighbor is not an acceleration.
        if allow_near && demand.iter().all(|r| r.is_finite()) {
            let mut best: Option<(f64, usize)> = None;
            for (i, e) in inner.entries.iter().enumerate() {
                if e.key != key || !e.demand.iter().all(|r| r.is_finite()) {
                    continue;
                }
                let d = distance(&e.demand, demand);
                if d <= NEAR_RADIUS && best.is_none_or(|(bd, _)| d < bd) {
                    best = Some((d, i));
                }
            }
            if let Some((_, i)) = best {
                let e = &mut inner.entries[i];
                e.stamp = clock;
                let result = Box::new(e.result.clone());
                inner.near_hits += 1;
                return CacheLookup::Near(result);
            }
        }
        inner.misses += 1;
        CacheLookup::Miss
    }

    /// Stores a canonical (cold-computed) planner result. Entries whose
    /// quantized demand collides are replaced rather than duplicated;
    /// past `capacity`, the least recently used entry is evicted.
    pub(crate) fn insert(
        &self,
        platform: &Platform,
        mix: &ServiceMix,
        objective: MixObjective,
        demand: &[f64],
        result: &MixPlan,
    ) {
        let mut inner = self.inner.lock();
        if inner.capacity == 0 {
            return;
        }
        let key = Key::of(platform, mix, objective);
        let quantized: Vec<i64> = demand.iter().map(|&r| quantize(r)).collect();
        inner.clock += 1;
        inner.insertions += 1;
        let (clock, capacity) = (inner.clock, inner.capacity);
        if let Some(e) = inner
            .entries
            .iter_mut()
            .find(|e| e.key == key && e.quantized == quantized)
        {
            e.demand = demand.to_vec();
            e.result = result.clone();
            e.stamp = clock;
            return;
        }
        inner.entries.push(Entry {
            key,
            demand: demand.to_vec(),
            quantized,
            result: result.clone(),
            stamp: clock,
        });
        if inner.entries.len() > capacity {
            let lru = inner
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.stamp)
                .map(|(i, _)| i);
            if let Some(lru) = lru {
                inner.entries.swap_remove(lru);
            }
        }
    }

    /// A snapshot of the counters and occupancy.
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock();
        CacheStats {
            capacity: inner.capacity as u64,
            entries: inner.entries.len() as u64,
            exact_hits: inner.exact_hits,
            near_hits: inner.near_hits,
            misses: inner.misses,
            insertions: inner.insertions,
        }
    }
}

/// Bit-pattern equality of two demand vectors (distinguishes `0.0` from
/// `-0.0`; demand validation upstream guarantees no NaN reaches here).
fn bits_eq(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

/// Worst per-service symmetric relative distance between two finite
/// demand vectors (`infinity` on arity mismatch, so it never matches).
fn distance(a: &[f64], b: &[f64]) -> f64 {
    if a.len() != b.len() {
        return f64::INFINITY;
    }
    a.iter()
        .zip(b)
        .map(|(&x, &y)| {
            let scale = x.abs().max(y.abs());
            if scale == 0.0 {
                0.0
            } else {
                (x - y).abs() / scale
            }
        })
        .fold(0.0, f64::max)
}

/// Geometric demand bucket (~5% wide) for insertion dedup. Zero and
/// infinity get sentinel buckets of their own.
fn quantize(rate: f64) -> i64 {
    if !rate.is_finite() {
        return i64::MAX;
    }
    if rate <= 0.0 {
        return i64::MIN;
    }
    (rate.ln() / QUANT_STEP).round() as i64
}

#[cfg(test)]
mod tests {
    use super::*;
    use adept_core::planner::MixPlanner;
    use adept_platform::generator;
    use adept_workload::{Dgemm, MixDemand, ServiceMix};

    fn mix2() -> ServiceMix {
        ServiceMix::new(vec![
            (Dgemm::new(310).service(), 1.0),
            (Dgemm::new(1000).service(), 1.0),
        ])
    }

    fn plan_for(platform: &Platform, mix: &ServiceMix, demand: &[f64]) -> MixPlan {
        MixPlanner::default()
            .plan_mix(platform, mix, &MixDemand::targets(demand.to_vec()))
            .expect("platform fits")
    }

    #[test]
    fn exact_hit_returns_the_stored_result_bit_identically() {
        let platform = generator::lyon_cluster(20);
        let mix = mix2();
        let demand = [2.0, 0.3];
        let got = plan_for(&platform, &mix, &demand);
        let cache = PlanCache::new(8);
        cache.insert(&platform, &mix, MixObjective::WeightedMin, &demand, &got);

        let CacheLookup::Exact(hit) =
            cache.lookup(&platform, &mix, MixObjective::WeightedMin, &demand, false)
        else {
            panic!("bit-identical inputs must hit the exact tier");
        };
        assert!(hit.plan.structurally_eq(&got.plan));
        assert_eq!(hit.assignment, got.assignment);
        assert_eq!(hit.report.rho.to_bits(), got.report.rho.to_bits());
        assert_eq!(hit.objective_value.to_bits(), got.objective_value.to_bits());
        let stats = cache.stats();
        assert_eq!((stats.exact_hits, stats.misses), (1, 0));
    }

    #[test]
    fn near_tier_serves_neighbors_only_when_allowed() {
        let platform = generator::lyon_cluster(20);
        let mix = mix2();
        let got = plan_for(&platform, &mix, &[2.0, 0.3]);
        let cache = PlanCache::new(8);
        cache.insert(
            &platform,
            &mix,
            MixObjective::WeightedMin,
            &[2.0, 0.3],
            &got,
        );

        // 10% away: a near hit when allowed, a miss on exact-only paths.
        let query = [2.2, 0.33];
        assert!(matches!(
            cache.lookup(&platform, &mix, MixObjective::WeightedMin, &query, true),
            CacheLookup::Near(_)
        ));
        assert!(matches!(
            cache.lookup(&platform, &mix, MixObjective::WeightedMin, &query, false),
            CacheLookup::Miss
        ));
        // Far beyond the radius: always a miss.
        assert!(matches!(
            cache.lookup(
                &platform,
                &mix,
                MixObjective::WeightedMin,
                &[20.0, 3.0],
                true
            ),
            CacheLookup::Miss
        ));
        let stats = cache.stats();
        assert_eq!((stats.near_hits, stats.misses), (1, 2));
    }

    #[test]
    fn key_separates_platform_mix_and_objective() {
        let platform = generator::lyon_cluster(20);
        let other = generator::lyon_cluster(21);
        let mix = mix2();
        let got = plan_for(&platform, &mix, &[2.0, 0.3]);
        let cache = PlanCache::new(8);
        cache.insert(
            &platform,
            &mix,
            MixObjective::WeightedMin,
            &[2.0, 0.3],
            &got,
        );

        assert!(matches!(
            cache.lookup(&other, &mix, MixObjective::WeightedMin, &[2.0, 0.3], true),
            CacheLookup::Miss
        ));
        assert!(matches!(
            cache.lookup(
                &platform,
                &mix,
                MixObjective::WeightedSum,
                &[2.0, 0.3],
                true
            ),
            CacheLookup::Miss
        ));
        let heavier = ServiceMix::new(vec![
            (Dgemm::new(310).service(), 1.0),
            (Dgemm::new(1500).service(), 1.0),
        ]);
        assert!(matches!(
            cache.lookup(
                &platform,
                &heavier,
                MixObjective::WeightedMin,
                &[2.0, 0.3],
                true
            ),
            CacheLookup::Miss
        ));
    }

    #[test]
    fn lru_eviction_keeps_recently_touched_entries() {
        let platform = generator::lyon_cluster(20);
        let mix = mix2();
        let cache = PlanCache::new(2);
        let demands = [[1.0, 0.1], [2.0, 0.2], [4.0, 0.4]];
        let plans: Vec<MixPlan> = demands
            .iter()
            .map(|d| plan_for(&platform, &mix, d))
            .collect();
        cache.insert(
            &platform,
            &mix,
            MixObjective::WeightedMin,
            &demands[0],
            &plans[0],
        );
        cache.insert(
            &platform,
            &mix,
            MixObjective::WeightedMin,
            &demands[1],
            &plans[1],
        );
        // Touch the first entry, then overflow: the second is the LRU.
        assert!(matches!(
            cache.lookup(
                &platform,
                &mix,
                MixObjective::WeightedMin,
                &demands[0],
                false
            ),
            CacheLookup::Exact(_)
        ));
        cache.insert(
            &platform,
            &mix,
            MixObjective::WeightedMin,
            &demands[2],
            &plans[2],
        );
        assert_eq!(cache.stats().entries, 2);
        assert!(matches!(
            cache.lookup(
                &platform,
                &mix,
                MixObjective::WeightedMin,
                &demands[0],
                false
            ),
            CacheLookup::Exact(_)
        ));
        assert!(matches!(
            cache.lookup(
                &platform,
                &mix,
                MixObjective::WeightedMin,
                &demands[1],
                false
            ),
            CacheLookup::Miss
        ));
    }

    #[test]
    fn same_quantized_bucket_replaces_instead_of_duplicating() {
        let platform = generator::lyon_cluster(20);
        let mix = mix2();
        let cache = PlanCache::new(8);
        let got = plan_for(&platform, &mix, &[2.0, 0.3]);
        // Two demands within the ~5% quantization bucket.
        cache.insert(
            &platform,
            &mix,
            MixObjective::WeightedMin,
            &[2.0, 0.3],
            &got,
        );
        cache.insert(
            &platform,
            &mix,
            MixObjective::WeightedMin,
            &[2.01, 0.3],
            &got,
        );
        let stats = cache.stats();
        assert_eq!(stats.entries, 1, "bucket collisions replace");
        assert_eq!(stats.insertions, 2);
        // The replacement's exact demand is the live one.
        assert!(matches!(
            cache.lookup(
                &platform,
                &mix,
                MixObjective::WeightedMin,
                &[2.01, 0.3],
                false
            ),
            CacheLookup::Exact(_)
        ));
        assert!(matches!(
            cache.lookup(
                &platform,
                &mix,
                MixObjective::WeightedMin,
                &[2.0, 0.3],
                false
            ),
            CacheLookup::Miss
        ));
    }

    #[test]
    fn zero_capacity_disables_everything() {
        let platform = generator::lyon_cluster(20);
        let mix = mix2();
        let got = plan_for(&platform, &mix, &[2.0, 0.3]);
        let cache = PlanCache::new(0);
        cache.insert(
            &platform,
            &mix,
            MixObjective::WeightedMin,
            &[2.0, 0.3],
            &got,
        );
        assert!(matches!(
            cache.lookup(
                &platform,
                &mix,
                MixObjective::WeightedMin,
                &[2.0, 0.3],
                true
            ),
            CacheLookup::Miss
        ));
        assert_eq!(cache.stats(), CacheStats::default());
    }

    #[test]
    fn unbounded_demands_hit_exactly_but_never_near() {
        let platform = generator::lyon_cluster(20);
        let mix = mix2();
        let got = MixPlanner::default()
            .plan_mix(&platform, &mix, &MixDemand::unbounded(2))
            .expect("fits");
        let unbounded = [f64::INFINITY, f64::INFINITY];
        let cache = PlanCache::new(8);
        cache.insert(&platform, &mix, MixObjective::WeightedMin, &unbounded, &got);
        assert!(matches!(
            cache.lookup(&platform, &mix, MixObjective::WeightedMin, &unbounded, true),
            CacheLookup::Exact(_)
        ));
        assert!(matches!(
            cache.lookup(
                &platform,
                &mix,
                MixObjective::WeightedMin,
                &[5.0, 5.0],
                true
            ),
            CacheLookup::Miss
        ));
    }
}
