//! The serve-layer error taxonomy.
//!
//! Every error a request can hit — malformed frames, unknown tenants,
//! and **every library error underneath** ([`PlannerError`],
//! [`ReviseError`], [`DemandError`], [`DiffError`], [`DeployError`],
//! journal corruption) — maps to a [`ServeError`] with a stable wire
//! [`ErrorCode`], so a failing request is answered with a typed error
//! frame instead of a dropped connection. The codes are part of the
//! wire contract and documented in `docs/WIRE_API.md`.

use adept_control::ControlError;
use adept_core::planner::{PlannerError, ReviseError};
use adept_godiet::DeployError;
use adept_hierarchy::DiffError;
use adept_workload::DemandError;
use std::fmt;

/// Stable machine-readable error codes carried in error frames.
///
/// `as_str` values are the wire contract; adding a code is
/// backward-compatible, renaming one is not.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The request line was not a valid protocol frame.
    BadFrame,
    /// The frame's `method` is not part of the protocol.
    UnknownMethod,
    /// A required field is missing or has the wrong type/value.
    BadRequest,
    /// The named platform is not in the daemon's catalog.
    UnknownPlatform,
    /// The named tenant has no live session.
    UnknownTenant,
    /// A session (live or journaled) already claims this tenant id.
    TenantExists,
    /// The demand vector was rejected ([`DemandError`]).
    BadDemand,
    /// Initial planning failed ([`PlannerError`]).
    Planner,
    /// A revision round failed ([`ReviseError`]).
    Revise,
    /// A plan diff does not apply to the running plan ([`DiffError`]).
    Diff,
    /// Compiling or executing a migration failed ([`DeployError`]).
    Deploy,
    /// A journal record is corrupt, truncated, or inconsistent.
    JournalCorrupt,
    /// A journal disagrees with the daemon's catalog (fingerprint,
    /// tenant name) or an already-claimed journal file.
    JournalMismatch,
    /// An I/O failure (socket, journal file).
    Io,
}

impl ErrorCode {
    /// The wire spelling of the code.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::BadFrame => "bad-frame",
            ErrorCode::UnknownMethod => "unknown-method",
            ErrorCode::BadRequest => "bad-request",
            ErrorCode::UnknownPlatform => "unknown-platform",
            ErrorCode::UnknownTenant => "unknown-tenant",
            ErrorCode::TenantExists => "tenant-exists",
            ErrorCode::BadDemand => "bad-demand",
            ErrorCode::Planner => "planner",
            ErrorCode::Revise => "revise",
            ErrorCode::Diff => "diff",
            ErrorCode::Deploy => "deploy",
            ErrorCode::JournalCorrupt => "journal-corrupt",
            ErrorCode::JournalMismatch => "journal-mismatch",
            ErrorCode::Io => "io",
        }
    }

    /// Parses a wire code back into the enum (`None` for codes this
    /// build does not know — a newer daemon, typically).
    pub fn from_wire(code: &str) -> Option<ErrorCode> {
        [
            ErrorCode::BadFrame,
            ErrorCode::UnknownMethod,
            ErrorCode::BadRequest,
            ErrorCode::UnknownPlatform,
            ErrorCode::UnknownTenant,
            ErrorCode::TenantExists,
            ErrorCode::BadDemand,
            ErrorCode::Planner,
            ErrorCode::Revise,
            ErrorCode::Diff,
            ErrorCode::Deploy,
            ErrorCode::JournalCorrupt,
            ErrorCode::JournalMismatch,
            ErrorCode::Io,
        ]
        .into_iter()
        .find(|c| c.as_str() == code)
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

/// Why a journal could not be written, read, or replayed.
#[derive(Debug, Clone, PartialEq)]
pub enum JournalError {
    /// The journal holds no records at all — nothing to resume.
    Empty {
        /// The offending file.
        path: String,
    },
    /// The last record is not valid JSON: the writer crashed
    /// mid-append. Lenient replay drops it (losing at most that one
    /// unacknowledged tick); strict reads surface this error.
    TruncatedTail {
        /// 1-based line number of the partial record.
        line: usize,
    },
    /// A record **before** the tail is unreadable — real corruption,
    /// never produced by a crash of the append-only writer.
    Corrupt {
        /// 1-based line number.
        line: usize,
        /// What failed to parse.
        detail: String,
    },
    /// The first record is not a `register` record.
    NotRegistered,
    /// The register record's tenant differs from the journal file name.
    TenantMismatch {
        /// Tenant the file name claims.
        file: String,
        /// Tenant the register record claims.
        record: String,
    },
    /// The register record's platform fingerprint does not match the
    /// platform the daemon catalog has under that name.
    FingerprintMismatch {
        /// Platform name in the register record.
        platform: String,
        /// Fingerprint in the journal (hex).
        journaled: String,
        /// Fingerprint of the catalog platform (hex).
        catalog: String,
    },
    /// A journal file for this tenant already exists; a second session
    /// may not claim the same tenant id.
    AlreadyClaimed {
        /// The contested tenant id.
        tenant: String,
    },
    /// Deterministic replay did not reproduce the journaled migration
    /// history — the journal and the code disagree about the past.
    ReplayDivergence {
        /// The tenant being resumed.
        tenant: String,
        /// What diverged.
        detail: String,
    },
    /// Reading or writing the journal file failed.
    Io(String),
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Empty { path } => write!(f, "journal {path} is empty"),
            JournalError::TruncatedTail { line } => {
                write!(f, "journal record {line} is truncated (crash mid-write)")
            }
            JournalError::Corrupt { line, detail } => {
                write!(f, "journal record {line} is corrupt: {detail}")
            }
            JournalError::NotRegistered => {
                write!(f, "journal does not start with a register record")
            }
            JournalError::TenantMismatch { file, record } => write!(
                f,
                "journal file is named for tenant {file:?} but registers {record:?}"
            ),
            JournalError::FingerprintMismatch {
                platform,
                journaled,
                catalog,
            } => write!(
                f,
                "platform {platform:?} changed shape: journal fingerprint {journaled}, \
                 catalog fingerprint {catalog}"
            ),
            JournalError::AlreadyClaimed { tenant } => {
                write!(f, "tenant {tenant:?} is already claimed by a journal")
            }
            JournalError::ReplayDivergence { tenant, detail } => {
                write!(
                    f,
                    "replaying tenant {tenant:?} diverged from its journal: {detail}"
                )
            }
            JournalError::Io(e) => write!(f, "journal I/O failed: {e}"),
        }
    }
}

impl std::error::Error for JournalError {}

/// Every way a serve-layer request can fail. Each variant carries the
/// library error it wraps (or the protocol-level detail) and maps to
/// one wire [`ErrorCode`].
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The request line is not a valid frame (bad JSON, missing
    /// `method`, non-object params).
    BadFrame(String),
    /// The method is not part of the protocol.
    UnknownMethod(String),
    /// A field is missing, mistyped, or out of range.
    BadRequest(String),
    /// No platform under this name in the daemon catalog.
    UnknownPlatform(String),
    /// No live session for this tenant.
    UnknownTenant(String),
    /// A live session already holds this tenant id.
    TenantExists(String),
    /// The demand vector was rejected at validation.
    Demand(DemandError),
    /// Initial planning failed.
    Planner(PlannerError),
    /// A revision round failed.
    Revise(ReviseError),
    /// A plan diff failed to apply to the running plan.
    Diff(DiffError),
    /// Compiling or executing a migration failed.
    Deploy(DeployError),
    /// The journal layer failed.
    Journal(JournalError),
    /// Socket or file I/O failed.
    Io(String),
}

impl ServeError {
    /// The wire code this error answers with.
    pub fn code(&self) -> ErrorCode {
        match self {
            ServeError::BadFrame(_) => ErrorCode::BadFrame,
            ServeError::UnknownMethod(_) => ErrorCode::UnknownMethod,
            ServeError::BadRequest(_) => ErrorCode::BadRequest,
            ServeError::UnknownPlatform(_) => ErrorCode::UnknownPlatform,
            ServeError::UnknownTenant(_) => ErrorCode::UnknownTenant,
            ServeError::TenantExists(_) => ErrorCode::TenantExists,
            ServeError::Demand(_) => ErrorCode::BadDemand,
            ServeError::Planner(_) => ErrorCode::Planner,
            ServeError::Revise(_) => ErrorCode::Revise,
            ServeError::Diff(_) => ErrorCode::Diff,
            ServeError::Deploy(_) => ErrorCode::Deploy,
            ServeError::Journal(e) => match e {
                JournalError::TenantMismatch { .. }
                | JournalError::FingerprintMismatch { .. }
                | JournalError::AlreadyClaimed { .. } => ErrorCode::JournalMismatch,
                JournalError::Io(_) => ErrorCode::Io,
                _ => ErrorCode::JournalCorrupt,
            },
            ServeError::Io(_) => ErrorCode::Io,
        }
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::BadFrame(msg) => write!(f, "bad frame: {msg}"),
            ServeError::UnknownMethod(m) => write!(f, "unknown method {m:?}"),
            ServeError::BadRequest(msg) => write!(f, "bad request: {msg}"),
            ServeError::UnknownPlatform(p) => write!(f, "unknown platform {p:?}"),
            ServeError::UnknownTenant(t) => write!(f, "unknown tenant {t:?}"),
            ServeError::TenantExists(t) => write!(f, "tenant {t:?} already registered"),
            ServeError::Demand(e) => write!(f, "{e}"),
            ServeError::Planner(e) => write!(f, "{e}"),
            ServeError::Revise(e) => write!(f, "{e}"),
            ServeError::Diff(e) => write!(f, "{e}"),
            ServeError::Deploy(e) => write!(f, "{e}"),
            ServeError::Journal(e) => write!(f, "{e}"),
            ServeError::Io(e) => write!(f, "i/o failed: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<DemandError> for ServeError {
    fn from(e: DemandError) -> Self {
        ServeError::Demand(e)
    }
}

impl From<PlannerError> for ServeError {
    fn from(e: PlannerError) -> Self {
        ServeError::Planner(e)
    }
}

impl From<ReviseError> for ServeError {
    fn from(e: ReviseError) -> Self {
        ServeError::Revise(e)
    }
}

impl From<DiffError> for ServeError {
    fn from(e: DiffError) -> Self {
        ServeError::Diff(e)
    }
}

impl From<DeployError> for ServeError {
    fn from(e: DeployError) -> Self {
        ServeError::Deploy(e)
    }
}

impl From<JournalError> for ServeError {
    fn from(e: JournalError) -> Self {
        ServeError::Journal(e)
    }
}

impl From<ControlError> for ServeError {
    fn from(e: ControlError) -> Self {
        // The controller's two failure classes unwrap to the library
        // errors they carry, so the wire code names the real culprit.
        match e {
            ControlError::Revise(e) => ServeError::Revise(e),
            ControlError::Deploy(e) => ServeError::Deploy(e),
        }
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_code_roundtrips_through_its_wire_spelling() {
        let codes = [
            ErrorCode::BadFrame,
            ErrorCode::UnknownMethod,
            ErrorCode::BadRequest,
            ErrorCode::UnknownPlatform,
            ErrorCode::UnknownTenant,
            ErrorCode::TenantExists,
            ErrorCode::BadDemand,
            ErrorCode::Planner,
            ErrorCode::Revise,
            ErrorCode::Diff,
            ErrorCode::Deploy,
            ErrorCode::JournalCorrupt,
            ErrorCode::JournalMismatch,
            ErrorCode::Io,
        ];
        for code in codes {
            assert_eq!(ErrorCode::from_wire(code.as_str()), Some(code));
        }
        assert_eq!(ErrorCode::from_wire("not-a-code"), None);
    }

    #[test]
    fn library_errors_map_to_their_codes() {
        assert_eq!(
            ServeError::from(DemandError::Empty).code(),
            ErrorCode::BadDemand
        );
        assert_eq!(
            ServeError::from(PlannerError::InvalidConfig("x".into())).code(),
            ErrorCode::Planner
        );
        assert_eq!(
            ServeError::from(JournalError::TruncatedTail { line: 3 }).code(),
            ErrorCode::JournalCorrupt
        );
        assert_eq!(
            ServeError::from(JournalError::AlreadyClaimed { tenant: "t".into() }).code(),
            ErrorCode::JournalMismatch
        );
    }
}
