//! Append-only per-tenant tick journals.
//!
//! Each tenant session owns one JSONL file, `<dir>/<tenant>.jsonl`. The
//! first record registers the session (platform name + structural
//! fingerprint, service mix, initial demand, policy config); every
//! subsequent record is one input the session consumed — an observed
//! tick or an operator replan — plus `migration` checkpoints recording
//! what each executed round did.
//!
//! The write discipline is **write-ahead**: an input record is appended
//! and flushed *before* the controller consumes it, and the wire
//! response is sent only after the round (and its `migration` record,
//! if any) is durable. A daemon killed at any point therefore loses at
//! most the one tick whose response was never acknowledged.
//!
//! Resume is **deterministic replay**: the whole stack underneath —
//! planner, reviser, and GoDiet's seeded failure injection — is
//! deterministic, so re-feeding the journaled inputs rebuilds the exact
//! controller state, with no planner state ever serialized. The
//! journaled `migration` records are not inputs; they are the
//! cross-check that replay reproduced history (see
//! [`JournalError::ReplayDivergence`]).
//!
//! Two read modes: [`read_strict`](Journal::read_strict) surfaces a
//! truncated tail as [`JournalError::TruncatedTail`]; the daemon
//! resumes with [`read_lenient`](Journal::read_lenient), which drops a
//! partial final line (crash mid-append) but still refuses interior
//! corruption.

use crate::error::JournalError;
use crate::json::Json;
use crate::wire::{
    self, demand_field, demand_json, executions_field, executions_json, f64_array, num_array_json,
    services_json, ServiceDef, SessionConfig,
};
use adept_control::controller::ExecutionSample;
use std::fs::{File, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// One journal record.
#[derive(Debug, Clone, PartialEq)]
pub enum Record {
    /// The session header: everything needed to rebuild tick 0.
    Register {
        /// Tenant id (must match the file name).
        tenant: String,
        /// Catalog platform the session deploys on.
        platform: String,
        /// Structural fingerprint of that platform at registration.
        fingerprint: u64,
        /// The declared service mix.
        services: Vec<ServiceDef>,
        /// The initial demand the first deployment was planned for.
        demand: Vec<f64>,
        /// Session policy.
        config: SessionConfig,
    },
    /// One observed control interval (input).
    Tick {
        /// Observed per-service demand rates.
        rates: Vec<f64>,
        /// Observed executions.
        executions: Vec<ExecutionSample>,
    },
    /// One operator-initiated replan round (input).
    Replan {
        /// The demand the operator asked to replan for (`INFINITY` =
        /// unbounded).
        demand: Vec<f64>,
    },
    /// Checkpoint: the round just consumed executed this migration.
    /// Replay must reproduce these exactly, in order.
    Migration {
        /// 1-based migration number within the session.
        seq: u64,
        /// Tick counter when it ran.
        tick: u64,
        /// Tree-level changes of the round.
        changes: u64,
        /// Server count after the migration.
        servers_after: u64,
    },
    /// The session was drained cleanly; nothing follows.
    Drain,
}

impl Record {
    /// Encodes the record as one JSONL line (no trailing newline).
    pub fn to_json(&self) -> Json {
        match self {
            Record::Register {
                tenant,
                platform,
                fingerprint,
                services,
                demand,
                config,
            } => Json::obj(vec![
                ("record", Json::str("register")),
                ("tenant", Json::str(tenant)),
                ("platform", Json::str(platform)),
                ("fingerprint", Json::str(format!("{fingerprint:016x}"))),
                ("services", services_json(services)),
                ("demand", demand_json(demand)),
                ("config", config.to_json()),
            ]),
            Record::Tick { rates, executions } => Json::obj(vec![
                ("record", Json::str("tick")),
                ("rates", num_array_json(rates)),
                ("executions", executions_json(executions)),
            ]),
            Record::Replan { demand } => Json::obj(vec![
                ("record", Json::str("replan")),
                ("demand", demand_json(demand)),
            ]),
            Record::Migration {
                seq,
                tick,
                changes,
                servers_after,
            } => Json::obj(vec![
                ("record", Json::str("migration")),
                ("seq", Json::num(*seq as f64)),
                ("tick", Json::num(*tick as f64)),
                ("changes", Json::num(*changes as f64)),
                ("servers_after", Json::num(*servers_after as f64)),
            ]),
            Record::Drain => Json::obj(vec![("record", Json::str("drain"))]),
        }
    }

    /// Parses one journal line (1-based `line` for error reporting).
    pub fn parse(text: &str, line: usize) -> Result<Record, JournalError> {
        let corrupt = |detail: String| JournalError::Corrupt { line, detail };
        let v = Json::parse(text).map_err(&corrupt)?;
        let kind = v
            .get("record")
            .and_then(Json::as_str)
            .ok_or_else(|| corrupt("no string \"record\" field".into()))?;
        match kind {
            "register" => {
                let fp_hex = v
                    .get("fingerprint")
                    .and_then(Json::as_str)
                    .ok_or_else(|| corrupt("register record has no fingerprint".into()))?;
                let fingerprint = u64::from_str_radix(fp_hex, 16)
                    .map_err(|e| corrupt(format!("bad fingerprint {fp_hex:?}: {e}")))?;
                Ok(Record::Register {
                    tenant: wire::str_field(&v, "tenant").map_err(|e| corrupt(e.to_string()))?,
                    platform: wire::str_field(&v, "platform")
                        .map_err(|e| corrupt(e.to_string()))?,
                    fingerprint,
                    services: wire::services_field(&v, "services")
                        .map_err(|e| corrupt(e.to_string()))?,
                    demand: demand_field(&v, "demand").map_err(|e| corrupt(e.to_string()))?,
                    config: SessionConfig::from_json(
                        v.get("config").unwrap_or(&Json::Obj(Vec::new())),
                    )
                    .map_err(|e| corrupt(e.to_string()))?,
                })
            }
            "tick" => Ok(Record::Tick {
                rates: f64_array(&v, "rates").map_err(|e| corrupt(e.to_string()))?,
                executions: executions_field(&v).map_err(|e| corrupt(e.to_string()))?,
            }),
            "replan" => Ok(Record::Replan {
                demand: demand_field(&v, "demand").map_err(|e| corrupt(e.to_string()))?,
            }),
            "migration" => Ok(Record::Migration {
                seq: wire::u64_field(&v, "seq").map_err(|e| corrupt(e.to_string()))?,
                tick: wire::u64_field(&v, "tick").map_err(|e| corrupt(e.to_string()))?,
                changes: wire::u64_field(&v, "changes").map_err(|e| corrupt(e.to_string()))?,
                servers_after: wire::u64_field(&v, "servers_after")
                    .map_err(|e| corrupt(e.to_string()))?,
            }),
            "drain" => Ok(Record::Drain),
            other => Err(corrupt(format!("unknown record kind {other:?}"))),
        }
    }
}

/// The append side of one tenant's journal.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    file: File,
}

/// The journal file path for a tenant id.
pub fn journal_path(dir: &Path, tenant: &str) -> PathBuf {
    dir.join(format!("{tenant}.jsonl"))
}

impl Journal {
    /// Creates a **new** journal for `tenant` and writes `register` as
    /// its first record.
    ///
    /// # Errors
    /// [`JournalError::AlreadyClaimed`] when a journal file for this
    /// tenant already exists (a drained journal is archived under
    /// another name and does not block); [`JournalError::Io`] on
    /// filesystem failure.
    pub fn create(dir: &Path, tenant: &str, register: &Record) -> Result<Journal, JournalError> {
        std::fs::create_dir_all(dir).map_err(|e| JournalError::Io(e.to_string()))?;
        let path = journal_path(dir, tenant);
        let file = OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(&path)
            .map_err(|e| {
                if e.kind() == std::io::ErrorKind::AlreadyExists {
                    JournalError::AlreadyClaimed {
                        tenant: tenant.to_string(),
                    }
                } else {
                    JournalError::Io(e.to_string())
                }
            })?;
        let mut journal = Journal { path, file };
        journal.append(register)?;
        Ok(journal)
    }

    /// Reopens an existing journal for appending (after a resume).
    ///
    /// # Errors
    /// [`JournalError::Io`] when the file cannot be opened.
    pub fn open_append(path: &Path) -> Result<Journal, JournalError> {
        let file = OpenOptions::new()
            .append(true)
            .open(path)
            .map_err(|e| JournalError::Io(e.to_string()))?;
        Ok(Journal {
            path: path.to_path_buf(),
            file,
        })
    }

    /// The journal's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one record and flushes it to the OS — the write-ahead
    /// step. Returns only once the line is out of process buffers.
    ///
    /// # Errors
    /// [`JournalError::Io`] on write failure.
    pub fn append(&mut self, record: &Record) -> Result<(), JournalError> {
        let mut line = record.to_json().to_string();
        line.push('\n');
        self.file
            .write_all(line.as_bytes())
            .and_then(|()| self.file.flush())
            .map_err(|e| JournalError::Io(e.to_string()))
    }

    /// Archives the journal as `<path>.drained`, consuming the handle.
    /// The tenant id becomes claimable again.
    ///
    /// # Errors
    /// [`JournalError::Io`] when the rename fails.
    pub fn archive_drained(self) -> Result<PathBuf, JournalError> {
        let mut archived = self.path.clone().into_os_string();
        archived.push(".drained");
        let archived = PathBuf::from(archived);
        std::fs::rename(&self.path, &archived).map_err(|e| JournalError::Io(e.to_string()))?;
        Ok(archived)
    }

    /// Reads every record, refusing any damage: a partial final line is
    /// [`JournalError::TruncatedTail`], an unreadable interior line is
    /// [`JournalError::Corrupt`], an empty file is
    /// [`JournalError::Empty`]. The manual-recovery read
    /// (`docs/OPERATIONS.md`).
    ///
    /// # Errors
    /// As above, plus [`JournalError::Io`] on read failure.
    pub fn read_strict(path: &Path) -> Result<Vec<Record>, JournalError> {
        let (records, truncated) = Self::read_inner(path)?;
        if let Some(line) = truncated {
            return Err(JournalError::TruncatedTail { line });
        }
        Ok(records)
    }

    /// Reads every intact record, dropping a partial final line. The
    /// resume read: losing the tail record is losing one never-
    /// acknowledged tick, which the write-ahead discipline permits.
    /// Interior corruption is still refused — an append-only writer
    /// cannot produce it, so it is never safe to skip.
    ///
    /// Returns the records and the 1-based line number of the dropped
    /// tail, if one was dropped.
    ///
    /// # Errors
    /// [`JournalError::Empty`], [`JournalError::Corrupt`], or
    /// [`JournalError::Io`].
    pub fn read_lenient(path: &Path) -> Result<(Vec<Record>, Option<usize>), JournalError> {
        Self::read_inner(path)
    }

    fn read_inner(path: &Path) -> Result<(Vec<Record>, Option<usize>), JournalError> {
        let text = std::fs::read_to_string(path).map_err(|e| JournalError::Io(e.to_string()))?;
        // A complete journal ends with '\n'; anything after the last
        // newline is a partial append. A final fragment that still
        // parses lost only its newline and is kept.
        let mut records = Vec::new();
        let mut truncated = None;
        let lines: Vec<&str> = text.lines().collect();
        for (i, line) in lines.iter().enumerate() {
            if line.is_empty() {
                continue;
            }
            let is_tail_fragment = i == lines.len() - 1 && !text.ends_with('\n');
            match Record::parse(line, i + 1) {
                Ok(r) => records.push(r),
                Err(e) if is_tail_fragment => {
                    debug_assert!(matches!(e, JournalError::Corrupt { .. }));
                    truncated = Some(i + 1);
                }
                Err(e) => return Err(e),
            }
        }
        if records.is_empty() && truncated.is_none() {
            return Err(JournalError::Empty {
                path: path.display().to_string(),
            });
        }
        Ok((records, truncated))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adept_platform::{MflopRate, Seconds};

    fn register_record() -> Record {
        Record::Register {
            tenant: "t1".into(),
            platform: "lyon".into(),
            fingerprint: 0xdead_beef_0042_1111,
            services: vec![ServiceDef {
                name: "dgemm-310".into(),
                wapp_mflop: 59.6,
                weight: 2.0,
            }],
            demand: vec![1.5, f64::INFINITY],
            config: SessionConfig::default(),
        }
    }

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("adept-journal-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn records_roundtrip_line_by_line() {
        let records = [
            register_record(),
            Record::Tick {
                rates: vec![1.0, 0.25],
                executions: vec![ExecutionSample {
                    service: 1,
                    duration: Seconds(0.75),
                    power: MflopRate(400.0),
                }],
            },
            Record::Replan {
                demand: vec![2.0, f64::INFINITY],
            },
            Record::Migration {
                seq: 1,
                tick: 4,
                changes: 3,
                servers_after: 12,
            },
            Record::Drain,
        ];
        for r in &records {
            let line = r.to_json().to_string();
            assert_eq!(&Record::parse(&line, 1).unwrap(), r);
        }
    }

    #[test]
    fn append_then_strict_read_roundtrips() {
        let dir = tmp_dir("roundtrip");
        let mut journal = Journal::create(&dir, "t1", &register_record()).unwrap();
        let tick = Record::Tick {
            rates: vec![1.0],
            executions: vec![],
        };
        journal.append(&tick).unwrap();
        let read = Journal::read_strict(journal.path()).unwrap();
        assert_eq!(read, vec![register_record(), tick]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn second_create_is_already_claimed() {
        let dir = tmp_dir("claimed");
        let _journal = Journal::create(&dir, "t1", &register_record()).unwrap();
        let err = Journal::create(&dir, "t1", &register_record()).unwrap_err();
        assert_eq!(
            err,
            JournalError::AlreadyClaimed {
                tenant: "t1".into()
            }
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_tail_strict_vs_lenient() {
        let dir = tmp_dir("truncated");
        std::fs::create_dir_all(&dir).unwrap();
        let path = journal_path(&dir, "t1");
        let good = register_record().to_json().to_string();
        std::fs::write(&path, format!("{good}\n{{\"record\":\"tick\",\"ra")).unwrap();
        assert_eq!(
            Journal::read_strict(&path).unwrap_err(),
            JournalError::TruncatedTail { line: 2 }
        );
        let (records, dropped) = Journal::read_lenient(&path).unwrap();
        assert_eq!(records, vec![register_record()]);
        assert_eq!(dropped, Some(2));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn interior_corruption_is_refused_in_both_modes() {
        let dir = tmp_dir("corrupt");
        std::fs::create_dir_all(&dir).unwrap();
        let path = journal_path(&dir, "t1");
        let good = register_record().to_json().to_string();
        std::fs::write(&path, format!("{good}\nnot json at all\n{good}\n")).unwrap();
        for result in [
            Journal::read_strict(&path),
            Journal::read_lenient(&path).map(|(r, _)| r),
        ] {
            match result.unwrap_err() {
                JournalError::Corrupt { line, .. } => assert_eq!(line, 2),
                other => panic!("want Corrupt, got {other:?}"),
            }
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_journal_is_a_typed_error() {
        let dir = tmp_dir("empty");
        std::fs::create_dir_all(&dir).unwrap();
        let path = journal_path(&dir, "t1");
        std::fs::write(&path, "").unwrap();
        assert!(matches!(
            Journal::read_strict(&path).unwrap_err(),
            JournalError::Empty { .. }
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn drained_archive_frees_the_tenant_id() {
        let dir = tmp_dir("drain");
        let mut journal = Journal::create(&dir, "t1", &register_record()).unwrap();
        journal.append(&Record::Drain).unwrap();
        let archived = journal.archive_drained().unwrap();
        assert!(archived.to_string_lossy().ends_with("t1.jsonl.drained"));
        assert!(!journal_path(&dir, "t1").exists());
        // The id is claimable again.
        let _journal = Journal::create(&dir, "t1", &register_record()).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
