//! One tenant's hosted control loop.
//!
//! A [`TenantSession`] wraps one [`Controller`] with the journal that
//! makes it durable: every input (observe tick, operator replan) is
//! journaled write-ahead, consumed, and checkpointed, so
//! [`resume`](TenantSession::resume) can rebuild the exact session by
//! deterministic replay after a daemon restart. The session is the
//! daemon's unit of concurrency — it is `Send` and lives behind one
//! mutex per tenant, so tenants never serialize against each other.

use crate::cache::{CacheLookup, PlanCache};
use crate::error::{JournalError, ServeError};
use crate::journal::{Journal, Record};
use crate::wire::{
    MigrationSummary, PlanSummary, ReplanPreview, ServiceDef, SessionConfig, TenantStatus,
    TickOutcome,
};
use adept_control::controller::{ExecutionSample, Migration, Observations};
use adept_control::{Controller, ControllerConfig, Hysteresis, TriggerPolicy};
use adept_core::planner::{MixObjective, MixPlanner, OnlinePlanner};
use adept_godiet::GoDiet;
use adept_hierarchy::NodeChange;
use adept_platform::{Mflop, Platform};
use adept_workload::{MixDemand, ServiceMix, ServiceSpec};
use parking_lot::Mutex;
use std::path::Path;
use std::sync::Arc;

/// Checks a tenant id is safe to use as a journal file stem.
pub(crate) fn validate_tenant_id(tenant: &str) -> Result<(), ServeError> {
    let ok = !tenant.is_empty()
        && tenant.len() <= 64
        && tenant
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_');
    if ok {
        Ok(())
    } else {
        Err(ServeError::BadRequest(format!(
            "tenant id {tenant:?} must be 1-64 chars of [A-Za-z0-9_-]"
        )))
    }
}

pub(crate) fn build_mix(services: &[ServiceDef]) -> Result<ServiceMix, ServeError> {
    for s in services {
        if !(s.wapp_mflop.is_finite() && s.wapp_mflop > 0.0) {
            return Err(ServeError::BadRequest(format!(
                "service {:?}: wapp_mflop must be positive and finite, got {}",
                s.name, s.wapp_mflop
            )));
        }
        if !(s.weight.is_finite() && s.weight > 0.0) {
            return Err(ServeError::BadRequest(format!(
                "service {:?}: weight must be positive and finite, got {}",
                s.name, s.weight
            )));
        }
    }
    Ok(ServiceMix::new(
        services
            .iter()
            .map(|s| {
                (
                    ServiceSpec::new(s.name.clone(), Mflop(s.wapp_mflop)),
                    s.weight,
                )
            })
            .collect(),
    ))
}

fn godiet_for(config: &SessionConfig) -> GoDiet {
    if config.failure_probability > 0.0 {
        GoDiet::with_failures(config.failure_probability, config.failure_seed)
    } else {
        GoDiet::default()
    }
}

fn controller_config(config: &SessionConfig, warm_start: bool) -> ControllerConfig {
    ControllerConfig {
        triggers: vec![TriggerPolicy::ForecastDrift {
            threshold: config.drift_threshold,
        }],
        hysteresis: Hysteresis {
            min_sustained: config.min_sustained,
            cooldown_ticks: config.cooldown_ticks,
        },
        demand_alpha: config.demand_alpha,
        wapp_alpha: config.wapp_alpha,
        headroom: config.headroom,
        warm_start,
    }
}

/// One tenant's durable control-loop session.
#[derive(Debug)]
pub struct TenantSession {
    tenant: String,
    platform_name: String,
    controller: Controller,
    /// The append-only journal, serialized under its own lock class so
    /// the write-ahead append stream stays ordered even if session
    /// access patterns change; acquired strictly *inside* the tenant
    /// slot lock (`serve.tenant-slot` → `serve.journal` in the
    /// lock-order graph).
    journal: Mutex<Journal>,
    /// Migrations executed this *process lifetime or replay* — the
    /// authoritative per-session history.
    migrations: Vec<MigrationSummary>,
}

impl TenantSession {
    /// Registers a new tenant: validates the mix and demand, plans the
    /// initial deployment, claims the journal file, and starts the
    /// control loop around the freshly "deployed" plan.
    ///
    /// # Errors
    /// [`ServeError::BadRequest`] on an unusable tenant id, mix, or
    /// config; [`ServeError::Demand`] on an invalid demand vector;
    /// [`ServeError::Planner`] when no deployment fits;
    /// [`ServeError::Journal`] when the tenant id is already claimed by
    /// a journal on disk.
    ///
    /// `cache` is the daemon's shared plan cache (exact tier only: a hit
    /// is bit-identical to planning cold, so the journaled answer — and
    /// its cold-planning replay — are unaffected). `warm_start` threads
    /// the daemon's warm-replanning ablation flag into the controller.
    #[allow(clippy::too_many_arguments)]
    pub fn register(
        journal_dir: &Path,
        tenant: &str,
        platform_name: &str,
        platform: Arc<Platform>,
        services: &[ServiceDef],
        demand: Vec<f64>,
        config: &SessionConfig,
        cache: Option<&PlanCache>,
        warm_start: bool,
    ) -> Result<TenantSession, ServeError> {
        validate_tenant_id(tenant)?;
        let mix = build_mix(services)?;
        let mix_demand = MixDemand::try_targets(demand.clone())?;
        if mix_demand.len() != mix.len() {
            return Err(ServeError::BadRequest(format!(
                "demand covers {} services, mix declares {}",
                mix_demand.len(),
                mix.len()
            )));
        }
        // Plan before claiming the journal: a tenant that cannot be
        // planned leaves no file behind. The shared cache may already
        // hold the canonical answer for these exact inputs (another
        // tenant asked the same question); `MixPlanner` is
        // deterministic, so an exact hit equals planning cold bit for
        // bit and replay — which always plans cold — still reproduces
        // the session.
        let cached = cache.and_then(|c| {
            match c.lookup(&platform, &mix, MixObjective::WeightedMin, &demand, false) {
                CacheLookup::Exact(hit) => Some(*hit),
                _ => None,
            }
        });
        let initial = match cached {
            Some(hit) => hit,
            None => {
                let cold = MixPlanner::default().plan_mix(&platform, &mix, &mix_demand)?;
                if let Some(c) = cache {
                    c.insert(&platform, &mix, MixObjective::WeightedMin, &demand, &cold);
                }
                cold
            }
        };
        let register = Record::Register {
            tenant: tenant.to_string(),
            platform: platform_name.to_string(),
            fingerprint: platform.fingerprint(),
            services: services.to_vec(),
            demand,
            config: config.clone(),
        };
        let journal = Journal::create(journal_dir, tenant, &register)?;
        let controller = Controller::new(
            platform,
            mix,
            initial.plan,
            initial.assignment,
            &mix_demand,
            Box::new(OnlinePlanner {
                max_changes: config.max_changes as usize,
                ..OnlinePlanner::default()
            }),
            godiet_for(config),
            controller_config(config, warm_start),
        );
        Ok(TenantSession {
            tenant: tenant.to_string(),
            platform_name: platform_name.to_string(),
            controller,
            journal: Mutex::named("serve.journal", journal),
            migrations: Vec::new(),
        })
    }

    /// Resumes a session from its journal by deterministic replay.
    ///
    /// `lookup` resolves a catalog platform by name — the daemon's
    /// shared read-only catalogs. The journaled fingerprint must match
    /// the catalog platform exactly; a platform that changed shape
    /// under a journal is a [`JournalError::FingerprintMismatch`], not
    /// a silent replan on different hardware.
    ///
    /// Replay is lenient about a truncated final record (a crash
    /// mid-append loses that one unacknowledged input) but must
    /// reproduce every journaled `migration` checkpoint exactly —
    /// anything else is a [`JournalError::ReplayDivergence`].
    ///
    /// A journal ending in a `drain` record belongs to a finished
    /// session and resumes as `Ok(None)`.
    ///
    /// Replay never consults the shared plan cache — resuming must
    /// depend only on the journal, not on what other tenants planned
    /// since it was written. `warm_start` may differ from the crashed
    /// process's setting without affecting the replayed answers: warm
    /// replanning is bit-identical to cold (only its latency differs),
    /// which the restart tests assert.
    ///
    /// # Errors
    /// [`ServeError::Journal`] for every journal defect;
    /// [`ServeError::UnknownPlatform`] when the journaled platform name
    /// is not in the catalog.
    pub fn resume(
        path: &Path,
        lookup: &dyn Fn(&str) -> Option<Arc<Platform>>,
        warm_start: bool,
    ) -> Result<Option<TenantSession>, ServeError> {
        let file_tenant = path
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or_default()
            .to_string();
        let (records, _dropped_tail) = Journal::read_lenient(path)?;
        let Some((first, rest)) = records.split_first() else {
            return Err(JournalError::Empty {
                path: path.display().to_string(),
            }
            .into());
        };
        let Record::Register {
            tenant,
            platform: platform_name,
            fingerprint,
            services,
            demand,
            config,
        } = first
        else {
            return Err(JournalError::NotRegistered.into());
        };
        if *tenant != file_tenant {
            return Err(JournalError::TenantMismatch {
                file: file_tenant,
                record: tenant.clone(),
            }
            .into());
        }
        let platform = lookup(platform_name)
            .ok_or_else(|| ServeError::UnknownPlatform(platform_name.clone()))?;
        if platform.fingerprint() != *fingerprint {
            return Err(JournalError::FingerprintMismatch {
                platform: platform_name.clone(),
                journaled: format!("{fingerprint:016x}"),
                catalog: format!("{:016x}", platform.fingerprint()),
            }
            .into());
        }

        // Rebuild tick 0 exactly as `register` did.
        let mix = build_mix(services)?;
        let mix_demand =
            MixDemand::try_targets(demand.clone()).map_err(|e| JournalError::Corrupt {
                line: 1,
                detail: e.to_string(),
            })?;
        let initial = MixPlanner::default().plan_mix(&platform, &mix, &mix_demand)?;
        let controller = Controller::new(
            platform,
            mix,
            initial.plan,
            initial.assignment,
            &mix_demand,
            Box::new(OnlinePlanner {
                max_changes: config.max_changes as usize,
                ..OnlinePlanner::default()
            }),
            godiet_for(config),
            controller_config(config, warm_start),
        );
        let mut session = TenantSession {
            tenant: tenant.clone(),
            platform_name: platform_name.clone(),
            controller,
            journal: Mutex::named("serve.journal", Journal::open_append(path)?),
            migrations: Vec::new(),
        };

        // Re-feed every journaled input; cross-check every journaled
        // migration checkpoint against what replay actually did.
        let divergence = |detail: String| -> ServeError {
            JournalError::ReplayDivergence {
                tenant: file_tenant.clone(),
                detail,
            }
            .into()
        };
        let mut checked = 0usize;
        for record in rest {
            match record {
                Record::Register { .. } => {
                    return Err(divergence("second register record".into()));
                }
                Record::Tick { rates, executions } => {
                    match session.consume_tick(rates.clone(), executions.clone()) {
                        Ok(_) => {}
                        // A round that failed live fails identically on
                        // replay; the error was already answered then.
                        Err(ServeError::Revise(_) | ServeError::Deploy(_)) => {}
                        Err(e) => return Err(divergence(format!("tick replay failed: {e}"))),
                    }
                }
                Record::Replan { demand } => match session.consume_replan(demand.clone()) {
                    Ok(_) => {}
                    Err(ServeError::Revise(_) | ServeError::Deploy(_)) => {}
                    Err(e) => return Err(divergence(format!("replan replay failed: {e}"))),
                },
                Record::Migration {
                    seq,
                    tick,
                    changes,
                    servers_after,
                } => {
                    let Some(done) = session.migrations.get(checked) else {
                        return Err(divergence(format!(
                            "journal records migration {seq} but replay produced only {}",
                            session.migrations.len()
                        )));
                    };
                    if done.seq != *seq
                        || done.tick != *tick
                        || done.changes != *changes
                        || done.servers_after != *servers_after
                    {
                        return Err(divergence(format!(
                            "migration {seq}: journal says tick {tick}, {changes} changes, \
                             {servers_after} servers; replay did tick {}, {} changes, \
                             {} servers",
                            done.tick, done.changes, done.servers_after
                        )));
                    }
                    checked += 1;
                }
                Record::Drain => return Ok(None),
            }
        }
        // Replay may have *more* migrations than checkpoints (crash
        // between a tick record and its migration record): journal the
        // missing checkpoints now so the history is whole again.
        for summary in &session.migrations[checked..] {
            session.journal.lock().append(&Record::Migration {
                seq: summary.seq,
                tick: summary.tick,
                changes: summary.changes,
                servers_after: summary.servers_after,
            })?;
        }
        Ok(Some(session))
    }

    /// The tenant id.
    pub fn tenant(&self) -> &str {
        &self.tenant
    }

    /// One observed control interval: journal it (write-ahead), feed
    /// the controller, checkpoint any migration, and report.
    ///
    /// # Errors
    /// [`ServeError::BadRequest`] on wrong arity or an out-of-range
    /// service index (validated *before* journaling — bad input is
    /// never persisted); [`ServeError::Revise`] / [`ServeError::Deploy`]
    /// when the round fails; [`ServeError::Journal`] on write failure.
    pub fn observe(
        &mut self,
        rates: Vec<f64>,
        executions: Vec<ExecutionSample>,
    ) -> Result<TickOutcome, ServeError> {
        self.validate_observation(&rates, &executions)?;
        self.journal.lock().append(&Record::Tick {
            rates: rates.clone(),
            executions: executions.clone(),
        })?;
        let outcome = self.consume_tick(rates, executions)?;
        self.checkpoint_last_migration(outcome.migration.as_ref())?;
        Ok(outcome)
    }

    /// A dry-run revision toward `demand`: what an operator `migrate`
    /// would do, with the diff validated against the running plan, but
    /// nothing executed and nothing journaled.
    ///
    /// # Errors
    /// [`ServeError::Demand`] on an invalid vector,
    /// [`ServeError::Revise`] when the reviser fails,
    /// [`ServeError::Diff`] when the produced diff does not apply to
    /// the running plan (a planner bug this endpoint makes visible).
    pub fn preview(&self, demand: Vec<f64>) -> Result<ReplanPreview, ServeError> {
        let mix_demand = self.demand_for_mix(demand)?;
        let replan = self.controller.preview(&mix_demand)?;
        // Validate before reporting: the diff must patch the running
        // plan into the revised plan.
        let patched = replan.diff.apply(self.controller.running())?;
        debug_assert!(patched.structurally_eq(&replan.plan));
        let (mut added, mut removed, mut reroled, mut reparented) = (0u64, 0u64, 0u64, 0u64);
        for change in replan.diff.changes.values() {
            match change {
                NodeChange::Added { .. } => added += 1,
                NodeChange::Removed { .. } => removed += 1,
                NodeChange::Rerole { .. } => reroled += 1,
                NodeChange::Reparented { .. } => reparented += 1,
            }
        }
        Ok(ReplanPreview {
            changes: replan.changes() as u64,
            added,
            removed,
            reroled,
            reparented,
            reassigned: replan.reassigned.len() as u64,
            rho: replan.report.rho,
            rho_service: replan.report.rho_service.clone(),
        })
    }

    /// An operator-forced replan round toward `demand`: journaled,
    /// executed, checkpointed. Returns the migration it ran, or `None`
    /// when the running deployment already fits.
    ///
    /// # Errors
    /// As [`observe`](TenantSession::observe), plus
    /// [`ServeError::Demand`] on an invalid vector.
    pub fn migrate(&mut self, demand: Vec<f64>) -> Result<Option<MigrationSummary>, ServeError> {
        let _ = self.demand_for_mix(demand.clone())?; // validate before journaling
        self.journal.lock().append(&Record::Replan {
            demand: demand.clone(),
        })?;
        let summary = self.consume_replan(demand)?;
        self.checkpoint_last_migration(summary.as_ref())?;
        Ok(summary)
    }

    /// The session's live counters and model state.
    pub fn status(&self) -> TenantStatus {
        TenantStatus {
            tenant: self.tenant.clone(),
            platform: self.platform_name.clone(),
            ticks: self.controller.ticks(),
            replans: self.controller.replans(),
            warm_replans: self.controller.warm_replans(),
            migrations: self.controller.migrations(),
            rejected_samples: self.controller.rejected_samples(),
            plan: self.plan_summary(),
            forecast: self.controller.forecast(),
        }
    }

    /// The executed migrations, oldest first.
    pub fn migrations(&self) -> &[MigrationSummary] {
        &self.migrations
    }

    /// Ends the session cleanly: journals a `drain` record and archives
    /// the journal as `<tenant>.jsonl.drained`, freeing the tenant id.
    /// Returns the archived journal path.
    ///
    /// # Errors
    /// [`ServeError::Journal`] when the drain record or the archive
    /// rename fails.
    pub fn drain(self) -> Result<std::path::PathBuf, ServeError> {
        let mut journal = self.journal.into_inner();
        journal.append(&Record::Drain)?;
        Ok(journal.archive_drained()?)
    }

    /// Current deployment summary (model evaluation + composition).
    pub(crate) fn plan_summary(&self) -> PlanSummary {
        let report = self.controller.predicted();
        let mut per_service = vec![0u64; self.controller.mix().len()];
        for &service in self.controller.assignment().service_of.values() {
            if let Some(n) = per_service.get_mut(service) {
                *n += 1;
            }
        }
        PlanSummary {
            rho: report.rho,
            rho_service: report.rho_service,
            servers: self.controller.running().server_count() as u64,
            agents: self.controller.running().agent_count() as u64,
            per_service_servers: per_service,
        }
    }

    fn validate_observation(
        &self,
        rates: &[f64],
        executions: &[ExecutionSample],
    ) -> Result<(), ServeError> {
        let services = self.controller.mix().len();
        if rates.len() != services {
            return Err(ServeError::BadRequest(format!(
                "observation covers {} services, mix declares {services}",
                rates.len()
            )));
        }
        for (i, e) in executions.iter().enumerate() {
            if e.service >= services {
                return Err(ServeError::BadRequest(format!(
                    "executions[{i}] names service {}, mix declares {services}",
                    e.service
                )));
            }
        }
        Ok(())
    }

    fn demand_for_mix(&self, demand: Vec<f64>) -> Result<MixDemand, ServeError> {
        let mix_demand = MixDemand::try_targets(demand)?;
        if mix_demand.len() != self.controller.mix().len() {
            return Err(ServeError::BadRequest(format!(
                "demand covers {} services, mix declares {}",
                mix_demand.len(),
                self.controller.mix().len()
            )));
        }
        Ok(mix_demand)
    }

    /// Feeds one tick into the controller (no journaling — shared by
    /// the live path and replay).
    fn consume_tick(
        &mut self,
        rates: Vec<f64>,
        executions: Vec<ExecutionSample>,
    ) -> Result<TickOutcome, ServeError> {
        self.validate_observation(&rates, &executions)?;
        let migration = self.controller.tick(&Observations { rates, executions })?;
        let summary = migration.map(|m| self.record_migration(&m));
        Ok(TickOutcome {
            tick: self.controller.ticks(),
            migration: summary,
            rejected_samples: self.controller.rejected_samples(),
            forecast: self.controller.forecast(),
        })
    }

    /// Runs one operator round (no journaling — shared with replay).
    fn consume_replan(&mut self, demand: Vec<f64>) -> Result<Option<MigrationSummary>, ServeError> {
        let mix_demand = self.demand_for_mix(demand)?;
        let migration = self.controller.replan_for(&mix_demand)?;
        Ok(migration.map(|m| self.record_migration(&m)))
    }

    fn record_migration(&mut self, m: &Migration) -> MigrationSummary {
        let summary = MigrationSummary {
            seq: self.controller.migrations(),
            tick: self.controller.ticks(),
            reason: m.reason.clone(),
            changes: m.replan.diff.len() as u64,
            reassigned: m.replan.reassigned.len() as u64,
            substitutions: m.report.substitutions.len() as u64,
            stages: m.report.stages as u64,
            makespan_s: m.report.makespan.value(),
            servers_after: m.report.plan.server_count() as u64,
            rho_after: m.replan.report.rho,
        };
        self.migrations.push(summary.clone());
        summary
    }

    /// Appends the `migration` checkpoint for a round that migrated.
    fn checkpoint_last_migration(
        &mut self,
        summary: Option<&MigrationSummary>,
    ) -> Result<(), ServeError> {
        if let Some(s) = summary {
            self.journal.lock().append(&Record::Migration {
                seq: s.seq,
                tick: s.tick,
                changes: s.changes,
                servers_after: s.servers_after,
            })?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::journal_path;
    use adept_platform::generator;
    use std::path::PathBuf;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("adept-session-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn services2() -> Vec<ServiceDef> {
        vec![
            ServiceDef {
                name: "dgemm-310".into(),
                wapp_mflop: 59.6,
                weight: 1.0,
            },
            ServiceDef {
                name: "dgemm-1000".into(),
                wapp_mflop: 2000.0,
                weight: 1.0,
            },
        ]
    }

    fn platform() -> Arc<Platform> {
        Arc::new(generator::lyon_cluster(30))
    }

    fn register(dir: &Path, tenant: &str) -> TenantSession {
        register_cached(dir, tenant, None)
    }

    fn register_cached(dir: &Path, tenant: &str, cache: Option<&PlanCache>) -> TenantSession {
        TenantSession::register(
            dir,
            tenant,
            "lyon30",
            platform(),
            &services2(),
            vec![2.0, 0.3],
            &SessionConfig {
                demand_alpha: 1.0,
                ..SessionConfig::default()
            },
            cache,
            true,
        )
        .expect("registration plans and claims cleanly")
    }

    #[test]
    fn register_observe_drain_lifecycle() {
        let dir = tmp_dir("lifecycle");
        let mut session = register(&dir, "acme");
        let outcome = session.observe(vec![2.0, 0.3], vec![]).unwrap();
        assert_eq!(outcome.tick, 1);
        assert!(outcome.migration.is_none());
        let status = session.status();
        assert_eq!(status.ticks, 1);
        assert!(status.plan.servers > 0);
        assert_eq!(status.plan.per_service_servers.len(), 2);
        let archived = session.drain().unwrap();
        assert!(archived.ends_with("acme.jsonl.drained"));
        // The id is free again.
        let _again = register(&dir, "acme");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn demand_jump_migrates_and_resume_replays_identically() {
        let dir = tmp_dir("resume");
        let mut session = register(&dir, "acme");
        for _ in 0..6 {
            session.observe(vec![2.0, 0.3], vec![]).unwrap();
        }
        for _ in 0..8 {
            session.observe(vec![2.0, 1.2], vec![]).unwrap();
        }
        assert!(
            !session.migrations().is_empty(),
            "a sustained 4x jump on the heavy service must migrate"
        );
        let live_status = session.status();
        let live_migrations = session.migrations().to_vec();
        drop(session);

        let lookup = |name: &str| (name == "lyon30").then(platform);
        let resumed = TenantSession::resume(&journal_path(&dir, "acme"), &lookup, true)
            .unwrap()
            .expect("journal is live, not drained");
        assert_eq!(resumed.status(), live_status);
        assert_eq!(resumed.migrations(), live_migrations.as_slice());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn resume_refuses_wrong_fingerprint_and_unknown_platform() {
        let dir = tmp_dir("fingerprint");
        let session = register(&dir, "acme");
        drop(session);
        let path = journal_path(&dir, "acme");

        let err = TenantSession::resume(&path, &|_| None, true).unwrap_err();
        assert!(matches!(err, ServeError::UnknownPlatform(_)));

        // Same name, different shape: the catalog changed underneath.
        let other = Arc::new(generator::lyon_cluster(31));
        let err = TenantSession::resume(&path, &|_| Some(other.clone()), true).unwrap_err();
        assert!(matches!(
            err,
            ServeError::Journal(JournalError::FingerprintMismatch { .. })
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn drained_journal_resumes_as_none() {
        let dir = tmp_dir("drained-resume");
        let mut session = register(&dir, "acme");
        session.observe(vec![2.0, 0.3], vec![]).unwrap();
        // Journal the drain but keep the live file: simulates a crash
        // after the drain record and before the archive rename.
        session.journal.lock().append(&Record::Drain).unwrap();
        drop(session);
        let lookup = |name: &str| (name == "lyon30").then(platform);
        let resumed = TenantSession::resume(&journal_path(&dir, "acme"), &lookup, true).unwrap();
        assert!(resumed.is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bad_observation_is_rejected_before_journaling() {
        let dir = tmp_dir("bad-obs");
        let mut session = register(&dir, "acme");
        let before = std::fs::read_to_string(session.journal.lock().path()).unwrap();
        assert!(matches!(
            session.observe(vec![2.0], vec![]),
            Err(ServeError::BadRequest(_))
        ));
        let sample = ExecutionSample {
            service: 9,
            duration: adept_platform::Seconds(1.0),
            power: adept_platform::MflopRate(400.0),
        };
        assert!(matches!(
            session.observe(vec![2.0, 0.3], vec![sample]),
            Err(ServeError::BadRequest(_))
        ));
        let after = std::fs::read_to_string(session.journal.lock().path()).unwrap();
        assert_eq!(before, after, "rejected input must never be journaled");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn preview_does_not_change_state_and_migrate_does() {
        let dir = tmp_dir("preview");
        let mut session = register(&dir, "acme");
        let status_before = session.status();
        let preview = session.preview(vec![2.0, 1.2]).unwrap();
        assert!(preview.changes > 0, "4x demand on the heavy service grows");
        assert_eq!(session.status(), status_before, "preview is a dry run");

        let migrated = session.migrate(vec![2.0, 1.2]).unwrap();
        let summary = migrated.expect("the previewed growth executes");
        assert_eq!(summary.reason, "operator replan");
        assert!(session.status().plan.servers >= status_before.plan.servers);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn tampered_migration_checkpoint_is_replay_divergence() {
        let dir = tmp_dir("divergence");
        let mut session = register(&dir, "acme");
        for _ in 0..6 {
            session.observe(vec![2.0, 0.3], vec![]).unwrap();
        }
        for _ in 0..8 {
            session.observe(vec![2.0, 1.2], vec![]).unwrap();
        }
        assert!(!session.migrations().is_empty());
        drop(session);
        let path = journal_path(&dir, "acme");
        let tampered = std::fs::read_to_string(&path)
            .unwrap()
            .replace("\"servers_after\":", "\"servers_after\":9");
        std::fs::write(&path, tampered).unwrap();
        let lookup = |name: &str| (name == "lyon30").then(platform);
        let err = TenantSession::resume(&path, &lookup, true).unwrap_err();
        assert!(matches!(
            err,
            ServeError::Journal(JournalError::ReplayDivergence { .. })
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn second_tenant_registers_from_an_exact_cache_hit() {
        let dir = tmp_dir("cache-register");
        let cache = PlanCache::new(8);
        let first = register_cached(&dir, "acme", Some(&cache));
        assert_eq!(cache.stats().insertions, 1, "cold register fills the cache");
        let second = register_cached(&dir, "globex", Some(&cache));
        let stats = cache.stats();
        assert_eq!(stats.exact_hits, 1, "identical question hits exactly");
        assert_eq!(stats.insertions, 1, "a hit inserts nothing new");
        // The cached answer is the cold answer, bit for bit.
        let (a, b) = (first.status().plan, second.status().plan);
        assert_eq!(a.rho.to_bits(), b.rho.to_bits());
        assert_eq!(a.servers, b.servers);
        assert_eq!(a.per_service_servers, b.per_service_servers);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn warm_sessions_count_warm_replans_and_cold_sessions_do_not() {
        let dir = tmp_dir("warm-count");
        let mut warm = register(&dir, "acme");
        let mut cold = TenantSession::register(
            &dir,
            "globex",
            "lyon30",
            platform(),
            &services2(),
            vec![2.0, 0.3],
            &SessionConfig {
                demand_alpha: 1.0,
                ..SessionConfig::default()
            },
            None,
            false,
        )
        .expect("registration plans and claims cleanly");
        // Force replan rounds; steady demand keeps the engine warm.
        for _ in 0..3 {
            warm.migrate(vec![2.0, 0.3]).unwrap();
            cold.migrate(vec![2.0, 0.3]).unwrap();
        }
        assert!(
            warm.status().warm_replans > 0,
            "warm mode reuses the engine"
        );
        assert_eq!(cold.status().warm_replans, 0, "ablation mode stays cold");
        assert_eq!(
            warm.status().plan.rho.to_bits(),
            cold.status().plan.rho.to_bits(),
            "warm replanning must not change the answer"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
