//! Model ↔ simulator agreement across the paper's regimes.
//!
//! The paper validates its model by comparing predictions against
//! measurements (Figures 2–5). These tests assert the same properties in
//! simulation: the prediction is an upper bound the ideal simulator
//! approaches, and the model's qualitative calls (which deployment wins,
//! whether an extra server helps) hold in measurement.

use adept::prelude::*;

fn ids(n: u32) -> Vec<NodeId> {
    (0..n).map(NodeId).collect()
}

fn measure(platform: &Platform, plan: &DeploymentPlan, svc: &ServiceSpec, clients: usize) -> f64 {
    let cfg = SimConfig::ideal().with_windows(Seconds(3.0), Seconds(20.0));
    measure_throughput(platform, plan, svc, clients, &cfg).throughput
}

fn predict(platform: &Platform, plan: &DeploymentPlan, svc: &ServiceSpec) -> f64 {
    ModelParams::from_platform(platform)
        .evaluate(platform, plan, svc)
        .rho
}

#[test]
fn figure2_shape_second_server_hurts_small_requests() {
    // DGEMM 10 is agent-limited: the model predicts the two-server star
    // is slower, and the simulator must agree.
    let platform = generator::lyon_cluster(3);
    let svc = Dgemm::new(10).service();
    let one = builder::star(&ids(2));
    let two = builder::star(&ids(3));
    assert!(predict(&platform, &two, &svc) < predict(&platform, &one, &svc));
    let m_one = measure(&platform, &one, &svc, 24);
    let m_two = measure(&platform, &two, &svc, 24);
    assert!(
        m_two < m_one,
        "measured: 2 SeDs ({m_two}) must be slower than 1 SeD ({m_one})"
    );
}

#[test]
fn figure4_shape_second_server_doubles_large_requests() {
    // DGEMM 200 is server-limited: the second server roughly doubles
    // throughput (paper: 35 -> 70 req/s measured).
    let platform = generator::lyon_cluster(3);
    let svc = Dgemm::new(200).service();
    let one = builder::star(&ids(2));
    let two = builder::star(&ids(3));
    let m_one = measure(&platform, &one, &svc, 16);
    let m_two = measure(&platform, &two, &svc, 16);
    let ratio = m_two / m_one;
    assert!(
        (1.7..2.2).contains(&ratio),
        "second server should ~double throughput, got {m_one} -> {m_two} ({ratio})"
    );
}

#[test]
fn prediction_upper_bounds_ideal_measurement() {
    for (nodes, size, clients) in [
        (2u32, 10u32, 16usize),
        (3, 200, 16),
        (5, 310, 32),
        (4, 1000, 16),
    ] {
        let platform = generator::lyon_cluster(nodes as usize);
        let svc = Dgemm::new(size).service();
        let plan = builder::star(&ids(nodes));
        let p = predict(&platform, &plan, &svc);
        let m = measure(&platform, &plan, &svc, clients);
        assert!(
            m <= p * 1.05,
            "dgemm-{size}: measured {m} must not exceed predicted {p}"
        );
        assert!(
            m >= p * 0.55,
            "dgemm-{size}: measured {m} too far below predicted {p}"
        );
    }
}

#[test]
fn model_ranking_holds_in_simulation() {
    // Three shapes on 16 heterogeneous nodes, DGEMM 310: the model's
    // ranking must be preserved by measurement.
    let platform = generator::heterogenized_cluster(
        "x",
        16,
        MflopRate(400.0),
        BackgroundLoad::default(),
        CapacityProbe::exact(),
        21,
    );
    let svc = Dgemm::new(310).service();
    let auto = HeuristicPlanner::paper()
        .plan(&platform, &svc, ClientDemand::Unbounded)
        .unwrap();
    let star = StarPlanner
        .plan(&platform, &svc, ClientDemand::Unbounded)
        .unwrap();

    let (p_auto, p_star) = (
        predict(&platform, &auto, &svc),
        predict(&platform, &star, &svc),
    );
    let (m_auto, m_star) = (
        measure(&platform, &auto, &svc, 64),
        measure(&platform, &star, &svc, 64),
    );
    assert!(p_auto >= p_star);
    assert!(
        m_auto >= m_star * 0.95,
        "simulated ranking must match the model: auto {m_auto} vs star {m_star}"
    );
}

#[test]
fn closed_loop_conservation() {
    let platform = generator::lyon_cluster(6);
    let svc = Dgemm::new(310).service();
    let plan = builder::star(&ids(6));
    let cfg = SimConfig::paper().with_windows(Seconds(2.0), Seconds(10.0));
    let out = measure_throughput(&platform, &plan, &svc, 12, &cfg);
    // Every issued request is either completed or still in flight, and
    // in-flight count equals the client population.
    assert_eq!(out.issued - out.completed, 12);
    // Per-server completions sum to the total service executions.
    let per_server: u64 = out.per_server_completions.iter().sum();
    assert!(per_server <= out.completed + 12);
    assert!(per_server >= out.completed.saturating_sub(12));
}
