//! Property-based tests (proptest) over the planners, the hierarchy
//! substrate, and the model.

use adept::prelude::*;
use proptest::prelude::*;

/// Random heterogeneous platform: n nodes, powers in [50, 800] MFlop/s.
fn arb_platform() -> impl Strategy<Value = Platform> {
    (3usize..40, 0u64..1000).prop_map(|(n, seed)| {
        generator::uniform_random_cluster("p", n, MflopRate(50.0), MflopRate(800.0), seed)
    })
}

/// Random service: DGEMM size in the paper's range.
fn arb_service() -> impl Strategy<Value = ServiceSpec> {
    (5u32..1200).prop_map(|n| Dgemm::new(n).service())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn heuristic_plans_are_valid_and_positive(
        platform in arb_platform(),
        service in arb_service(),
    ) {
        let plan = HeuristicPlanner::paper()
            .plan(&platform, &service, ClientDemand::Unbounded)
            .expect("platform has >= 3 nodes");
        // Structural validity (relaxed arity, as the simulator requires).
        prop_assert!(validate::validate_relaxed(&plan).is_empty());
        // Every plan node exists on the platform, no duplicates.
        prop_assert!(validate::validate_on(&plan, &platform)
            .iter()
            .all(|e| !matches!(e, validate::ValidationError::NodeNotOnPlatform(_))));
        // Positive predicted throughput.
        let rho = ModelParams::from_platform(&platform)
            .evaluate(&platform, &plan, &service)
            .rho;
        prop_assert!(rho > 0.0);
    }

    #[test]
    fn sweep_dominates_fixed_shapes(
        platform in arb_platform(),
        service in arb_service(),
    ) {
        let params = ModelParams::from_platform(&platform);
        let (_, sweep_rho) = SweepPlanner::default()
            .best_plan(&platform, &service)
            .expect("platform has >= 3 nodes");
        for planner in [&StarPlanner as &dyn Planner, &HomogeneousCsdPlanner::default()] {
            let plan = planner
                .plan(&platform, &service, ClientDemand::Unbounded)
                .expect("fits");
            let rho = params.evaluate(&platform, &plan, &service).rho;
            prop_assert!(
                sweep_rho >= rho - 1e-6,
                "sweep {} must dominate {} at {}",
                sweep_rho, planner.name(), rho
            );
        }
    }

    #[test]
    fn heuristic_beats_star_or_matches(
        platform in arb_platform(),
        service in arb_service(),
    ) {
        let params = ModelParams::from_platform(&platform);
        let heuristic = HeuristicPlanner::paper()
            .plan(&platform, &service, ClientDemand::Unbounded)
            .expect("fits");
        let star = StarPlanner
            .plan(&platform, &service, ClientDemand::Unbounded)
            .expect("fits");
        let h = params.evaluate(&platform, &heuristic, &service).rho;
        let s = params.evaluate(&platform, &star, &service).rho;
        prop_assert!(h >= s - 1e-6, "heuristic {h} must not lose to star {s}");
    }

    #[test]
    fn xml_roundtrip_preserves_structure(
        platform in arb_platform(),
        service in arb_service(),
    ) {
        let plan = HeuristicPlanner::paper()
            .plan(&platform, &service, ClientDemand::Unbounded)
            .expect("fits");
        let parsed = xml::parse_xml(&xml::write_xml(&plan, Some(&platform)))
            .expect("own descriptors parse");
        prop_assert!(parsed.structurally_eq(&plan));
    }

    #[test]
    fn adjacency_roundtrip_preserves_structure(
        platform in arb_platform(),
        service in arb_service(),
    ) {
        let plan = HeuristicPlanner::paper()
            .plan(&platform, &service, ClientDemand::Unbounded)
            .expect("fits");
        let rebuilt = AdjacencyMatrix::from_plan(&plan).to_plan().expect("tree");
        prop_assert!(rebuilt.structurally_eq(&plan));
    }

    #[test]
    fn csd_trees_span_all_nodes(degree in 2usize..12, n in 4u32..80) {
        let ids: Vec<NodeId> = (0..n).map(NodeId).collect();
        let plan = builder::csd_tree(&ids, degree);
        prop_assert_eq!(plan.len(), n as usize);
        // Degree bound respected everywhere.
        for a in plan.agents() {
            prop_assert!(plan.degree(a) <= degree);
        }
    }

    #[test]
    fn model_sched_monotone_in_degree(
        power in 50.0f64..1000.0,
        d in 1usize..100,
    ) {
        let params = ModelParams::new(MbitRate(100.0));
        let a = adept::core::model::throughput::sch_pow(&params, MflopRate(power), d);
        let b = adept::core::model::throughput::sch_pow(&params, MflopRate(power), d + 1);
        prop_assert!(b < a, "sched power must strictly decrease with degree");
    }

    #[test]
    fn model_service_crossover_law(
        powers in proptest::collection::vec(50.0f64..1000.0, 2..30),
        size in 5u32..1200,
    ) {
        // Adding server j helps iff its prediction time Wpre/w_j is below
        // the current per-request service time (Eq. 10): the numerator
        // grows by Wpre/Wapp while the denominator grows by w_j/Wapp, so
        // the ratio falls exactly when (Wpre/Wapp)/(w_j/Wapp) < num/den.
        // For tiny Wapp (prediction dominates the service itself!) extra
        // servers genuinely hurt — a real property of the paper's model.
        let params = ModelParams::new(MbitRate(100.0));
        let service = Dgemm::new(size).service();
        let wpre = params.calibration.server.wpre.value();
        let comp_time = |k: usize| {
            adept::core::model::compute::server_comp_time(
                &params,
                &service,
                powers[..k].iter().map(|&w| MflopRate(w)),
            )
            .expect("k >= 1")
            .value()
        };
        #[allow(clippy::needless_range_loop)] // k is a prefix length, not an index
        for k in 1..powers.len() {
            let before = comp_time(k);
            let after = comp_time(k + 1);
            let pred_time = wpre / powers[k];
            if pred_time < before - 1e-12 {
                prop_assert!(after <= before + 1e-12,
                    "cheap-prediction server must help: {before} -> {after}");
            } else if pred_time > before + 1e-12 {
                prop_assert!(after >= before - 1e-12,
                    "expensive-prediction server must hurt: {before} -> {after}");
            }
        }
    }

    #[test]
    fn mix_sweep_restricted_to_one_service_is_the_sweep(
        platform in arb_platform(),
        service in arb_service(),
    ) {
        // The mix-aware sweep reference on a single-service mix must be
        // the single-service sweep, bit for bit (plan and objective).
        let (plan, rho) = SweepPlanner::default()
            .best_plan(&platform, &service)
            .expect("fits");
        for objective in [MixObjective::WeightedMin, MixObjective::WeightedSum] {
            let got = SweepPlanner::default()
                .best_mix_plan(&platform, &ServiceMix::single(service.clone()), objective)
                .expect("fits");
            prop_assert!(got.plan.structurally_eq(&plan));
            prop_assert_eq!(got.objective_value.to_bits(), rho.to_bits());
        }
    }

    #[test]
    fn compositions_partition_their_space(total in 1usize..12, parts in 1usize..5) {
        // C(total-1, parts-1) distinct vectors, each summing to total.
        use adept::core::planner::sweep_mix::for_each_composition;
        let mut all: Vec<Vec<usize>> = Vec::new();
        for_each_composition(total, parts, |c| all.push(c.to_vec()));
        for c in &all {
            prop_assert!(c.iter().all(|&x| x >= 1), "{:?} has an empty part", c);
            prop_assert_eq!(c.iter().sum::<usize>(), total);
        }
        let seen: std::collections::BTreeSet<_> = all.iter().cloned().collect();
        prop_assert!(seen.len() == all.len(), "repeated composition");
        let count = all.len();
        let expected = if total < parts {
            0
        } else {
            // C(total - 1, parts - 1), small enough to compute exactly.
            let (mut num, mut den) = (1usize, 1usize);
            for i in 0..parts - 1 {
                num *= total - 1 - i;
                den *= i + 1;
            }
            num / den
        };
        prop_assert_eq!(count, expected);
    }

    #[test]
    fn demand_never_overshoots_resources(
        platform in arb_platform(),
        size in 50u32..1200,
        target in 0.5f64..50.0,
    ) {
        let service = Dgemm::new(size).service();
        let params = ModelParams::from_platform(&platform);
        let demand = ClientDemand::target(target);
        let capped = HeuristicPlanner::paper()
            .plan(&platform, &service, demand)
            .expect("fits");
        let unbounded = HeuristicPlanner::paper()
            .plan(&platform, &service, ClientDemand::Unbounded)
            .expect("fits");
        prop_assert!(capped.len() <= unbounded.len());
        // If the capped plan met the demand with fewer nodes, fine; if it
        // used as many as unbounded, the target was simply unreachable.
        let rho = params.evaluate(&platform, &capped, &service).rho;
        if capped.len() < unbounded.len() {
            prop_assert!(demand.satisfied_by(rho));
        }
    }
}
