//! Full-stack integration: platform generation → planning → XML →
//! deployment tool → simulator → model comparison.

use adept::prelude::*;

#[test]
fn plan_xml_deploy_simulate_roundtrip() {
    let platform = generator::heterogenized_cluster(
        "orsay",
        24,
        MflopRate(400.0),
        BackgroundLoad::default(),
        CapacityProbe::exact(),
        3,
    );
    let service = Dgemm::new(310).service();
    let params = ModelParams::from_platform(&platform);

    // Plan.
    let plan = HeuristicPlanner::paper()
        .plan(&platform, &service, ClientDemand::Unbounded)
        .expect("24 nodes suffice");
    assert!(validate::validate_relaxed(&plan).is_empty());

    // Serialize and re-parse the descriptor.
    let descriptor = xml::write_xml(&plan, Some(&platform));
    let parsed = xml::parse_xml(&descriptor).expect("own descriptor parses");
    assert!(parsed.structurally_eq(&plan));

    // Deploy (failure-free) and check the tool returns the same plan.
    let report = GoDiet::default()
        .deploy_xml(&platform, &descriptor)
        .expect("failure-free launch");
    assert!(report.plan.structurally_eq(&plan));

    // Simulate the running plan briefly; sanity-check against the model.
    let predicted = params.evaluate(&platform, &report.plan, &service).rho;
    let config = SimConfig::ideal().with_windows(Seconds(2.0), Seconds(10.0));
    let measured = measure_throughput(&platform, &report.plan, &service, 48, &config);
    assert!(measured.throughput > 0.0);
    assert!(
        measured.throughput <= predicted * 1.1,
        "simulation ({}) cannot beat the steady-state bound ({})",
        measured.throughput,
        predicted
    );
    assert!(
        measured.throughput >= predicted * 0.5,
        "simulation ({}) should reach a decent fraction of the bound ({})",
        measured.throughput,
        predicted
    );
}

#[test]
fn deployment_with_failures_still_simulates() {
    let platform = generator::lyon_cluster(30);
    let service = Dgemm::new(100).service();
    let plan = HeuristicPlanner::paper()
        .plan(&platform, &service, ClientDemand::Unbounded)
        .expect("30 nodes suffice");

    let tool = GoDiet::with_failures(0.3, 77);
    let report = tool
        .deploy(&platform, &plan)
        .expect("spares absorb failures");

    // Whatever GoDIET ended up with must still be a runnable deployment.
    let config = SimConfig::paper().with_windows(Seconds(1.0), Seconds(5.0));
    let out = measure_throughput(&platform, &report.plan, &service, 8, &config);
    assert!(out.throughput > 0.0);
    assert!(out.completed > 0);
}

#[test]
fn demand_target_is_respected_end_to_end() {
    let platform = generator::lyon_cluster(40);
    let service = Dgemm::new(1000).service();
    let params = ModelParams::from_platform(&platform);

    let demand = ClientDemand::target(3.0);
    let plan = HeuristicPlanner::paper()
        .plan(&platform, &service, demand)
        .expect("40 nodes suffice");
    let rho = params.evaluate(&platform, &plan, &service).rho;
    assert!(
        demand.satisfied_by(rho),
        "plan must meet the 3 req/s target"
    );
    assert!(
        plan.len() < 40,
        "meeting a modest target must not consume the whole platform"
    );
}

#[test]
fn adjacency_matrix_is_consistent_with_xml() {
    let platform = generator::lyon_cluster(20);
    let service = Dgemm::new(310).service();
    let plan = HeuristicPlanner::paper()
        .plan(&platform, &service, ClientDemand::Unbounded)
        .expect("20 nodes suffice");

    let via_matrix = AdjacencyMatrix::from_plan(&plan)
        .to_plan()
        .expect("plan matrices are trees");
    let via_xml = xml::parse_xml(&xml::write_xml(&plan, None)).expect("parses");
    assert!(via_matrix.structurally_eq(&via_xml));
}

#[test]
fn cli_binary_parses_and_plans() {
    // Exercise the installed binary end to end (model path only: fast).
    let exe = env!("CARGO_BIN_EXE_adept");
    let out = std::process::Command::new(exe)
        .args(["compare", "--nodes", "12", "--dgemm", "310"])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("heuristic"), "{text}");
    assert!(text.contains("star"), "{text}");

    let bad = std::process::Command::new(exe)
        .args(["frobnicate"])
        .output()
        .expect("binary runs");
    assert!(!bad.status.success());
}
