//! Property test: the incremental evaluation engine must match the full
//! Section-3 evaluator at every step of randomized mutation sequences.
//!
//! A [`DeploymentPlan`] and an [`IncrementalEval`] are mutated in lock
//! step by random attach / promote / move-child / undo operations on
//! heterogeneous platforms (the paper's background-load heterogenization),
//! and after **every** step the engine's `ρ`, `ρ_sched`, `ρ_service`, and
//! reported bottleneck *kind* are checked against a from-scratch
//! `ModelParams::evaluate` of the plan, to 1e-9 relative. Over a thousand
//! mutation steps are exercised across seeds and platform sizes.
//!
//! The **multi-service** half does the same for the batched evaluator: a
//! plan plus a server→service assignment is mutated by random
//! service-targeted attaches, promotions, moves, and undos, and after
//! every step each service's Eq. 15 rate, the shared `ρ_sched`, the mix
//! `ρ`, and the binding service are checked against a from-scratch
//! per-service evaluation (`evaluate_mix_full`), to 1e-9 relative —
//! including bit-exact unwinds of deep probe chains.

use adept::core::model::hetero::evaluate_hetero;
use adept::core::model::mix::{evaluate_mix_full, ServerAssignment};
use adept::platform::SiteId;
use adept::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One reversible mutation, as recorded for undo mirroring.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Attached `node` as a server (it became the last slot).
    Attach { slot: Slot },
    /// Promoted the server at `slot` to an agent.
    Promote { slot: Slot },
    /// Moved `child` from `old_parent` to a new parent.
    Move { child: Slot, old_parent: Slot },
    /// Reinstalled the server at `slot` for another service (mix
    /// harness only).
    Reassign { slot: Slot, old_service: usize },
}

struct Harness<'a> {
    platform: &'a Platform,
    service: &'a ServiceSpec,
    params: ModelParams,
    plan: DeploymentPlan,
    eval: IncrementalEval,
    log: Vec<Op>,
    steps_checked: usize,
}

impl<'a> Harness<'a> {
    fn new(platform: &'a Platform, service: &'a ServiceSpec) -> Self {
        Self::with_params(platform, service, ModelParams::from_platform(platform))
    }

    fn with_params(platform: &'a Platform, service: &'a ServiceSpec, params: ModelParams) -> Self {
        let ids = platform.ids_by_power_desc();
        let plan = DeploymentPlan::agent_server(ids[0], ids[1]);
        let eval = IncrementalEval::from_plan(&params, platform, &plan, service);
        Self {
            platform,
            service,
            params,
            plan,
            eval,
            log: Vec::new(),
            steps_checked: 0,
        }
    }

    fn check(&mut self, context: &str) {
        // On a multi-site platform the reference is the from-scratch
        // per-link evaluator (what `params.evaluate` dispatches to);
        // calling it directly keeps the contract explicit.
        let full = if self.params.uses_link_bandwidths(self.platform) {
            evaluate_hetero(&self.params, self.platform, &self.plan, self.service)
        } else {
            self.params
                .evaluate(self.platform, &self.plan, self.service)
        };
        let fast = self.eval.report();
        let rel = |a: f64, b: f64| (a - b).abs() <= 1e-9 * b.abs().max(1.0);
        assert!(
            rel(fast.rho, full.rho),
            "{context}: rho {} vs full {}\n{}",
            fast.rho,
            full.rho,
            self.plan.render()
        );
        assert!(
            rel(fast.rho_sched, full.rho_sched),
            "{context}: rho_sched {} vs {}",
            fast.rho_sched,
            full.rho_sched
        );
        assert!(
            rel(fast.rho_service, full.rho_service),
            "{context}: rho_service {} vs {}",
            fast.rho_service,
            full.rho_service
        );
        assert_eq!(
            std::mem::discriminant(&fast.bottleneck),
            std::mem::discriminant(&full.bottleneck),
            "{context}: bottleneck {:?} vs {:?}",
            fast.bottleneck,
            full.bottleneck
        );
        self.steps_checked += 1;
    }

    fn try_attach(&mut self, rng: &mut StdRng) -> bool {
        let unused: Vec<NodeId> = self
            .platform
            .nodes()
            .iter()
            .map(|r| r.id)
            .filter(|&id| !self.plan.uses_node(id))
            .collect();
        if unused.is_empty() {
            return false;
        }
        let node = unused[rng.gen_range(0..unused.len())];
        let agents: Vec<Slot> = self.plan.agents().collect();
        let parent = agents[rng.gen_range(0..agents.len())];
        let s1 = self.plan.add_server(parent, node).expect("node unused");
        let s2 = self
            .eval
            .add_server(parent, node, self.platform.power(node))
            .expect("node unused");
        assert_eq!(s1, s2, "slot alignment");
        self.log.push(Op::Attach { slot: s1 });
        true
    }

    fn try_promote(&mut self, rng: &mut StdRng) -> bool {
        let servers: Vec<Slot> = self.plan.servers().collect();
        if servers.is_empty() {
            return false;
        }
        let slot = servers[rng.gen_range(0..servers.len())];
        self.plan.convert_to_agent(slot).expect("is a server");
        self.eval.promote_to_agent(slot).expect("is a server");
        self.log.push(Op::Promote { slot });
        true
    }

    fn try_move(&mut self, rng: &mut StdRng) -> bool {
        if self.plan.len() < 3 {
            return false;
        }
        let child = Slot(rng.gen_range(1..self.plan.len()));
        let agents: Vec<Slot> = self.plan.agents().collect();
        let target = agents[rng.gen_range(0..agents.len())];
        let old_parent = self.plan.parent(child).expect("non-root");
        // Plan and engine must agree on rejection too.
        let plan_result = self.plan.move_child(child, target);
        let eval_result = self.eval.move_child(child, target);
        assert_eq!(
            plan_result.is_ok(),
            eval_result.is_ok(),
            "move {child} -> {target}: plan {plan_result:?} vs eval {eval_result:?}"
        );
        match eval_result {
            Ok(true) => {
                self.log.push(Op::Move { child, old_parent });
                true
            }
            // Rejected, or the same-parent no-op (nothing recorded on
            // the engine's undo stack — `move_child` returns false).
            Ok(false) | Err(_) => false,
        }
    }

    fn undo(&mut self) -> bool {
        let Some(op) = self.log.pop() else {
            return false;
        };
        assert!(self.eval.undo(), "engine undo stack in sync with the log");
        match op {
            Op::Attach { slot } => {
                self.plan
                    .remove_last(slot)
                    .expect("undo retracts the last slot");
            }
            Op::Promote { slot } => {
                self.plan
                    .convert_to_server(slot)
                    .expect("promotion is reverted before children attach");
            }
            Op::Move { child, old_parent } => {
                self.plan
                    .move_child(child, old_parent)
                    .expect("reverse move is always legal");
            }
            Op::Reassign { .. } => unreachable!("single-service harness never reassigns"),
        }
        true
    }

    /// Undoing a promote requires the promoted agent to be childless, and
    /// undoing an attach requires the slot to still be last — so undos are
    /// only drawn while the log's tail is safely reversible. The harness
    /// keeps it simple: undo is only offered directly after a reversible
    /// op, or in a full unwind at the end.
    fn run(&mut self, rng: &mut StdRng, steps: usize) {
        self.check("initial");
        for step in 0..steps {
            let acted = match rng.gen_range(0u32..10) {
                // Attach dominates: it grows the structure the other ops feed on.
                0..=4 => self.try_attach(rng),
                5..=6 => self.try_promote(rng),
                7..=8 => self.try_move(rng),
                _ => self.undo(),
            };
            if acted {
                self.check(&format!("step {step}"));
            }
        }
        // Full unwind back to the seed deployment, checking parity the
        // whole way down.
        while self.undo() {
            self.check("unwind");
        }
        assert_eq!(self.plan.len(), 2, "unwind returns to the seed pair");
    }
}

/// Multi-service mirror of [`Harness`]: plan + assignment + batched
/// evaluator mutated in lock step, checked per service after every step.
struct MixHarness<'a> {
    platform: &'a Platform,
    mix: &'a ServiceMix,
    params: ModelParams,
    plan: DeploymentPlan,
    assignment: ServerAssignment,
    eval: IncrementalEval,
    log: Vec<Op>,
    steps_checked: usize,
}

impl<'a> MixHarness<'a> {
    fn new(platform: &'a Platform, mix: &'a ServiceMix) -> Self {
        let params = ModelParams::from_platform(platform);
        let ids = platform.ids_by_power_desc();
        let mut plan = DeploymentPlan::with_root(ids[0]);
        let mut assignment = ServerAssignment::default();
        // One seed server per service so every partition starts non-empty.
        for j in 0..mix.len() {
            plan.add_server(plan.root(), ids[1 + j]).unwrap();
            assignment.service_of.insert(ids[1 + j], j);
        }
        let eval = IncrementalEval::from_plan_mix(&params, platform, &plan, mix, &assignment)
            .expect("seed assignment is complete");
        Self {
            platform,
            mix,
            params,
            plan,
            assignment,
            eval,
            log: Vec::new(),
            steps_checked: 0,
        }
    }

    fn check(&mut self, context: &str) {
        let full = evaluate_mix_full(
            &self.params,
            self.platform,
            &self.plan,
            self.mix,
            &self.assignment,
        );
        let fast = self.eval.mix_report();
        let rel = |a: f64, b: f64| (a - b).abs() <= 1e-9 * b.abs().max(1.0);
        assert!(
            rel(fast.rho, full.rho),
            "{context}: mix rho {} vs full {}\n{}",
            fast.rho,
            full.rho,
            self.plan.render()
        );
        assert!(
            rel(fast.rho_sched, full.rho_sched),
            "{context}: rho_sched {} vs {}",
            fast.rho_sched,
            full.rho_sched
        );
        for j in 0..self.mix.len() {
            assert!(
                rel(fast.rho_service[j], full.rho_service[j]),
                "{context}: service {j} rate {} vs {}",
                fast.rho_service[j],
                full.rho_service[j]
            );
        }
        assert_eq!(
            fast.binding_service, full.binding_service,
            "{context}: binding service"
        );
        self.steps_checked += 1;
    }

    fn try_attach(&mut self, rng: &mut StdRng) -> bool {
        let unused: Vec<NodeId> = self
            .platform
            .nodes()
            .iter()
            .map(|r| r.id)
            .filter(|&id| !self.plan.uses_node(id))
            .collect();
        if unused.is_empty() {
            return false;
        }
        let node = unused[rng.gen_range(0..unused.len())];
        let service = rng.gen_range(0..self.mix.len());
        let agents: Vec<Slot> = self.plan.agents().collect();
        let parent = agents[rng.gen_range(0..agents.len())];
        let s1 = self.plan.add_server(parent, node).expect("node unused");
        let s2 = self
            .eval
            .add_server_for(parent, node, self.platform.power(node), service)
            .expect("node unused");
        assert_eq!(s1, s2, "slot alignment");
        self.assignment.service_of.insert(node, service);
        self.log.push(Op::Attach { slot: s1 });
        true
    }

    fn try_promote(&mut self, rng: &mut StdRng) -> bool {
        let servers: Vec<Slot> = self.plan.servers().collect();
        if servers.is_empty() {
            return false;
        }
        let slot = servers[rng.gen_range(0..servers.len())];
        self.plan.convert_to_agent(slot).expect("is a server");
        self.eval.promote_to_agent(slot).expect("is a server");
        // The reference evaluation reads the assignment map, so the
        // promoted node must leave it (the engine remembers the service
        // internally for demotion symmetry).
        self.assignment.service_of.remove(&self.plan.node(slot));
        self.log.push(Op::Promote { slot });
        true
    }

    fn try_move(&mut self, rng: &mut StdRng) -> bool {
        if self.plan.len() < 3 {
            return false;
        }
        let child = Slot(rng.gen_range(1..self.plan.len()));
        let agents: Vec<Slot> = self.plan.agents().collect();
        let target = agents[rng.gen_range(0..agents.len())];
        let old_parent = self.plan.parent(child).expect("non-root");
        let plan_result = self.plan.move_child(child, target);
        let eval_result = self.eval.move_child(child, target);
        assert_eq!(plan_result.is_ok(), eval_result.is_ok());
        match eval_result {
            Ok(true) => {
                self.log.push(Op::Move { child, old_parent });
                true
            }
            Ok(false) | Err(_) => false,
        }
    }

    fn try_reassign(&mut self, rng: &mut StdRng) -> bool {
        let servers: Vec<Slot> = self.plan.servers().collect();
        if servers.is_empty() {
            return false;
        }
        let slot = servers[rng.gen_range(0..servers.len())];
        let service = rng.gen_range(0..self.mix.len());
        let old_service = self.eval.service_of(slot);
        if !self
            .eval
            .reassign_server(slot, service)
            .expect("slot is a server of the mix")
        {
            return false; // same-service no-op: nothing recorded
        }
        self.assignment
            .service_of
            .insert(self.plan.node(slot), service);
        self.log.push(Op::Reassign { slot, old_service });
        true
    }

    fn undo(&mut self) -> bool {
        let Some(op) = self.log.pop() else {
            return false;
        };
        assert!(self.eval.undo(), "engine undo stack in sync with the log");
        match op {
            Op::Attach { slot } => {
                self.assignment.service_of.remove(&self.plan.node(slot));
                self.plan
                    .remove_last(slot)
                    .expect("undo retracts the last slot");
            }
            Op::Promote { slot } => {
                self.plan
                    .convert_to_server(slot)
                    .expect("promotion is reverted before children attach");
                // Back into the partition, under its remembered service.
                self.assignment
                    .service_of
                    .insert(self.plan.node(slot), self.eval.service_of(slot));
            }
            Op::Move { child, old_parent } => {
                self.plan
                    .move_child(child, old_parent)
                    .expect("reverse move is always legal");
            }
            Op::Reassign { slot, old_service } => {
                self.assignment
                    .service_of
                    .insert(self.plan.node(slot), old_service);
            }
        }
        true
    }

    fn run(&mut self, rng: &mut StdRng, steps: usize) {
        self.check("initial");
        for step in 0..steps {
            let acted = match rng.gen_range(0u32..10) {
                0..=3 => self.try_attach(rng),
                4..=5 => self.try_promote(rng),
                6 => self.try_move(rng),
                7..=8 => self.try_reassign(rng),
                _ => self.undo(),
            };
            if acted {
                self.check(&format!("step {step}"));
            }
        }
        while self.undo() {
            self.check("unwind");
        }
        assert_eq!(
            self.plan.len(),
            1 + self.mix.len(),
            "unwind returns to the seed deployment"
        );
    }
}

#[test]
fn incremental_matches_full_eval_on_randomized_sequences() {
    let mut total_steps = 0;
    for (size, seed) in [(20usize, 7u64), (35, 11), (50, 23), (64, 42)] {
        let platform = generator::heterogenized_cluster(
            "orsay",
            size,
            MflopRate(400.0),
            BackgroundLoad::default(),
            CapacityProbe::exact(),
            seed,
        );
        for dgemm in [10u32, 310, 1000] {
            let service = Dgemm::new(dgemm).service();
            let mut harness = Harness::new(&platform, &service);
            let mut rng = StdRng::seed_from_u64(seed ^ (dgemm as u64) << 8);
            harness.run(&mut rng, 120);
            total_steps += harness.steps_checked;
        }
    }
    assert!(
        total_steps >= 1000,
        "property test must exercise >= 1000 checked mutations, got {total_steps}"
    );
}

#[test]
fn batched_mix_matches_per_service_full_eval_on_randomized_sequences() {
    let mut total_steps = 0;
    for (size, seed) in [(24usize, 3u64), (40, 17), (56, 29)] {
        let platform = generator::heterogenized_cluster(
            "orsay",
            size,
            MflopRate(400.0),
            BackgroundLoad::default(),
            CapacityProbe::exact(),
            seed,
        );
        for weights in [
            vec![1.0, 1.0],
            vec![4.0, 2.0, 1.0],
            vec![3.0, 1.0, 1.0, 1.0],
        ] {
            let mix = ServiceMix::new(
                weights
                    .iter()
                    .enumerate()
                    .map(|(i, &w)| (Dgemm::new(100 + 200 * i as u32).service(), w))
                    .collect(),
            );
            let mut harness = MixHarness::new(&platform, &mix);
            let mut rng = StdRng::seed_from_u64(seed ^ (weights.len() as u64) << 16);
            harness.run(&mut rng, 120);
            total_steps += harness.steps_checked;
        }
    }
    assert!(
        total_steps >= 800,
        "mix property test must exercise >= 800 checked mutations, got {total_steps}"
    );
}

#[test]
fn mix_undo_is_bit_exact_after_deep_probe_chains() {
    let platform = generator::heterogenized_cluster(
        "orsay",
        40,
        MflopRate(400.0),
        BackgroundLoad::default(),
        CapacityProbe::exact(),
        13,
    );
    let mix = ServiceMix::new(vec![
        (Dgemm::new(100).service(), 2.0),
        (Dgemm::new(310).service(), 1.0),
        (Dgemm::new(1000).service(), 1.0),
    ]);
    let mut harness = MixHarness::new(&platform, &mix);
    let mut rng = StdRng::seed_from_u64(77);
    let baseline_rho = harness.eval.rho();
    let baseline_rates: Vec<u64> = (0..mix.len())
        .map(|j| harness.eval.rho_service_of(j).to_bits())
        .collect();
    for _ in 0..150 {
        let depth = rng.gen_range(1usize..6);
        let mut applied = 0;
        for _ in 0..depth {
            let acted = match rng.gen_range(0u32..4) {
                0 => harness.try_attach(&mut rng),
                1 => harness.try_promote(&mut rng),
                2 => harness.try_move(&mut rng),
                _ => harness.try_reassign(&mut rng),
            };
            if acted {
                applied += 1;
            }
        }
        for _ in 0..applied {
            assert!(harness.undo());
        }
        assert_eq!(
            harness.eval.rho().to_bits(),
            baseline_rho.to_bits(),
            "mix probe chains must unwind bit-exactly"
        );
        for (j, &bits) in baseline_rates.iter().enumerate() {
            assert_eq!(
                harness.eval.rho_service_of(j).to_bits(),
                bits,
                "service {j} must unwind bit-exactly"
            );
        }
    }
}

#[test]
fn site_aware_incremental_matches_evaluate_hetero_on_randomized_sequences() {
    // Every delta + undo of the site-aware engine checked against the
    // from-scratch per-link evaluator at 1e-9, across site counts,
    // inter-site bandwidths, and DGEMM sizes — including a run with an
    // explicit client site.
    let mut total_steps = 0;
    for (sites, per_site, inter, seed) in [
        (2usize, 14usize, 5.0f64, 7u64),
        (3, 9, 10.0, 19),
        (4, 7, 25.0, 33),
    ] {
        let platform = generator::multi_site_grid(
            sites,
            per_site,
            MflopRate(400.0),
            MbitRate(100.0),
            MbitRate(inter),
            seed,
        );
        for dgemm in [10u32, 310, 1000] {
            let service = Dgemm::new(dgemm).service();
            let mut harness = Harness::new(&platform, &service);
            assert!(
                harness.eval.is_site_aware(),
                "multi-site platforms engage the site-aware engine"
            );
            let mut rng = StdRng::seed_from_u64(seed ^ ((dgemm as u64) << 8));
            harness.run(&mut rng, 120);
            total_steps += harness.steps_checked;
        }
        // Clients declared on the last site: root parent links and
        // Eq. 15 transfers cross the WAN for every other site.
        let service = Dgemm::new(310).service();
        let params =
            ModelParams::from_platform(&platform).with_client_site(SiteId(sites as u16 - 1));
        let mut harness = Harness::with_params(&platform, &service, params);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xC11E57);
        harness.run(&mut rng, 80);
        total_steps += harness.steps_checked;
    }
    assert!(
        total_steps >= 800,
        "multi-site property test must exercise >= 800 checked mutations, got {total_steps}"
    );
}

#[test]
fn site_aware_flag_is_bit_inert_on_uniform_networks() {
    // On a homogeneous network the site-aware machinery must never
    // engage: the default (site-aware) engine and the explicitly
    // scalarized one walk the same randomized delta sequence with
    // bit-identical state at every step — the single-site fast path of
    // the refactor costs nothing.
    let platform = generator::heterogenized_cluster(
        "orsay",
        40,
        MflopRate(400.0),
        BackgroundLoad::default(),
        CapacityProbe::exact(),
        17,
    );
    let service = Dgemm::new(310).service();
    let mut aware = Harness::new(&platform, &service);
    assert!(!aware.eval.is_site_aware(), "uniform network: fast path");
    let mut scalar = Harness::with_params(
        &platform,
        &service,
        ModelParams::from_platform(&platform).scalarized(),
    );
    let mut rng_a = StdRng::seed_from_u64(4242);
    let mut rng_b = StdRng::seed_from_u64(4242);
    for step in 0..150 {
        let op = rng_a.gen_range(0u32..10);
        assert_eq!(op, rng_b.gen_range(0u32..10));
        let (acted_a, acted_b) = match op {
            0..=4 => (aware.try_attach(&mut rng_a), scalar.try_attach(&mut rng_b)),
            5..=6 => (
                aware.try_promote(&mut rng_a),
                scalar.try_promote(&mut rng_b),
            ),
            7..=8 => (aware.try_move(&mut rng_a), scalar.try_move(&mut rng_b)),
            _ => (aware.undo(), scalar.undo()),
        };
        assert_eq!(acted_a, acted_b, "step {step}: divergent action");
        assert_eq!(
            aware.eval.rho().to_bits(),
            scalar.eval.rho().to_bits(),
            "step {step}: rho must stay bit-identical on a uniform network"
        );
        assert_eq!(
            aware.eval.rho_sched().to_bits(),
            scalar.eval.rho_sched().to_bits(),
            "step {step}: rho_sched"
        );
        assert_eq!(
            aware.eval.rho_service().to_bits(),
            scalar.eval.rho_service().to_bits(),
            "step {step}: rho_service"
        );
    }
}

/// Builds a randomized demand walk with plateaus: each drawn rate is
/// held for 2–4 steps, so the warm engine sees both demand changes
/// (delta-apply) and steady-state repeats (memo short-circuit).
fn demand_walk(rng: &mut StdRng, steps: usize, lo: f64, hi: f64) -> Vec<f64> {
    let mut walk = Vec::with_capacity(steps);
    while walk.len() < steps {
        let rate = rng.gen_range(lo..hi);
        for _ in 0..rng.gen_range(2usize..5) {
            walk.push(rate);
        }
    }
    walk.truncate(steps);
    walk
}

#[test]
fn warm_replan_matches_cold_replan_on_randomized_demand_walks() {
    // The warm-started reviser must be a pure acceleration: at every
    // step of a randomized demand walk, `replan_warm` (persistent
    // engine state threaded across calls) and a cold `replan` of the
    // same incumbent must produce the same plan and bit-equal ρ. The
    // walk adopts the warm result, so any divergence would compound —
    // and the warm path must actually engage (hits > 0), or the test
    // would only be comparing cold to cold.
    for (size, seed) in [(30usize, 7u64), (48, 21)] {
        let platform = generator::heterogenized_cluster(
            "orsay",
            size,
            MflopRate(400.0),
            BackgroundLoad::default(),
            CapacityProbe::exact(),
            seed,
        );
        let service = Dgemm::new(310).service();
        let planner = OnlinePlanner {
            max_changes: 6,
            ..Default::default()
        };
        let mut running = HeuristicPlanner::paper()
            .plan(&platform, &service, ClientDemand::Target(2.0))
            .expect("platform fits the seed demand");
        let mut warm = WarmCache::new();
        let mut rng = StdRng::seed_from_u64(seed ^ 0x3A17);
        for (step, rate) in demand_walk(&mut rng, 60, 0.5, 8.0).into_iter().enumerate() {
            // Occasionally simulate an external plan mutation: the
            // caller-owned invalidation must also preserve parity.
            if step % 17 == 16 {
                warm.invalidate();
            }
            let demand = ClientDemand::Target(rate);
            let warm_r = planner.replan_warm(&platform, &running, &service, demand, &mut warm);
            let cold_r = planner.replan(&platform, &running, &service, demand);
            assert!(
                warm_r.plan.structurally_eq(&cold_r.plan),
                "step {step} (rate {rate}): warm and cold plans diverge"
            );
            assert_eq!(
                warm_r.rho.to_bits(),
                cold_r.rho.to_bits(),
                "step {step} (rate {rate}): warm rho must be bit-equal to cold"
            );
            assert_eq!(
                warm_r.diff.len(),
                cold_r.diff.len(),
                "step {step} (rate {rate}): diffs diverge"
            );
            running = warm_r.plan;
        }
        assert!(
            warm.hits() > 0,
            "size {size}: the plateaus must engage the warm path ({} misses)",
            warm.misses()
        );
    }
}

#[test]
fn warm_mix_replan_matches_cold_on_randomized_demand_walks() {
    // Mix counterpart: plan + assignment walk through randomized
    // per-service demand vectors, warm vs cold in lock step. Plans,
    // assignments, reassignments, and every reported rate must agree
    // bit for bit at each step.
    for (size, seed) in [(28usize, 5u64), (44, 31)] {
        let platform = generator::heterogenized_cluster(
            "orsay",
            size,
            MflopRate(400.0),
            BackgroundLoad::default(),
            CapacityProbe::exact(),
            seed,
        );
        let mix = ServiceMix::new(vec![
            (Dgemm::new(310).service(), 2.0),
            (Dgemm::new(700).service(), 1.0),
            (Dgemm::new(1000).service(), 1.0),
        ]);
        let planner = OnlinePlanner {
            max_changes: 8,
            ..Default::default()
        };
        let seed_demand = MixDemand::targets(vec![1.0, 0.5, 0.4]);
        let got = MixPlanner::default()
            .plan_mix(&platform, &mix, &seed_demand)
            .expect("platform fits the seed demand");
        let (mut running, mut assignment) = (got.plan, got.assignment);
        let mut warm = WarmCache::new();
        let mut rng = StdRng::seed_from_u64(seed ^ 0x9B2E);
        let walks: Vec<Vec<f64>> = (0..mix.len())
            .map(|j| demand_walk(&mut rng, 40, 0.2, 2.5 - 0.5 * j as f64))
            .collect();
        for step in 0..40 {
            let rates: Vec<f64> = walks.iter().map(|w| w[step]).collect();
            let demand = MixDemand::targets(rates.clone());
            let warm_r = planner
                .replan_mix_warm(&platform, &running, &mix, &assignment, &demand, &mut warm)
                .expect("revision is routine");
            let cold_r = planner
                .replan_mix(&platform, &running, &mix, &assignment, &demand)
                .expect("revision is routine");
            assert!(
                warm_r.plan.structurally_eq(&cold_r.plan),
                "step {step} ({rates:?}): warm and cold plans diverge"
            );
            assert_eq!(
                warm_r.assignment, cold_r.assignment,
                "step {step} ({rates:?}): assignments diverge"
            );
            assert_eq!(
                warm_r.reassigned, cold_r.reassigned,
                "step {step} ({rates:?}): reassignments diverge"
            );
            assert_eq!(
                warm_r.report.rho.to_bits(),
                cold_r.report.rho.to_bits(),
                "step {step} ({rates:?}): mix rho must be bit-equal"
            );
            for j in 0..mix.len() {
                assert_eq!(
                    warm_r.report.rho_service[j].to_bits(),
                    cold_r.report.rho_service[j].to_bits(),
                    "step {step} ({rates:?}): service {j} rate must be bit-equal"
                );
            }
            running = warm_r.plan;
            assignment = warm_r.assignment;
        }
        assert!(
            warm.hits() > 0,
            "size {size}: the plateaus must engage the warm path ({} misses)",
            warm.misses()
        );
    }
}

#[test]
fn undo_is_bit_exact_after_deep_probe_chains() {
    let platform = generator::heterogenized_cluster(
        "orsay",
        40,
        MflopRate(400.0),
        BackgroundLoad::default(),
        CapacityProbe::exact(),
        5,
    );
    let service = Dgemm::new(310).service();
    let mut harness = Harness::new(&platform, &service);
    let mut rng = StdRng::seed_from_u64(99);
    let baseline = harness.eval.rho();
    for _ in 0..200 {
        // Random probe chains of depth 1..6, always fully retracted.
        let depth = rng.gen_range(1usize..6);
        let mut applied = 0;
        for _ in 0..depth {
            let acted = match rng.gen_range(0u32..3) {
                0 => harness.try_attach(&mut rng),
                1 => harness.try_promote(&mut rng),
                _ => harness.try_move(&mut rng),
            };
            if acted {
                applied += 1;
            }
        }
        for _ in 0..applied {
            assert!(harness.undo());
        }
        assert_eq!(
            harness.eval.rho().to_bits(),
            baseline.to_bits(),
            "probe chains must unwind bit-exactly"
        );
    }
}
