//! Randomized SIMD-vs-scalar parity: the batched Eq. 14 evaluator
//! ([`sched_throughput`]) against the sequential reference
//! ([`sched_throughput_scalar`]) over randomized deployment trees on
//! uniform and multi-site platforms.
//!
//! The batched kernels promise **bit-exactness** — each lane performs
//! the scalar kernel's floating-point operations in the same order, and
//! the chunked max reduction keeps the sequential scan's first-max tie
//! rule — so the assertions here compare `to_bits`, not tolerances. The
//! per-kernel lane parity (cycles, rates, sort keys) is pinned by
//! `model::batch::tests`; this suite covers the composed path: role
//! split, lane scatter, reduction, and bottleneck attribution on trees
//! with random shapes, duplicate powers (tie territory), and every
//! degree from leaf-heavy stars to agent chains.
//!
//! [`sched_throughput`]: adept::core::model::throughput::sched_throughput
//! [`sched_throughput_scalar`]: adept::core::model::throughput::sched_throughput_scalar

use adept::core::model::throughput::{sched_throughput, sched_throughput_scalar};
use adept::core::model::ModelParams;
use adept::prelude::*;
use generator::{multi_site_grid, uniform_random_cluster};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Grows a random rooted tree over every node of `platform`: each node
/// attaches under a uniformly chosen existing agent, becoming an agent
/// itself with probability `agent_bias`.
fn random_plan(platform: &Platform, rng: &mut StdRng, agent_bias: f64) -> DeploymentPlan {
    let ids = platform.ids_by_power_desc();
    let mut plan = DeploymentPlan::with_root(ids[0]);
    let mut agents = vec![plan.root()];
    for &id in &ids[1..] {
        let parent = agents[rng.gen_range(0..agents.len())];
        if rng.gen_range(0.0..1.0) < agent_bias {
            let slot = plan.add_agent(parent, id).expect("fresh node");
            agents.push(slot);
        } else {
            plan.add_server(parent, id).expect("fresh node");
        }
    }
    plan
}

fn assert_parity(params: &ModelParams, platform: &Platform, plan: &DeploymentPlan, ctx: &str) {
    let (batched, b_who) = sched_throughput(params, platform, plan);
    let (scalar, s_who) = sched_throughput_scalar(params, platform, plan);
    assert_eq!(
        batched.to_bits(),
        scalar.to_bits(),
        "{ctx}: batched {batched} vs scalar {scalar}"
    );
    assert_eq!(b_who, s_who, "{ctx}: bottleneck attribution must agree");
}

#[test]
fn batched_sched_throughput_matches_scalar_on_uniform_platforms() {
    for (n, seed) in [(2usize, 1u64), (17, 2), (64, 3), (201, 4), (1000, 5)] {
        let platform = uniform_random_cluster("p", n, MflopRate(50.0), MflopRate(500.0), seed);
        let params = ModelParams::from_platform(&platform);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xC0FFEE);
        for round in 0..8 {
            // Sweep the shape space: server-only stars through
            // agent-heavy chains (high bias → deep, low-degree trees).
            let bias = [0.0, 0.05, 0.2, 0.5, 0.8][round % 5];
            let plan = random_plan(&platform, &mut rng, bias);
            assert_parity(
                &params,
                &platform,
                &plan,
                &format!("uniform n={n} seed={seed} round={round}"),
            );
        }
    }
}

#[test]
fn batched_sched_throughput_matches_scalar_on_multi_site_platforms() {
    for (sites, per_site, seed) in [(2usize, 30usize, 11u64), (4, 50, 12), (3, 333, 13)] {
        let platform = multi_site_grid(
            sites,
            per_site,
            MflopRate(400.0),
            MbitRate(100.0),
            MbitRate(10.0),
            seed,
        );
        // Both the site-aware default and the min-B scalarization feed
        // Eq. 14 through the same batched kernels.
        for params in [
            ModelParams::from_platform(&platform),
            ModelParams::from_platform(&platform).scalarized(),
        ] {
            let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(997));
            for round in 0..6 {
                let bias = [0.0, 0.1, 0.4][round % 3];
                let plan = random_plan(&platform, &mut rng, bias);
                assert_parity(
                    &params,
                    &platform,
                    &plan,
                    &format!("{sites}x{per_site} seed={seed} round={round}"),
                );
            }
        }
    }
}

#[test]
fn parity_holds_on_degenerate_shapes() {
    // A uniform-power platform makes every agent cycle of equal degree
    // collide exactly — the first-max tie rule is all that decides the
    // bottleneck slot. The grid generator with a power spread of zero
    // gives identical powers.
    let platform = multi_site_grid(1, 40, MflopRate(250.0), MbitRate(100.0), MbitRate(100.0), 3);
    let params = ModelParams::from_platform(&platform);
    let ids = platform.ids_by_power_desc();

    // A pure star: one agent, 39 servers (ties among all servers).
    let mut star = DeploymentPlan::with_root(ids[0]);
    for &id in &ids[1..] {
        star.add_server(star.root(), id).expect("fresh node");
    }
    assert_parity(&params, &platform, &star, "uniform star");

    // A pure agent chain: every slot an agent of degree ≤ 1.
    let mut chain = DeploymentPlan::with_root(ids[0]);
    let mut tail = chain.root();
    for &id in &ids[1..] {
        tail = chain.add_agent(tail, id).expect("fresh node");
    }
    assert_parity(&params, &platform, &chain, "uniform chain");

    // The minimal deployment.
    let pair = DeploymentPlan::agent_server(ids[0], ids[1]);
    assert_parity(&params, &platform, &pair, "agent-server pair");
}
