//! End-to-end acceptance of the autonomic replanning control loop.
//!
//! A scripted demand-shift scenario — ramp, plateau, spike — on a
//! **2-site platform** with a **3-service mix** runs entirely through
//! [`Controller::tick`]: no manual replan call anywhere. The tests pin
//! the loop's contract:
//!
//! * the forecast-drift trigger (not an operator) starts every round;
//! * each migration script is stage-ordered: parents launch before
//!   their children, teardown runs deepest-first;
//! * an injected node failure mid-migration is survived via spare-node
//!   substitution, and the controller adopts the substituted node;
//! * after every migration the simulator's measured throughput tracks
//!   the model's prediction within 10%;
//! * hysteresis holds replans to ≤ 1 per sustained demand level.

use adept::prelude::*;

/// Light / mid / heavy DGEMM mix: per-server service rates of roughly
/// 6.7, 0.58 and 0.2 req/s on a 400 MFlop/s node, so the mid and heavy
/// services translate demand shifts into real server-count changes.
fn mix3() -> ServiceMix {
    ServiceMix::new(vec![
        (Dgemm::new(310).service(), 2.0),
        (Dgemm::new(700).service(), 1.0),
        (Dgemm::new(1000).service(), 1.0),
    ])
}

/// Two 30-node sites, fast LAN, 10 Mb/s WAN between them.
fn two_site_platform() -> Platform {
    generator::multi_site_grid(2, 30, MflopRate(400.0), MbitRate(100.0), MbitRate(10.0), 7)
}

fn controller_with(
    platform: &std::sync::Arc<Platform>,
    mix: &ServiceMix,
    planned: &MixDemand,
    tool: GoDiet,
) -> Controller {
    let got = MixPlanner::default()
        .plan_mix(platform, mix, planned)
        .expect("60 nodes fit the initial demand");
    Controller::new(
        platform.clone(),
        mix.clone(),
        got.plan,
        got.assignment,
        planned,
        Box::new(OnlinePlanner {
            max_changes: 20,
            ..Default::default()
        }),
        tool,
        ControllerConfig {
            triggers: vec![TriggerPolicy::ForecastDrift { threshold: 0.2 }],
            demand_alpha: 1.0, // scripted scenario: the last window is the truth
            ..Default::default()
        },
    )
}

/// Every launch/restart registering with a parent that the script
/// itself brings up must sit in a strictly later stage than that
/// parent — parents before children, the launch-stage rule applied to
/// the changed subset.
fn assert_stage_ordered(script: &MigrationScript) {
    use std::collections::HashMap;
    let mut up_stage: HashMap<NodeId, usize> = HashMap::new();
    for (i, stage) in script.stages.iter().enumerate() {
        for action in stage {
            match *action {
                MigrationAction::Launch { node, .. } => {
                    up_stage.insert(node, i);
                }
                MigrationAction::Restart {
                    node,
                    to: Role::Agent,
                    ..
                } => {
                    up_stage.insert(node, i);
                }
                _ => {}
            }
        }
    }
    for (i, stage) in script.stages.iter().enumerate() {
        for action in stage {
            let parent = match *action {
                MigrationAction::Launch { parent, .. } => Some(parent),
                MigrationAction::Restart { parent, .. } => Some(parent),
                MigrationAction::Reattach { new_parent, .. } => Some(new_parent),
                MigrationAction::Stop { .. } => None,
            };
            if let Some(p) = parent {
                if let Some(&ps) = up_stage.get(&p) {
                    assert!(
                        ps < i,
                        "stage {i}: {action} registers with {p}, which only comes up in stage {ps}"
                    );
                }
            }
        }
    }
}

/// Measures the migrated deployment in the discrete-event simulator and
/// checks its sustained throughput lands within 10% of the model's
/// prediction.
///
/// The offered load is shaped like the demand the controller planned
/// for (request shares ∝ the forecast rates) and offered at exactly
/// the rate the model predicts the deployment sustains for that shape —
/// so an over-promising model shows up as a growing backlog and a
/// measured rate below 90% of the prediction.
fn assert_sim_tracks_model(
    platform: &Platform,
    plan: &DeploymentPlan,
    mix: &ServiceMix,
    assignment: &ServerAssignment,
    demand: &[f64],
) {
    let demand_mix = ServiceMix::new(
        mix.services()
            .iter()
            .cloned()
            .zip(demand.iter().copied())
            .collect(),
    );
    let predicted = adept::core::model::mix::evaluate_mix(
        &ModelParams::from_platform(platform),
        platform,
        plan,
        &demand_mix,
        assignment,
    )
    .expect("controller state is consistent")
    .rho;
    let pairs: Vec<(NodeId, usize)> = assignment
        .service_of
        .iter()
        .map(|(&n, &s)| (n, s))
        .collect();
    // Short `measure` so the [warmup, last arrival + measure] window
    // stays essentially the arrival span.
    let cfg = SimConfig::ideal().with_windows(Seconds(5.0), Seconds(1.0));
    let arrivals = ArrivalProcess::Uniform { rate: predicted }.arrivals(Seconds(95.0));
    let mut sim = Simulation::new_mix(platform, plan, &demand_mix, &pairs, cfg);
    let measured = sim.run_open_loop(&arrivals, &cfg).throughput;
    let ratio = measured / predicted;
    assert!(
        (0.9..=1.1).contains(&ratio),
        "simulated {measured:.3} req/s vs predicted {predicted:.3} req/s (ratio {ratio:.3})"
    );
}

#[test]
fn scripted_ramp_plateau_spike_runs_hands_off() {
    let platform = std::sync::Arc::new(two_site_platform());
    let mix = mix3();
    let planned = MixDemand::targets(vec![1.0, 0.5, 0.4]);
    // Failure injection on: migration launches can fail and must be
    // healed by spare substitution, invisibly to the operator.
    let mut c = controller_with(&platform, &mix, &planned, GoDiet::with_failures(0.55, 23));

    // The scripted day: (per-tick observed rates, sustained per phase).
    let phases: &[(usize, [f64; 3])] = &[
        (6, [1.0, 0.5, 0.4]), // steady at the planned level
        (6, [1.0, 0.5, 0.8]), // ramp step 1: heavy service doubles
        (6, [1.0, 0.5, 1.2]), // ramp step 2
        (8, [1.0, 0.5, 1.2]), // plateau
        (8, [1.0, 2.5, 1.2]), // spike: mid service quintuples
    ];

    let mut migrations: Vec<Migration> = Vec::new();
    let mut substitutions = 0usize;
    for &(ticks, rates) in phases {
        let migrations_before = migrations.len();
        for _ in 0..ticks {
            let pre = c.running().clone();
            if let Some(m) = c
                .tick(&Observations::rates(rates.to_vec()))
                .expect("the loop heals failures itself")
            {
                // The script is an ordered, verifiable artifact.
                m.script.verify(&pre).expect("script preconditions hold");
                assert_stage_ordered(&m.script);
                assert!(
                    m.reason.contains("drift"),
                    "rounds fire on forecast drift, got: {}",
                    m.reason
                );
                substitutions += m.report.substitutions.len();
                // The controller's adopted state is exactly what the
                // launcher reports running.
                assert!(c.running().structurally_eq(&m.report.plan));
                // Sim-validate the new deployment under the demand the
                // controller planned it for.
                assert_sim_tracks_model(&platform, c.running(), c.mix(), c.assignment(), &rates);
                migrations.push(m);
            }
        }
        assert!(
            migrations.len() - migrations_before <= 1,
            "at most one migration per sustained demand level"
        );
    }

    assert!(
        migrations.len() >= 3,
        "ramp steps and the spike must each drive a migration, got {}",
        migrations.len()
    );
    assert!(
        substitutions > 0,
        "with p=0.55 failure injection, some launch must have needed a spare"
    );
    // Every planned-but-failed node was substituted by a spare outside
    // the plan, and the controller's assignment covers the spare.
    for m in &migrations {
        for &(planned_node, spare) in &m.report.substitutions {
            assert!(m.replan.plan.uses_node(planned_node));
            assert!(!m.replan.plan.uses_node(spare));
        }
    }
    // The final deployment covers the final demand level in the model.
    let report = c.predicted();
    assert!(report.rho_service[1] >= 2.5, "mid service covered");
    assert!(report.rho_service[2] >= 1.2, "heavy service covered");
    assert_eq!(
        c.migrations(),
        migrations.len() as u64,
        "every migration came through tick — zero manual replans"
    );
}

#[test]
fn hysteresis_limits_replans_to_one_per_sustained_level() {
    let platform = std::sync::Arc::new(two_site_platform());
    let mix = mix3();
    let planned = MixDemand::targets(vec![1.0, 0.5, 0.4]);
    let mut c = controller_with(&platform, &mix, &planned, GoDiet::default());

    // Three sustained levels, each observed with ±8% alternating noise
    // — below the 20% drift threshold once re-anchored.
    let levels: &[[f64; 3]] = &[[1.0, 0.5, 0.4], [1.0, 0.5, 1.0], [1.0, 1.8, 1.0]];
    for (li, level) in levels.iter().enumerate() {
        let replans_before = c.replans();
        for i in 0..14 {
            let wobble = if i % 2 == 0 { 1.08 } else { 0.92 };
            let rates: Vec<f64> = level.iter().map(|r| r * wobble).collect();
            c.tick(&Observations::rates(rates))
                .expect("noise and shifts are routine");
        }
        assert!(
            c.replans() - replans_before <= 1,
            "level {li}: {} replans for one sustained level",
            c.replans() - replans_before
        );
    }
    assert!(
        c.migrations() >= 1,
        "the genuine level shifts must still migrate"
    );
}
