//! Integration tests for the heterogeneous-communication extension
//! (model ↔ simulator agreement on multi-site platforms) and the site
//! catalog.

use adept::core::model::hetero;
use adept::platform::catalog;
use adept::prelude::*;

#[test]
fn catalog_multi_site_roundtrip_through_the_stack() {
    let platform = catalog::multi_site(&["lyon", "sophia"], MbitRate(20.0)).unwrap();
    let service = Dgemm::new(310).service();

    // Plan with the paper's (homogeneous-B) heuristic — it still works,
    // just conservatively.
    let plan = HeuristicPlanner::paper()
        .plan(&platform, &service, ClientDemand::Unbounded)
        .expect("128 nodes suffice");
    assert!(validate::validate_relaxed(&plan).is_empty());

    // Both models evaluate it; the per-link model can only be equal or
    // more optimistic than the min-bandwidth scalarization.
    let scalar = ModelParams::from_platform(&platform)
        .evaluate(&platform, &plan, &service)
        .rho;
    let per_link = ModelParams::new(MbitRate(100.0)).with_latency(Seconds(5e-4));
    let het = hetero::evaluate_hetero(&per_link, &platform, &plan, &service).rho;
    assert!(
        het >= scalar * 0.99,
        "per-link evaluation {het} must not be below the conservative {scalar}"
    );
}

#[test]
fn simulator_charges_cross_site_links() {
    // Same shape, intra-site vs cross-site servers: the simulator must
    // measure the intra-site deployment meaningfully faster.
    let platform = catalog::multi_site(&["lyon", "sophia"], MbitRate(5.0)).unwrap();
    let service = Dgemm::new(100).service();
    let lyon_nodes = platform.nodes_on_site(platform.sites()[0].id);
    let sophia_nodes = platform.nodes_on_site(platform.sites()[1].id);

    let mut intra = DeploymentPlan::with_root(lyon_nodes[0]);
    for &s in lyon_nodes.iter().skip(1).take(4) {
        intra.add_server(intra.root(), s).expect("distinct nodes");
    }
    let mut cross = DeploymentPlan::with_root(lyon_nodes[0]);
    for &s in sophia_nodes.iter().take(4) {
        cross.add_server(cross.root(), s).expect("distinct nodes");
    }

    let cfg = SimConfig::ideal().with_windows(Seconds(2.0), Seconds(10.0));
    let m_intra = measure_throughput(&platform, &intra, &service, 16, &cfg).throughput;
    let m_cross = measure_throughput(&platform, &cross, &service, 16, &cfg).throughput;
    assert!(
        m_intra > m_cross * 2.0,
        "intra-site {m_intra} must beat cross-site {m_cross} on a 20x slower WAN"
    );

    // And the hetero model must predict both within a sane envelope.
    // Latency is left at zero in the model here: the simulator treats
    // wire latency as pure pipeline delay (it costs response time, not
    // node occupancy), whereas the model folds `latency` into the cycle —
    // a latency-penalized prediction would under-bound a pipelined run.
    let per_link = ModelParams::new(MbitRate(100.0));
    let p_intra = hetero::evaluate_hetero(&per_link, &platform, &intra, &service).rho;
    let p_cross = hetero::evaluate_hetero(&per_link, &platform, &cross, &service).rho;
    assert!(m_intra <= p_intra * 1.05);
    assert!(m_cross <= p_cross * 1.05);
    assert!(p_intra > p_cross * 2.0, "model agrees on the ranking");
}

#[test]
fn sensitivity_analysis_runs_on_real_plans() {
    use adept::core::analysis::sensitivities;
    let platform = catalog::single_site("rennes", Some(24)).unwrap();
    let service = Dgemm::new(310).service();
    let plan = HeuristicPlanner::paper()
        .plan(&platform, &service, ClientDemand::Unbounded)
        .expect("24 nodes suffice");
    let report = sensitivities(
        &ModelParams::from_platform(&platform),
        &platform,
        &plan,
        &service,
    );
    assert_eq!(report.entries.len(), 8);
    // The dominant parameter for a crossover-regime plan is one of the
    // real cost drivers, not a message size.
    assert!(
        ["Wapp", "Wreq", "B", "Wsel"].contains(&report.dominant().parameter),
        "{report}"
    );
}
