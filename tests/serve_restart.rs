//! End-to-end acceptance of the `adept-serve` daemon.
//!
//! Three tenants drive the scripted ramp+plateau+spike day of
//! `tests/control_loop.rs` **concurrently over the wire**, with GoDiet
//! failure injection on. Mid-day the daemon is killed and restarted:
//! every tenant must resume from its journal — same tick counter, same
//! migration history, same deployment — and finish the day as if
//! nothing happened. A direct library run of the same scenario is the
//! referee: the served loop must reproduce it exactly (determinism is
//! the daemon's durability mechanism, so it is load-bearing).
//!
//! The companion tests pin the typed-error contract of the wire and the
//! journal recovery edge cases (truncated tail, corrupt/empty journals,
//! catalog fingerprint drift, contested tenant ids).

use adept::prelude::*;
use adept::serve::{journal::Journal, Json, Record};
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Light / mid / heavy DGEMM mix, declared over the wire.
fn services3() -> Vec<ServiceDef> {
    [(310u32, 2.0f64), (700, 1.0), (1000, 1.0)]
        .into_iter()
        .map(|(n, weight)| ServiceDef {
            name: format!("dgemm-{n}"),
            wapp_mflop: Dgemm::new(n).wapp().value(),
            weight,
        })
        .collect()
}

/// Two 30-node sites, fast LAN, 10 Mb/s WAN (as in control_loop.rs).
fn two_site_platform() -> Platform {
    generator::multi_site_grid(2, 30, MflopRate(400.0), MbitRate(100.0), MbitRate(10.0), 7)
}

/// The session policy mirroring the library-level scripted-day run:
/// drift trigger at 20%, instant demand convergence, failure injection
/// p=0.55 healed by spares.
fn session_config() -> SessionConfig {
    SessionConfig {
        demand_alpha: 1.0,
        max_changes: 20,
        failure_probability: 0.55,
        failure_seed: 23,
        ..SessionConfig::default()
    }
}

/// The default daemon config: warm-started replanning **on** and the
/// shared plan cache **enabled** — the restart test must prove replay
/// determinism under the accelerated configuration, not a sanitized one.
fn serve_config(dir: &Path) -> ServeConfig {
    ServeConfig::new(
        "127.0.0.1:0",
        dir.to_path_buf(),
        vec![("grid2x30".into(), two_site_platform())],
    )
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("adept-serve-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

const PLANNED: [f64; 3] = [1.0, 0.5, 0.4];

/// The scripted day: (ticks, per-tick observed rates) per phase.
const PHASES: [(usize, [f64; 3]); 5] = [
    (6, [1.0, 0.5, 0.4]), // steady at the planned level
    (6, [1.0, 0.5, 0.8]), // ramp step 1: heavy service doubles
    (6, [1.0, 0.5, 1.2]), // ramp step 2
    (8, [1.0, 0.5, 1.2]), // plateau
    (8, [1.0, 2.5, 1.2]), // spike: mid service quintuples
];

/// Drives `phases` for one tenant over its own connection, returning
/// the migrations the daemon reported.
fn drive(
    addr: std::net::SocketAddr,
    tenant: &str,
    phases: &[(usize, [f64; 3])],
) -> Vec<MigrationSummary> {
    let mut client = ServeClient::connect(addr).expect("daemon is listening");
    let mut migrations = Vec::new();
    for (ticks, rates) in phases {
        for _ in 0..*ticks {
            let outcome = client
                .observe(tenant, rates, &[])
                .expect("observed ticks are routine");
            migrations.extend(outcome.migration);
        }
    }
    migrations
}

/// The referee: the same scripted day run directly against the library
/// [`Controller`], with the exact wiring `register` uses — except
/// **cold** (`warm_start: false`, the pre-warm-start code path), so the
/// equality assertions below prove the served warm loop is bit-identical
/// to cold replanning, not merely self-consistent.
fn reference_run(phases: &[(usize, [f64; 3])]) -> Controller {
    let platform = Arc::new(two_site_platform());
    let mix = ServiceMix::new(
        services3()
            .into_iter()
            .map(|s| (ServiceSpec::new(s.name, Mflop(s.wapp_mflop)), s.weight))
            .collect(),
    );
    let planned = MixDemand::targets(PLANNED.to_vec());
    let got = MixPlanner::default()
        .plan_mix(&platform, &mix, &planned)
        .expect("60 nodes fit the initial demand");
    let mut c = Controller::new(
        platform,
        mix,
        got.plan,
        got.assignment,
        &planned,
        Box::new(OnlinePlanner {
            max_changes: 20,
            ..Default::default()
        }),
        GoDiet::with_failures(0.55, 23),
        ControllerConfig {
            triggers: vec![TriggerPolicy::ForecastDrift { threshold: 0.2 }],
            demand_alpha: 1.0,
            warm_start: false,
            ..Default::default()
        },
    );
    for (ticks, rates) in phases {
        for _ in 0..*ticks {
            c.tick(&Observations::rates(rates.to_vec()))
                .expect("the loop heals failures itself");
        }
    }
    c
}

#[test]
fn three_tenants_survive_a_mid_day_daemon_restart() {
    let dir = tmp_dir("restart");
    let tenants = ["acme", "globex", "initech"];

    // ---- First half of the day: boot, register, drive concurrently.
    let daemon = Daemon::start(serve_config(&dir)).expect("daemon boots");
    assert!(daemon.resume_errors().is_empty(), "fresh dir, no journals");
    let addr = daemon.addr();
    let first_half: Vec<Vec<MigrationSummary>> = std::thread::scope(|scope| {
        let handles: Vec<_> = tenants
            .iter()
            .map(|tenant| {
                scope.spawn(move || {
                    let mut client = ServeClient::connect(addr).expect("daemon is listening");
                    let status = client
                        .register(
                            tenant,
                            "grid2x30",
                            &services3(),
                            &PLANNED,
                            &session_config(),
                        )
                        .expect("registration plans and claims cleanly");
                    assert_eq!(status.ticks, 0);
                    assert!(status.plan.servers > 0);
                    drive(addr, tenant, &PHASES[..3])
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // ---- Kill the daemon mid-day.
    let mut status_client = ServeClient::connect(addr).unwrap();
    let before_kill = status_client.status().expect("status before the kill");
    assert_eq!(before_kill.tenants.len(), 3);
    drop(status_client);
    daemon.stop();

    // ---- Restart: every tenant resumes from its journal by replay.
    let daemon = Daemon::start(serve_config(&dir)).expect("daemon reboots on the same journals");
    assert_eq!(
        daemon.resume_errors(),
        Vec::<(String, String, String)>::new(),
        "every journal must resume"
    );
    let addr = daemon.addr();
    let mut client = ServeClient::connect(addr).unwrap();
    let resumed = client.status().expect("status after restart");
    assert_eq!(resumed.platforms, vec!["grid2x30".to_string()]);
    let mut resumed_tenants = resumed.tenants.clone();
    resumed_tenants.sort_by(|a, b| a.tenant.cmp(&b.tenant));
    let mut expected = before_kill.tenants.clone();
    expected.sort_by(|a, b| a.tenant.cmp(&b.tenant));
    assert_eq!(
        resumed_tenants, expected,
        "replay must rebuild every tenant exactly as it was at the kill"
    );
    // `TenantStatus` equality above includes `warm_replans`: replay
    // reproduces even the warm-start counter. And replay itself never
    // consults the shared plan cache — the rebooted daemon's cache is
    // untouched until a live request arrives.
    let c = &resumed.cache;
    assert_eq!(
        (c.exact_hits, c.near_hits, c.misses, c.insertions),
        (0, 0, 0, 0),
        "resume must bypass the plan cache entirely"
    );

    // ---- Second half of the day, again concurrently.
    let second_half: Vec<Vec<MigrationSummary>> = std::thread::scope(|scope| {
        let handles: Vec<_> = tenants
            .iter()
            .map(|tenant| scope.spawn(move || drive(addr, tenant, &PHASES[3..])))
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // ---- The referee: the identical scenario run directly in-library.
    let reference = reference_run(&PHASES);
    let expected_migrations = reference.migrations();
    assert!(
        expected_migrations >= 3,
        "ramp steps and the spike each migrate, got {expected_migrations}"
    );

    let final_status = client.status().unwrap();
    for (i, tenant) in tenants.iter().enumerate() {
        let status = final_status
            .tenants
            .iter()
            .find(|t| t.tenant == *tenant)
            .expect("tenant still live");
        let reported = first_half[i].len() + second_half[i].len();
        assert_eq!(
            status.ticks,
            PHASES.iter().map(|(t, _)| *t as u64).sum::<u64>(),
            "{tenant}: every tick of the day landed"
        );
        assert_eq!(
            status.migrations, expected_migrations,
            "{tenant}: served loop migrates exactly like the library loop"
        );
        assert_eq!(
            reported as u64, expected_migrations,
            "{tenant}: every migration was reported to the client — none lost at the kill"
        );
        assert_eq!(
            status.plan.servers,
            reference.running().server_count() as u64,
            "{tenant}: same final deployment size as the reference"
        );
        assert_eq!(
            status.plan.rho,
            reference.predicted().rho,
            "{tenant}: bit-identical model state after replay"
        );

        // The journal itself is whole: strict read passes and records
        // exactly the migrations the clients saw.
        let records = Journal::read_strict(&dir.join(format!("{tenant}.jsonl")))
            .expect("a cleanly stopped daemon leaves no truncated tail");
        let checkpoints = records
            .iter()
            .filter(|r| matches!(r, Record::Migration { .. }))
            .count();
        assert_eq!(checkpoints as u64, expected_migrations);
    }

    // ---- Drain one tenant; its id frees, the others keep running.
    let archived = client.drain("acme").expect("drain is routine");
    assert!(archived.ends_with("acme.jsonl.drained"));
    let err = client.observe("acme", &PHASES[4].1, &[]).unwrap_err();
    assert_eq!(err.code, ErrorCode::UnknownTenant);
    client
        .observe("globex", &PHASES[4].1, &[])
        .expect("unaffected");

    daemon.stop();
    std::fs::remove_dir_all(&dir).ok();
}

/// Warm-started replanning and the shared plan cache accelerate the
/// *search* only: a daemon with both on and a daemon with both off must
/// produce identical answers frame for frame — registration plans,
/// every tick outcome, every operator migration, and the final model
/// state (ρ compared by `==`, i.e. bit-equal for these values). Only
/// the `warm_replans` counter may differ, by design.
#[test]
fn warm_and_cache_ablation_is_answer_invariant() {
    let accel_dir = tmp_dir("ablation-accel");
    let cold_dir = tmp_dir("ablation-cold");
    let accel = Daemon::start(serve_config(&accel_dir)).expect("accelerated daemon boots");
    let mut cold_config = serve_config(&cold_dir);
    cold_config.warm_start = false;
    cold_config.plan_cache_capacity = 0;
    let cold = Daemon::start(cold_config).expect("ablated daemon boots");

    let mut fast = ServeClient::connect(accel.addr()).unwrap();
    let mut slow = ServeClient::connect(cold.addr()).unwrap();
    let tenants = ["acme", "globex"];
    for tenant in tenants {
        let a = fast
            .register(
                tenant,
                "grid2x30",
                &services3(),
                &PLANNED,
                &session_config(),
            )
            .expect("accelerated register");
        let b = slow
            .register(
                tenant,
                "grid2x30",
                &services3(),
                &PLANNED,
                &session_config(),
            )
            .expect("cold register");
        assert_eq!(a, b, "{tenant}: registration answers must match");
    }
    // The second tenant asked the exact question the first did: on the
    // accelerated daemon that is a cross-tenant exact cache hit; the
    // ablated daemon has no cache at all.
    assert!(
        fast.status().unwrap().cache.exact_hits >= 1,
        "globex's registration must hit acme's cached plan"
    );
    assert_eq!(slow.status().unwrap().cache.capacity, 0);

    // The scripted day, lock-step on both daemons.
    for (ticks, rates) in &PHASES {
        for _ in 0..*ticks {
            for tenant in tenants {
                let a = fast.observe(tenant, rates, &[]).expect("accelerated tick");
                let b = slow.observe(tenant, rates, &[]).expect("cold tick");
                assert_eq!(a, b, "{tenant}: tick outcomes must match");
            }
        }
    }
    // Steady-state operator replans: the first quiesces (and warms the
    // engine on the accelerated daemon), the ones after start warm there
    // — and must still answer exactly like the cold daemon.
    for _ in 0..3 {
        for tenant in tenants {
            let a = fast
                .migrate(tenant, &PHASES[4].1)
                .expect("accelerated replan");
            let b = slow.migrate(tenant, &PHASES[4].1).expect("cold replan");
            assert_eq!(a, b, "{tenant}: operator replans must match");
        }
    }

    let mut fast_tenants = fast.status().unwrap().tenants;
    let mut slow_tenants = slow.status().unwrap().tenants;
    fast_tenants.sort_by(|a, b| a.tenant.cmp(&b.tenant));
    slow_tenants.sort_by(|a, b| a.tenant.cmp(&b.tenant));
    for (warm, cold) in fast_tenants.iter().zip(&slow_tenants) {
        assert!(
            warm.warm_replans > 0,
            "{}: steady-state replans must reuse the warm engine",
            warm.tenant
        );
        assert_eq!(cold.warm_replans, 0, "ablated sessions never start warm");
        let mut masked = warm.clone();
        masked.warm_replans = 0;
        assert_eq!(
            &masked, cold,
            "everything but the warm counter must be identical"
        );
    }

    accel.stop();
    cold.stop();
    std::fs::remove_dir_all(&accel_dir).ok();
    std::fs::remove_dir_all(&cold_dir).ok();
}

#[test]
fn wire_errors_are_typed_not_dropped_connections() {
    let dir = tmp_dir("errors");
    let daemon = Daemon::start(serve_config(&dir)).expect("daemon boots");
    let mut client = ServeClient::connect(daemon.addr()).unwrap();
    let services = services3();

    // Unknown platform.
    let err = client
        .register(
            "acme",
            "jupiter",
            &services,
            &PLANNED,
            &SessionConfig::default(),
        )
        .unwrap_err();
    assert_eq!(err.code, ErrorCode::UnknownPlatform);

    // Invalid demand (negative rate) → the library's DemandError.
    let err = client
        .register(
            "acme",
            "grid2x30",
            &services,
            &[1.0, -2.0, 0.4],
            &SessionConfig::default(),
        )
        .unwrap_err();
    assert_eq!(err.code, ErrorCode::BadDemand);

    // A real registration, then a duplicate claim.
    client
        .register(
            "acme",
            "grid2x30",
            &services,
            &PLANNED,
            &SessionConfig::default(),
        )
        .expect("first claim wins");
    let err = client
        .register(
            "acme",
            "grid2x30",
            &services,
            &PLANNED,
            &SessionConfig::default(),
        )
        .unwrap_err();
    assert_eq!(err.code, ErrorCode::TenantExists);

    // Unknown tenant, wrong arity, unknown method.
    let err = client.observe("nobody", &PHASES[0].1, &[]).unwrap_err();
    assert_eq!(err.code, ErrorCode::UnknownTenant);
    let err = client.observe("acme", &[1.0], &[]).unwrap_err();
    assert_eq!(err.code, ErrorCode::BadRequest);
    let err = client.call("levitate", Json::obj(vec![])).unwrap_err();
    assert_eq!(err.code, ErrorCode::UnknownMethod);

    // A line that is not a frame at all answers a typed bad-frame
    // error (id 0) instead of killing the connection.
    let mut raw = std::net::TcpStream::connect(daemon.addr()).unwrap();
    raw.write_all(b"this is not json\n").unwrap();
    let mut line = String::new();
    BufReader::new(raw.try_clone().unwrap())
        .read_line(&mut line)
        .unwrap();
    assert!(line.contains("\"bad-frame\""), "got: {line}");

    // The session survived all of that.
    client
        .observe("acme", &PHASES[0].1, &[])
        .expect("still live");

    daemon.stop();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn journal_recovery_edge_cases_are_typed_and_isolated() {
    let dir = tmp_dir("recovery");
    std::fs::create_dir_all(&dir).unwrap();

    // A corrupt journal and an empty one, planted before boot.
    std::fs::write(dir.join("ghost.jsonl"), "not a journal record\n").unwrap();
    std::fs::write(dir.join("hollow.jsonl"), "").unwrap();

    // A healthy tenant registered by a first daemon...
    {
        let daemon = Daemon::start(serve_config(&dir)).expect("daemon boots");
        let mut client = ServeClient::connect(daemon.addr()).unwrap();
        client
            .register(
                "acme",
                "grid2x30",
                &services3(),
                &PLANNED,
                &session_config(),
            )
            .expect("registration plans cleanly");
        client.observe("acme", &PHASES[0].1, &[]).unwrap();
        client.observe("acme", &PHASES[0].1, &[]).unwrap();
        daemon.stop();
    }
    // ...whose journal then loses the tail of its last append.
    {
        let path = dir.join("acme.jsonl");
        let mut file = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap();
        file.write_all(b"{\"record\":\"tick\",\"ra").unwrap();
    }

    // Reboot: the broken journals fail in isolation with typed codes,
    // the truncated one resumes minus its one unacknowledged tick.
    let daemon = Daemon::start(serve_config(&dir)).expect("daemon boots despite bad journals");
    let mut errors = daemon.resume_errors();
    errors.sort();
    assert_eq!(
        errors.len(),
        2,
        "ghost and hollow fail, acme resumes: {errors:?}"
    );
    assert_eq!(errors[0].0, "ghost");
    assert_eq!(errors[0].1, "journal-corrupt");
    assert_eq!(errors[1].0, "hollow");
    assert_eq!(errors[1].1, "journal-corrupt");

    let mut client = ServeClient::connect(daemon.addr()).unwrap();
    let status = client.status().unwrap();
    assert_eq!(status.tenants.len(), 1);
    assert_eq!(status.tenants[0].tenant, "acme");
    assert_eq!(
        status.tenants[0].ticks, 2,
        "the truncated third tick was never acknowledged and is dropped"
    );
    assert_eq!(status.resume_errors.len(), 2, "surfaced over the wire too");

    // A journal on disk blocks a live re-claim even when its session
    // failed to resume.
    let err = client
        .register(
            "ghost",
            "grid2x30",
            &services3(),
            &PLANNED,
            &session_config(),
        )
        .unwrap_err();
    assert_eq!(err.code, ErrorCode::JournalMismatch);
    daemon.stop();

    // Catalog drift: the same platform name with a different shape must
    // refuse acme's journal with a fingerprint mismatch, not replan on
    // hardware the journal never saw.
    let mut drifted = serve_config(&dir);
    drifted.platforms = vec![(
        "grid2x30".into(),
        generator::multi_site_grid(2, 29, MflopRate(400.0), MbitRate(100.0), MbitRate(10.0), 7),
    )];
    let daemon = Daemon::start(drifted).expect("daemon boots");
    let errors = daemon.resume_errors();
    let acme = errors.iter().find(|e| e.0 == "acme").expect("acme refused");
    assert_eq!(acme.1, "journal-mismatch");
    assert!(acme.2.contains("changed shape"), "got: {}", acme.2);

    daemon.stop();
    std::fs::remove_dir_all(&dir).ok();
}
