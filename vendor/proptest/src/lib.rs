//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of proptest's API the workspace's property tests
//! use: the [`proptest!`] macro with a `#![proptest_config(...)]` header,
//! [`Strategy`] with `prop_map`, range and tuple strategies,
//! [`collection::vec`], and the `prop_assert*` macros.
//!
//! Differences from upstream, by design of an offline shim:
//!
//! * **no shrinking** — a failing case reports its debug rendering as-is;
//! * sampling is driven by a fixed default seed (override with the
//!   `PROPTEST_SEED` environment variable), so runs are reproducible;
//! * only the strategy combinators listed above exist.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Debug;
use std::ops::Range;

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value: Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Transforms generated values with `f` (upstream's `prop_map`).
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

int_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut StdRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);

/// Collection strategies.
pub mod collection {
    use super::{Range, Rng, StdRng, Strategy};
    use std::fmt::Debug;

    /// Strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        length: Range<usize>,
    }

    /// Generates `Vec`s whose length is drawn from `length` and whose
    /// elements come from `element`.
    pub fn vec<S: Strategy>(element: S, length: Range<usize>) -> VecStrategy<S>
    where
        S::Value: Debug,
    {
        VecStrategy { element, length }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let n = rng.gen_range(self.length.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Test-runner configuration and driver.
pub mod test_runner {
    use super::{SeedableRng, StdRng, Strategy};

    /// How many cases to run per property.
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        /// Number of random cases.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    /// A failed property case.
    #[derive(Debug)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        /// A failure with the given message.
        pub fn fail<S: Into<String>>(msg: S) -> Self {
            Self(msg.into())
        }
    }

    /// Runs properties against a strategy.
    pub struct TestRunner {
        config: ProptestConfig,
        rng: StdRng,
    }

    impl TestRunner {
        /// A runner with the given config. The RNG seed is fixed (set
        /// `PROPTEST_SEED` to vary it), keeping CI runs reproducible.
        pub fn new(config: ProptestConfig) -> Self {
            let seed = std::env::var("PROPTEST_SEED")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(0x00C0_FFEE);
            Self {
                config,
                rng: StdRng::seed_from_u64(seed),
            }
        }

        /// Runs `test` against `config.cases` generated values, panicking
        /// with the offending input on the first failure.
        pub fn run<S: Strategy, F>(&mut self, strategy: &S, test: F)
        where
            F: Fn(S::Value) -> Result<(), TestCaseError>,
        {
            for case in 0..self.config.cases {
                let value = strategy.generate(&mut self.rng);
                let rendered = format!("{value:?}");
                if let Err(TestCaseError(msg)) = test(value) {
                    // audit: allow(panic, "a property-test harness reports a
                    // failing case to cargo test by panicking; that is its
                    // output contract")
                    panic!(
                        "proptest case {case} failed: {msg}\n  input: {}",
                        truncated(&rendered)
                    );
                }
            }
        }
    }

    fn truncated(s: &str) -> &str {
        let mut end = s.len().min(600);
        while !s.is_char_boundary(end) {
            end -= 1;
        }
        &s[..end]
    }
}

/// Everything a property test usually imports.
pub mod prelude {
    pub use crate::test_runner::ProptestConfig;
    pub use crate::Strategy;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Declares property tests. Mirrors upstream's surface:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0u32..100, v in arb_thing()) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            ($crate::test_runner::ProptestConfig::default()); $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $($(#[$meta:meta])+ fn $name:ident(
        $($arg:pat_param in $strat:expr),+ $(,)?
    ) $body:block)*) => {
        $(
            $(#[$meta])+
            fn $name() {
                let mut runner = $crate::test_runner::TestRunner::new($cfg);
                runner.run(&($($strat,)+), |($($arg,)+)| {
                    $body
                    Ok(())
                });
            }
        )*
    };
}

/// Asserts inside a property, failing the case (not the harness) on
/// violation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {:?} != {:?}",
                l, r
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_even() -> impl Strategy<Value = u64> {
        (0u64..1000).prop_map(|x| x * 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 5u32..10, f in 0.0f64..1.0) {
            prop_assert!((5..10).contains(&x));
            prop_assert!((0.0..1.0).contains(&f), "f was {f}");
        }

        #[test]
        fn mapped_strategies_apply(x in arb_even()) {
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn vec_strategy_respects_length(v in crate::collection::vec(0u8..5, 2..7)) {
            prop_assert!(v.len() >= 2 && v.len() < 7);
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failures_report_input() {
        let mut runner = crate::test_runner::TestRunner::new(ProptestConfig::with_cases(5));
        runner.run(&(0u32..10,), |(_x,)| {
            Err(crate::test_runner::TestCaseError::fail("always fails"))
        });
    }
}
