//! Offline stand-in for the `parking_lot` crate, instrumented with a
//! debug-only lock-order deadlock detector.
//!
//! Wraps `std::sync::Mutex`/`RwLock` behind parking_lot's poison-free
//! API (the subset the workspace uses): [`Mutex::lock`] returns the
//! guard directly, and [`Mutex::into_inner`] returns the value
//! directly. A poisoned std lock (a thread panicked while holding it)
//! is transparently recovered, matching parking_lot's semantics of not
//! tracking poisoning.
//!
//! # Lock-order deadlock detection (debug builds only)
//!
//! In builds with `debug_assertions` (so: `cargo test`, never release
//! binaries), every lock belongs to a *class* and every acquisition
//! while other locks are held records a `held → acquiring` edge in a
//! process-wide **held-before graph**. An acquisition whose edge would
//! close a cycle panics immediately — *before* blocking — with both
//! acquisition stacks: the one being attempted now, and the recorded
//! stack of the first acquisition that created the reverse path. An
//! AB/BA inversion is therefore caught even when the interleaving
//! never actually deadlocks in the observed run.
//!
//! Classes come in two flavors:
//!
//! - [`Mutex::new`]/[`RwLock::new`] give each *instance* its own
//!   class, so uninstrumented code can never false-positive (two
//!   distinct anonymous locks only conflict if those two instances are
//!   really nested both ways).
//! - [`Mutex::named`]/[`RwLock::named`] place the lock in a class
//!   shared by every lock created with the same name (the
//!   `lockdep`-style classing): all per-tenant session slots of the
//!   serve daemon share one `"serve.tenant-slot"` class, so an
//!   inversion between *any* two slots is caught the first time either
//!   order is observed. Nesting two locks of the same named class is
//!   itself reported as a cycle (self-edge) — no code in this
//!   workspace legitimately holds two same-class locks at once.
//!
//! Read and write acquisitions of an [`RwLock`] are classed
//! identically: a read-side inversion still deadlocks against a
//! blocked writer, so the detector must not care which side it saw.
//!
//! In release builds the registry, the per-guard bookkeeping, and the
//! [`lock_order`] module compile away entirely; guards are
//! zero-overhead wrappers over the std guards.

use std::sync::{
    Mutex as StdMutex, MutexGuard as StdMutexGuard, PoisonError, RwLock as StdRwLock,
    RwLockReadGuard as StdRwLockReadGuard, RwLockWriteGuard as StdRwLockWriteGuard,
};

#[cfg(debug_assertions)]
pub mod lock_order;

#[cfg(debug_assertions)]
use lock_order::{ClassId, Held};

/// A mutual-exclusion lock without lock poisoning.
#[derive(Debug)]
pub struct Mutex<T> {
    inner: StdMutex<T>,
    #[cfg(debug_assertions)]
    class: ClassId,
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T> Mutex<T> {
    /// A new unlocked mutex in its own anonymous lock-order class.
    pub fn new(value: T) -> Self {
        Self {
            inner: StdMutex::new(value),
            #[cfg(debug_assertions)]
            class: ClassId::anonymous(),
        }
    }

    /// A new unlocked mutex in the named lock-order class shared by
    /// every lock created with the same `name` (debug builds; the
    /// name is ignored in release builds).
    pub fn named(name: &'static str, value: T) -> Self {
        #[cfg(not(debug_assertions))]
        let _ = name;
        Self {
            inner: StdMutex::new(value),
            #[cfg(debug_assertions)]
            class: ClassId::named(name),
        }
    }

    /// Acquires the lock, blocking until available.
    ///
    /// # Panics
    /// Debug builds panic (before blocking) when this acquisition
    /// would close a cycle in the process-wide held-before graph.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        #[cfg(debug_assertions)]
        let held = Held::acquire(self.class);
        MutexGuard {
            inner: self.inner.lock().unwrap_or_else(PoisonError::into_inner),
            #[cfg(debug_assertions)]
            _held: held,
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

/// Guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T> {
    inner: StdMutexGuard<'a, T>,
    #[cfg(debug_assertions)]
    _held: Held,
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

/// A reader-writer lock without lock poisoning.
#[derive(Debug)]
pub struct RwLock<T> {
    inner: StdRwLock<T>,
    #[cfg(debug_assertions)]
    class: ClassId,
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T> RwLock<T> {
    /// A new unlocked rwlock in its own anonymous lock-order class.
    pub fn new(value: T) -> Self {
        Self {
            inner: StdRwLock::new(value),
            #[cfg(debug_assertions)]
            class: ClassId::anonymous(),
        }
    }

    /// A new unlocked rwlock in the named lock-order class shared by
    /// every lock created with the same `name`.
    pub fn named(name: &'static str, value: T) -> Self {
        #[cfg(not(debug_assertions))]
        let _ = name;
        Self {
            inner: StdRwLock::new(value),
            #[cfg(debug_assertions)]
            class: ClassId::named(name),
        }
    }

    /// Acquires shared read access, blocking until available.
    ///
    /// # Panics
    /// Debug builds panic on a held-before cycle, exactly like
    /// [`Mutex::lock`] (read and write sides share the class).
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        #[cfg(debug_assertions)]
        let held = Held::acquire(self.class);
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
            #[cfg(debug_assertions)]
            _held: held,
        }
    }

    /// Acquires exclusive write access, blocking until available.
    ///
    /// # Panics
    /// Debug builds panic on a held-before cycle, exactly like
    /// [`Mutex::lock`].
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        #[cfg(debug_assertions)]
        let held = Held::acquire(self.class);
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
            #[cfg(debug_assertions)]
            _held: held,
        }
    }

    /// Consumes the rwlock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

/// Guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T> {
    inner: StdRwLockReadGuard<'a, T>,
    #[cfg(debug_assertions)]
    _held: Held,
}

impl<T> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for RwLockReadGuard<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

/// Guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T> {
    inner: StdRwLockWriteGuard<'a, T>,
    #[cfg(debug_assertions)]
    _held: Held,
}

impl<T> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for RwLockWriteGuard<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::{Mutex, RwLock};

    #[test]
    fn lock_and_into_inner() {
        let m = Mutex::new(Vec::new());
        m.lock().push(1);
        m.lock().push(2);
        assert_eq!(m.into_inner(), vec![1, 2]);
    }

    #[test]
    fn shared_across_threads() {
        let m = Mutex::new(0u64);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(m.into_inner(), 4000);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(5u32);
        // NB: no nested same-thread reads here — the lock-order
        // detector flags same-class (= same-instance, for anonymous
        // locks) nesting, because a queued writer between two
        // re-entrant reads deadlocks std's RwLock.
        assert_eq!(*l.read(), 5);
        std::thread::scope(|s| {
            for _ in 0..3 {
                s.spawn(|| assert_eq!(*l.read(), 5));
            }
        });
        *l.write() += 1;
        assert_eq!(l.into_inner(), 6);
    }
}
