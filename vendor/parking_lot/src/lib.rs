//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync::Mutex` behind parking_lot's poison-free API (the
//! subset the workspace uses): [`Mutex::lock`] returns the guard directly,
//! and [`Mutex::into_inner`] returns the value directly. A poisoned std
//! mutex (a thread panicked while holding the lock) is transparently
//! recovered, matching parking_lot's semantics of not tracking poisoning.

use std::sync::{Mutex as StdMutex, MutexGuard as StdGuard, PoisonError};

/// A mutual-exclusion lock without lock poisoning.
#[derive(Debug, Default)]
pub struct Mutex<T>(StdMutex<T>);

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = StdGuard<'a, T>;

impl<T> Mutex<T> {
    /// A new unlocked mutex.
    pub fn new(value: T) -> Self {
        Self(StdMutex::new(value))
    }

    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_and_into_inner() {
        let m = Mutex::new(Vec::new());
        m.lock().push(1);
        m.lock().push(2);
        assert_eq!(m.into_inner(), vec![1, 2]);
    }

    #[test]
    fn shared_across_threads() {
        let m = Mutex::new(0u64);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(m.into_inner(), 4000);
    }
}
