//! The debug-only lock-order registry behind the deadlock detector.
//!
//! One process-wide held-before graph over lock *classes*: node =
//! class, edge `A → B` = "some thread acquired a class-B lock while
//! holding a class-A lock". Each edge stores the backtrace of the
//! acquisition that first created it. On every acquisition with locks
//! held, the candidate edges are checked: if a path `B ⇝ A` already
//! exists, adding `A → B` closes a cycle — the program has used the
//! two orders `A before B` and `B before A`, which can deadlock under
//! the right interleaving — and the acquisition panics with both
//! stacks instead of blocking.
//!
//! The check runs *before* the std lock is touched, so the panic fires
//! even in an interleaving that would have genuinely deadlocked (the
//! second thread detects the inversion and unwinds, releasing its
//! guards and unblocking the first).
//!
//! The graph only ever accumulates edges that kept it acyclic
//! (offending edges panic instead of being inserted), so the recorded
//! graph is a DAG by construction; [`edges`] exposes it for tests
//! that want to assert a subsystem's real lock graph looks as
//! designed.
//!
//! This whole module only exists under `debug_assertions`; release
//! builds compile the detector out.

use std::backtrace::Backtrace;
use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex as StdMutex, OnceLock, PoisonError};

/// A lock-order class: all locks in one class are interchangeable for
/// ordering purposes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct ClassId(u64);

impl ClassId {
    /// A fresh class of its own — used by anonymous locks, so two
    /// distinct unnamed locks never alias in the graph.
    pub(crate) fn anonymous() -> ClassId {
        // Anonymous ids count down from the top of the id space;
        // named ids count up from 0. The two ranges cannot collide
        // before the heat death of the universe.
        static NEXT: AtomicU64 = AtomicU64::new(u64::MAX);
        // audit: allow(relaxed, "id allocator: fetch_sub RMW atomicity
        // alone guarantees uniqueness; the id carries no other data")
        ClassId(NEXT.fetch_sub(1, Ordering::Relaxed))
    }

    /// The class registered for `name`, created on first use.
    pub(crate) fn named(name: &'static str) -> ClassId {
        let mut reg = registry().lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(&id) = reg.by_name.get(name) {
            return id;
        }
        let id = ClassId(reg.by_name.len() as u64);
        reg.by_name.insert(name, id);
        reg.names.insert(id, name);
        id
    }
}

/// One directed edge of the held-before graph.
struct EdgeInfo {
    /// Backtrace of the acquisition that first created this edge
    /// (acquiring `to` while holding `from`).
    stack: String,
}

#[derive(Default)]
struct Registry {
    by_name: BTreeMap<&'static str, ClassId>,
    names: BTreeMap<ClassId, &'static str>,
    /// Adjacency: `edges[from][to]` exists iff `to` was acquired while
    /// `from` was held.
    edges: BTreeMap<ClassId, BTreeMap<ClassId, EdgeInfo>>,
}

impl Registry {
    fn name_of(&self, id: ClassId) -> String {
        match self.names.get(&id) {
            Some(n) => (*n).to_string(),
            None => format!("<anonymous lock #{}>", u64::MAX - id.0),
        }
    }

    /// Is `to` reachable from `from` along recorded edges?
    fn reachable(&self, from: ClassId, to: ClassId) -> bool {
        let mut seen = BTreeSet::new();
        let mut stack = vec![from];
        while let Some(c) = stack.pop() {
            if c == to {
                return true;
            }
            if !seen.insert(c) {
                continue;
            }
            if let Some(next) = self.edges.get(&c) {
                stack.extend(next.keys().copied());
            }
        }
        false
    }

    /// The stack stored on the first edge of some path `from ⇝ to`
    /// (the conflicting acquisition shown in cycle panics).
    fn path_first_stack(&self, from: ClassId, to: ClassId) -> Option<&str> {
        let next = self.edges.get(&from)?;
        for (&mid, info) in next {
            if mid == to || self.reachable(mid, to) {
                return Some(&info.stack);
            }
        }
        None
    }
}

fn registry() -> &'static StdMutex<Registry> {
    static REGISTRY: OnceLock<StdMutex<Registry>> = OnceLock::new();
    REGISTRY.get_or_init(|| StdMutex::new(Registry::default()))
}

thread_local! {
    /// Classes of the locks this thread currently holds, in
    /// acquisition order (released entries are removed wherever they
    /// sit — guards can drop out of order).
    static HELD: RefCell<Vec<ClassId>> = const { RefCell::new(Vec::new()) };
}

/// RAII token for one acquisition: registered on creation, removed
/// from the thread's held list on drop.
#[derive(Debug)]
pub struct Held {
    class: ClassId,
}

impl Held {
    /// Records the acquisition of `class`, checking every implied
    /// held-before edge for a cycle first.
    ///
    /// # Panics
    /// When an implied edge closes a cycle (lock-order inversion).
    pub(crate) fn acquire(class: ClassId) -> Held {
        let held: Vec<ClassId> = HELD.with(|h| h.borrow().clone());
        if !held.is_empty() {
            let mut reg = registry().lock().unwrap_or_else(PoisonError::into_inner);
            for &h in &held {
                if h == class || reg.reachable(class, h) {
                    let here = Backtrace::force_capture();
                    let prior = reg
                        .path_first_stack(class, h)
                        .unwrap_or("<same-class nesting: no prior edge>")
                        .to_string();
                    let (held_name, acq_name) = (reg.name_of(h), reg.name_of(class));
                    drop(reg);
                    // audit: allow(panic, "panicking before blocking IS the
                    // deadlock detection: the would-be deadlock becomes a
                    // diagnosable test failure with both stacks")
                    panic!(
                        "lock-order cycle: acquiring {acq} while holding {held}, but \
                         {held} is (transitively) acquired while holding {acq} elsewhere.\n\
                         \n--- this acquisition ({acq}) ---\n{here}\n\
                         \n--- conflicting earlier acquisition (first edge of the \
                         {acq} ⇝ {held} path) ---\n{prior}",
                        acq = acq_name,
                        held = held_name,
                        here = here,
                        prior = prior,
                    );
                }
                reg.edges
                    .entry(h)
                    .or_default()
                    .entry(class)
                    .or_insert_with(|| EdgeInfo {
                        stack: Backtrace::force_capture().to_string(),
                    });
            }
        }
        HELD.with(|h| h.borrow_mut().push(class));
        Held { class }
    }
}

impl Drop for Held {
    fn drop(&mut self) {
        HELD.with(|h| {
            let mut held = h.borrow_mut();
            if let Some(pos) = held.iter().rposition(|&c| c == self.class) {
                held.remove(pos);
            }
        });
    }
}

/// A snapshot of every recorded held-before edge, as
/// `(held class, acquired class)` display names. Anonymous classes
/// render as `<anonymous lock #n>`.
pub fn edges() -> Vec<(String, String)> {
    let reg = registry().lock().unwrap_or_else(PoisonError::into_inner);
    let mut out = Vec::new();
    for (&from, tos) in &reg.edges {
        for &to in tos.keys() {
            out.push((reg.name_of(from), reg.name_of(to)));
        }
    }
    out
}

/// Asserts the recorded subgraph over classes whose names start with
/// `prefix` is a DAG. The registry refuses cycle-closing edges at
/// acquisition time, so this can only fail if the registry itself is
/// broken — it exists so subsystem tests can pin the invariant
/// explicitly.
pub fn assert_acyclic_within(prefix: &str) {
    let reg = registry().lock().unwrap_or_else(PoisonError::into_inner);
    let in_scope: Vec<ClassId> = reg
        .names
        .iter()
        .filter(|(_, n)| n.starts_with(prefix))
        .map(|(&id, _)| id)
        .collect();
    // Kahn-style: repeatedly strip nodes with no in-scope incoming
    // edge; leftovers mean a cycle.
    let mut remaining: BTreeSet<ClassId> = in_scope.iter().copied().collect();
    loop {
        let removable: Vec<ClassId> = remaining
            .iter()
            .copied()
            .filter(|&n| {
                !remaining
                    .iter()
                    .any(|&m| m != n && reg.edges.get(&m).is_some_and(|tos| tos.contains_key(&n)))
            })
            .collect();
        if removable.is_empty() {
            break;
        }
        for n in removable {
            remaining.remove(&n);
        }
    }
    assert!(
        remaining.is_empty(),
        "lock-order cycle among classes: {:?}",
        remaining
            .iter()
            .map(|&id| reg.name_of(id))
            .collect::<Vec<_>>()
    );
}
