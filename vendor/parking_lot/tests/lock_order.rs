//! Lock-order detector tests: a seeded AB/BA inversion is caught (with
//! both stacks in the panic), consistent orders are not, and the named
//! class machinery groups instances as designed.
//!
//! The registry is process-wide, so every test uses its own class
//! names.

#![cfg(debug_assertions)]

use parking_lot::{lock_order, Mutex, RwLock};
use std::panic::{catch_unwind, AssertUnwindSafe};

fn panic_message(f: impl FnOnce()) -> String {
    match catch_unwind(AssertUnwindSafe(f)) {
        Ok(()) => panic!("expected a lock-order panic"),
        Err(payload) => {
            if let Some(s) = payload.downcast_ref::<String>() {
                s.clone()
            } else if let Some(s) = payload.downcast_ref::<&str>() {
                (*s).to_string()
            } else {
                String::from("(non-string panic)")
            }
        }
    }
}

#[test]
fn ab_ba_inversion_is_caught_with_both_stacks() {
    let a = Mutex::named("t1.A", ());
    let b = Mutex::named("t1.B", ());
    {
        let _ga = a.lock();
        let _gb = b.lock(); // records A → B
    }
    let msg = panic_message(|| {
        let _gb = b.lock();
        let _ga = a.lock(); // would record B → A: cycle
    });
    assert!(msg.contains("lock-order cycle"), "got: {msg}");
    assert!(msg.contains("t1.A") && msg.contains("t1.B"), "got: {msg}");
    // Both acquisition stacks are included.
    assert!(msg.contains("this acquisition"), "got: {msg}");
    assert!(
        msg.contains("conflicting earlier acquisition"),
        "got: {msg}"
    );
}

#[test]
fn inversion_is_caught_across_threads_before_deadlocking() {
    // The textbook near-deadlock: t1 takes A then B, t2 takes B then
    // A. Whichever thread's second acquisition closes the cycle
    // panics instead of blocking, so the test always terminates.
    let a = std::sync::Arc::new(Mutex::named("t2.A", ()));
    let b = std::sync::Arc::new(Mutex::named("t2.B", ()));
    let (a2, b2) = (std::sync::Arc::clone(&a), std::sync::Arc::clone(&b));
    let t1 = std::thread::spawn(move || {
        catch_unwind(AssertUnwindSafe(|| {
            let _ga = a2.lock();
            std::thread::sleep(std::time::Duration::from_millis(10));
            let _gb = b2.lock();
        }))
        .is_err()
    });
    let t2 = std::thread::spawn(move || {
        catch_unwind(AssertUnwindSafe(|| {
            let _gb = b.lock();
            std::thread::sleep(std::time::Duration::from_millis(10));
            let _ga = a.lock();
        }))
        .is_err()
    });
    let caught_1 = t1.join().expect("t1 joins");
    let caught_2 = t2.join().expect("t2 joins");
    assert!(
        caught_1 || caught_2,
        "one of the two threads must observe the inversion"
    );
}

#[test]
fn transitive_cycles_are_caught() {
    let a = Mutex::named("t3.A", ());
    let b = Mutex::named("t3.B", ());
    let c = Mutex::named("t3.C", ());
    {
        let _ga = a.lock();
        let _gb = b.lock(); // A → B
    }
    {
        let _gb = b.lock();
        let _gc = c.lock(); // B → C
    }
    let msg = panic_message(|| {
        let _gc = c.lock();
        let _ga = a.lock(); // C → A closes A → B → C → A
    });
    assert!(msg.contains("lock-order cycle"), "got: {msg}");
}

#[test]
fn consistent_order_never_panics() {
    let a = Mutex::named("t4.A", 0u32);
    let b = Mutex::named("t4.B", 0u32);
    for _ in 0..100 {
        let mut ga = a.lock();
        let mut gb = b.lock();
        *ga += 1;
        *gb += 1;
    }
    assert_eq!(*a.lock(), 100);
}

#[test]
fn named_instances_share_a_class() {
    // Two *instances* of the same class, nested: flagged, because any
    // same-class nesting is an inversion waiting for the right pair.
    let slot_1 = Mutex::named("t5.slot", ());
    let slot_2 = Mutex::named("t5.slot", ());
    let msg = panic_message(|| {
        let _g1 = slot_1.lock();
        let _g2 = slot_2.lock();
    });
    assert!(msg.contains("t5.slot"), "got: {msg}");
}

#[test]
fn anonymous_instances_do_not_alias() {
    // Anonymous locks get one class each: nesting two different ones
    // both ways sequentially IS an inversion and must still be caught
    // on the specific pair...
    let a = Mutex::new(());
    let b = Mutex::new(());
    {
        let _ga = a.lock();
        let _gb = b.lock();
    }
    let msg = panic_message(|| {
        let _gb = b.lock();
        let _ga = a.lock();
    });
    assert!(msg.contains("lock-order cycle"), "got: {msg}");

    // ...but two unrelated anonymous locks nested once never alias
    // with anything else.
    let c = Mutex::new(());
    let d = Mutex::new(());
    let _gc = c.lock();
    let _gd = d.lock();
}

#[test]
fn rwlock_read_and_write_share_the_class() {
    let m = Mutex::named("t6.M", ());
    let l = RwLock::named("t6.L", 0u32);
    {
        let _gm = m.lock();
        let _gl = l.read(); // M → L via the read side
    }
    let msg = panic_message(|| {
        let _gl = l.write(); // write side, same class
        let _gm = m.lock(); // L → M: cycle
    });
    assert!(msg.contains("lock-order cycle"), "got: {msg}");
    assert!(msg.contains("t6.L") && msg.contains("t6.M"), "got: {msg}");
}

#[test]
fn edges_snapshot_exposes_the_graph() {
    let a = Mutex::named("t7.A", ());
    let b = Mutex::named("t7.B", ());
    {
        let _ga = a.lock();
        let _gb = b.lock();
    }
    let edges = lock_order::edges();
    assert!(
        edges
            .iter()
            .any(|(from, to)| from == "t7.A" && to == "t7.B"),
        "edge t7.A → t7.B missing from {edges:?}"
    );
    lock_order::assert_acyclic_within("t7.");
}
