//! Offline stand-in for the `rand` crate (0.8 API surface).
//!
//! The build environment has no access to crates.io, so this vendored
//! package provides the exact subset of `rand` 0.8 the workspace uses:
//!
//! * [`SeedableRng::seed_from_u64`] construction;
//! * [`Rng::gen_range`] over half-open and inclusive ranges of `f64` and
//!   unsigned integers;
//! * [`rngs::SmallRng`] / [`rngs::StdRng`];
//! * [`distributions::Uniform`] with [`distributions::Distribution`].
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — deterministic,
//! fast, and statistically solid for simulation noise and synthetic
//! platform generation (it is the same algorithm family `SmallRng` uses
//! upstream). It is **not** cryptographically secure, exactly like the
//! upstream types it replaces.

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Types constructible from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Range sampling, mirroring `rand`'s `Rng::gen_range`.
pub trait Rng: RngCore {
    /// A uniform sample from the given range.
    ///
    /// # Panics
    /// Panics on an empty range.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<T: RngCore> Rng for T {}

/// A range that can produce uniform samples — the receiver side of
/// [`Rng::gen_range`].
pub trait SampleRange {
    /// The sampled scalar type.
    type Output;
    /// Draws one uniform sample.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

#[inline]
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // 53 high-quality mantissa bits -> uniform in [0, 1).
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange for std::ops::Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let v = self.start + unit_f64(rng) * (self.end - self.start);
        // Guard the open upper bound against rounding.
        if v >= self.end {
            self.end - (self.end - self.start) * f64::EPSILON
        } else {
            v
        }
    }
}

impl SampleRange for std::ops::RangeInclusive<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + unit_f64(rng) * (hi - lo)
    }
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange for std::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

int_range!(u8, u16, u32, u64, usize);

/// xoshiro256++ with SplitMix64 seeding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256PlusPlus {
    s: [u64; 4],
}

impl Xoshiro256PlusPlus {
    fn from_seed_u64(seed: u64) -> Self {
        // SplitMix64 expansion, as recommended by the xoshiro authors.
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Self {
            s: [next(), next(), next(), next()],
        }
    }
}

impl RngCore for Xoshiro256PlusPlus {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for Xoshiro256PlusPlus {
    fn seed_from_u64(seed: u64) -> Self {
        Self::from_seed_u64(seed)
    }
}

/// The `rand::rngs` module: named generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng, Xoshiro256PlusPlus};

    /// Small fast generator (xoshiro256++, like upstream's 64-bit build).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng(Xoshiro256PlusPlus);

    /// Default generator. Upstream uses ChaCha12; this offline stand-in
    /// shares the xoshiro core — deterministic per seed, which is all the
    /// workspace requires.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng(Xoshiro256PlusPlus);

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self(Xoshiro256PlusPlus::seed_from_u64(
                seed ^ 0x5EED_5EED_5EED_5EED,
            ))
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self(Xoshiro256PlusPlus::seed_from_u64(seed))
        }
    }
}

/// The `rand::distributions` module: `Uniform` and the `Distribution`
/// trait.
pub mod distributions {
    use super::{RngCore, SampleRange};

    /// A distribution over values of `T`.
    pub trait Distribution<T> {
        /// Draws one sample.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// Uniform distribution over a half-open or inclusive interval.
    #[derive(Debug, Clone, Copy, PartialEq)]
    pub struct Uniform<T> {
        lo: T,
        hi: T,
        inclusive: bool,
    }

    impl<T: Copy + PartialOrd> Uniform<T> {
        /// Uniform over `[lo, hi)`.
        ///
        /// # Panics
        /// Panics if `lo >= hi`.
        pub fn new(lo: T, hi: T) -> Self {
            assert!(lo < hi, "Uniform::new requires lo < hi");
            Self {
                lo,
                hi,
                inclusive: false,
            }
        }

        /// Uniform over `[lo, hi]`.
        ///
        /// # Panics
        /// Panics if `lo > hi`.
        pub fn new_inclusive(lo: T, hi: T) -> Self {
            assert!(lo <= hi, "Uniform::new_inclusive requires lo <= hi");
            Self {
                lo,
                hi,
                inclusive: true,
            }
        }
    }

    macro_rules! uniform_impl {
        ($($t:ty),*) => {$(
            impl Distribution<$t> for Uniform<$t> {
                fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                    if self.inclusive {
                        (self.lo..=self.hi).sample_from(rng)
                    } else {
                        (self.lo..self.hi).sample_from(rng)
                    }
                }
            }
        )*};
    }

    uniform_impl!(f64, u8, u16, u32, u64, usize);
}

#[cfg(test)]
mod tests {
    use super::distributions::{Distribution, Uniform};
    use super::rngs::{SmallRng, StdRng};
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
        }
    }

    #[test]
    fn seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..32)
            .filter(|_| a.gen_range(0.0..1.0) == b.gen_range(0.0..1.0))
            .count();
        assert!(same < 2);
    }

    #[test]
    fn f64_range_is_bounded() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&v));
        }
    }

    #[test]
    fn integer_inclusive_hits_both_ends() {
        let mut r = StdRng::seed_from_u64(3);
        let d = Uniform::new_inclusive(1u32, 3);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[d.sample(&mut r) as usize] = true;
        }
        assert!(!seen[0] && seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn uniform_f64_mean_is_centered() {
        let mut r = StdRng::seed_from_u64(11);
        let d = Uniform::new(0.0f64, 1.0);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| d.sample(&mut r)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut r = StdRng::seed_from_u64(0);
        let _ = r.gen_range(5u32..5);
    }
}
