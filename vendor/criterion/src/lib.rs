//! Offline stand-in for the `criterion` crate.
//!
//! Provides the subset of the criterion 0.5 API the workspace's benches
//! use — [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`]
//! / [`BenchmarkGroup::bench_with_input`], [`Bencher::iter`], [`black_box`],
//! [`BenchmarkId`], and the [`criterion_group!`] / [`criterion_main!`]
//! macros — implemented as a straightforward wall-clock harness:
//!
//! * each benchmark is warmed up once, then timed over `sample_size`
//!   samples whose per-sample iteration count targets ~2 ms;
//! * a per-benchmark wall-clock budget (default 2 s, `BENCH_BUDGET_MS`
//!   to override) keeps smoke runs fast even for slow benchmarks;
//! * results (id, mean ns, samples) print to stdout and, when the
//!   `BENCH_JSON` environment variable names a path, are written to that
//!   file as a JSON array (one file per bench process — a later process
//!   pointed at the same path overwrites it) — the hook CI uses to
//!   record perf trajectories.
//!
//! The statistics are deliberately simple (mean over samples); this is a
//! trend tracker, not a rigorous estimator like upstream criterion.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque value barrier — defeats constant folding of benchmark inputs
/// and results.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// One finished measurement.
#[derive(Debug, Clone)]
pub struct Record {
    /// Full benchmark id, `group/function`.
    pub id: String,
    /// Mean wall-clock time per iteration, nanoseconds.
    pub mean_ns: f64,
    /// Number of samples taken.
    pub samples: usize,
}

/// Benchmark identifier inside a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id rendering just the parameter (criterion's
    /// `BenchmarkId::from_parameter`).
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        Self(parameter.to_string())
    }

    /// An id with a function name and a parameter.
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        Self(format!("{}/{}", function_name.into(), parameter))
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self(s)
    }
}

/// The per-benchmark timing driver passed to measurement closures.
pub struct Bencher<'a> {
    budget: Duration,
    sample_size: usize,
    result: &'a mut Option<(f64, usize)>,
}

impl Bencher<'_> {
    /// Times `f`, storing the mean per-iteration duration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up and calibration: run once to estimate the iteration cost.
        let start = Instant::now();
        black_box(f());
        let once = start.elapsed().max(Duration::from_nanos(1));

        // Aim for ~2 ms per sample, at least one iteration.
        let iters = (Duration::from_millis(2).as_nanos() / once.as_nanos()).max(1) as u64;
        let deadline = Instant::now() + self.budget;

        let mut means = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            means.push(t0.elapsed().as_nanos() as f64 / iters as f64);
            if Instant::now() > deadline {
                break;
            }
        }
        let mean = means.iter().sum::<f64>() / means.len() as f64;
        *self.result = Some((mean, means.len()));
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    fn run<F: FnMut(&mut Bencher<'_>)>(&mut self, id: String, mut f: F) {
        let mut result = None;
        let mut bencher = Bencher {
            budget: self.criterion.budget,
            sample_size: self.sample_size,
            result: &mut result,
        };
        f(&mut bencher);
        let full_id = format!("{}/{}", self.name, id);
        if let Some((mean_ns, samples)) = result {
            println!(
                "{full_id:<48} {:>14.1} ns/iter ({samples} samples)",
                mean_ns
            );
            self.criterion.records.push(Record {
                id: full_id,
                mean_ns,
                samples,
            });
        }
    }

    /// Runs one benchmark.
    pub fn bench_function<I: Into<BenchmarkId>, F: FnMut(&mut Bencher<'_>)>(
        &mut self,
        id: I,
        f: F,
    ) -> &mut Self {
        self.run(id.into().0, f);
        self
    }

    /// Runs one benchmark parameterized by an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        self.run(id.0, |b| f(b, input));
        self
    }

    /// Ends the group (kept for API compatibility; a no-op).
    pub fn finish(&mut self) {}
}

/// The benchmark driver.
pub struct Criterion {
    records: Vec<Record>,
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        let budget_ms = std::env::var("BENCH_BUDGET_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(2000u64);
        Self {
            records: Vec::new(),
            budget: Duration::from_millis(budget_ms),
        }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            criterion: self,
        }
    }

    /// Runs an ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher<'_>)>(&mut self, name: &str, f: F) -> &mut Self {
        self.benchmark_group("bench").bench_function(name, f);
        self
    }

    /// All measurements taken so far.
    pub fn records(&self) -> &[Record] {
        &self.records
    }

    /// Records a non-timing scalar (a quality ratio, a model score…)
    /// under `id`, carried through the same `BENCH_JSON` export as the
    /// wall-clock records (in the `mean_ns` field, `samples = 1`). This
    /// is how benches publish *quality* numbers to the perf gate — e.g.
    /// the `mix_vs_sweep` group's heuristic/reference objective ratio,
    /// which `bench_gate` holds above a floor. Not part of the upstream
    /// criterion API.
    pub fn report_metric<S: Into<String>>(&mut self, id: S, value: f64) {
        let id = id.into();
        println!("{id:<48} {value:>14.4} (metric)");
        self.records.push(Record {
            id,
            mean_ns: value,
            samples: 1,
        });
    }

    /// Writes collected results to `$BENCH_JSON` (if set) as a JSON array
    /// of `{id, mean_ns, samples}` objects. Called by [`criterion_main!`].
    pub fn finalize(&self) {
        let Ok(path) = std::env::var("BENCH_JSON") else {
            return;
        };
        let mut out = String::from("[\n");
        for (i, r) in self.records.iter().enumerate() {
            let comma = if i + 1 == self.records.len() { "" } else { "," };
            // Four decimals: nanosecond means don't need more, and
            // sub-unit metric records (quality ratios) must not round
            // to their floor's far side.
            out.push_str(&format!(
                "  {{\"id\": \"{}\", \"mean_ns\": {:.4}, \"samples\": {}}}{comma}\n",
                r.id.replace('"', "'"),
                r.mean_ns,
                r.samples
            ));
        }
        out.push_str("]\n");
        if let Err(e) = std::fs::write(&path, out) {
            eprintln!("criterion: cannot write {path}: {e}");
        }
    }
}

/// Bundles benchmark functions into a group runner, like upstream
/// criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Generates `main` running every group, like upstream criterion's macro
/// of the same name.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
            c.finalize();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_capture_mean() {
        let mut c = Criterion::default();
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(3);
            g.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
            g.finish();
        }
        assert_eq!(c.records().len(), 1);
        let r = &c.records()[0];
        assert_eq!(r.id, "g/noop");
        assert!(r.mean_ns > 0.0);
    }

    #[test]
    fn bench_with_input_passes_value() {
        let mut c = Criterion::default();
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(2);
            g.bench_with_input(BenchmarkId::from_parameter(21), &21u64, |b, &n| {
                b.iter(|| black_box(n * 2))
            });
        }
        assert_eq!(c.records()[0].id, "g/21");
    }

    #[test]
    fn benchmark_id_forms() {
        assert_eq!(BenchmarkId::from_parameter(400).0, "400");
        assert_eq!(BenchmarkId::new("f", 7).0, "f/7");
    }
}
