//! Offline stand-in for the `crossbeam` crate.
//!
//! Only [`scope`] is provided — the workspace uses crossbeam exclusively
//! for scoped threads, which `std::thread::scope` (Rust ≥ 1.63) covers.
//! The shim keeps crossbeam's call shape: the thread closure receives a
//! `&Scope` argument (std's closures take none) and `scope` returns a
//! `Result` (std propagates child panics directly; the `Err` branch is
//! therefore never constructed here).

use std::thread;

/// A scope handle that can spawn further scoped threads.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread. As in crossbeam, the closure receives the
    /// scope so it can spawn siblings.
    pub fn spawn<F, T>(&self, f: F) -> thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let handle = Scope { inner: self.inner };
        self.inner.spawn(move || f(&handle))
    }
}

/// Creates a scope for spawning threads that may borrow from the caller's
/// stack. All spawned threads are joined before `scope` returns.
///
/// # Errors
/// Mirrors crossbeam's signature; with the std backing, child panics
/// resurface as panics in the caller instead, so `Err` is never returned.
pub fn scope<'env, F, R>(f: F) -> thread::Result<R>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(thread::scope(|s| f(&Scope { inner: s })))
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_threads_borrow_and_join() {
        let counter = AtomicUsize::new(0);
        let result = super::scope(|s| {
            for _ in 0..8 {
                s.spawn(|_| counter.fetch_add(1, Ordering::Relaxed));
            }
            42
        })
        .unwrap();
        assert_eq!(result, 42);
        assert_eq!(counter.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn nested_spawn_through_scope_argument() {
        let hits = AtomicUsize::new(0);
        super::scope(|s| {
            s.spawn(|inner| {
                inner.spawn(|_| hits.fetch_add(1, Ordering::Relaxed));
            });
        })
        .unwrap();
        assert_eq!(hits.load(Ordering::Relaxed), 1);
    }
}
