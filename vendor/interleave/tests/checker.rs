//! Self-tests for the interleaving checker: sound kernels pass
//! exhaustively, and deliberately broken kernels — both interleaving
//! bugs (lost update) and memory-ordering bugs (relaxed publish) —
//! are caught with a failing schedule.

use interleave::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use interleave::sync::Mutex;
use interleave::{model, thread, Config};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

/// Runs `f` under the checker expecting it to FAIL; returns the panic
/// message.
fn expect_caught(f: impl Fn() + Send + Sync + 'static) -> String {
    let out = catch_unwind(AssertUnwindSafe(|| model(f)));
    match out {
        Ok(report) => panic!(
            "expected the model check to catch a bug, but {} schedules all passed",
            report.schedules
        ),
        Err(payload) => {
            if let Some(s) = payload.downcast_ref::<String>() {
                s.clone()
            } else if let Some(s) = payload.downcast_ref::<&str>() {
                (*s).to_string()
            } else {
                String::from("(non-string panic)")
            }
        }
    }
}

#[test]
fn counter_increments_are_never_lost() {
    let report = model(|| {
        let counter = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let counter = Arc::clone(&counter);
                thread::spawn(move || {
                    counter.fetch_add(1, Ordering::Relaxed);
                })
            })
            .collect();
        for h in handles {
            h.join();
        }
        assert_eq!(counter.load(Ordering::Relaxed), 2);
    });
    // Two threads, one RMW each: more than one distinct schedule must
    // have been explored or the checker is not exploring at all.
    assert!(report.schedules >= 2, "explored {}", report.schedules);
}

#[test]
fn load_then_store_counter_loses_updates_and_is_caught() {
    // The classic lost update: read-modify-write torn into a relaxed
    // load and a store. Pure interleaving bug — visible even under
    // sequential consistency.
    let msg = expect_caught(|| {
        let counter = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let counter = Arc::clone(&counter);
                thread::spawn(move || {
                    let v = counter.load(Ordering::SeqCst);
                    counter.store(v + 1, Ordering::SeqCst);
                })
            })
            .collect();
        for h in handles {
            h.join();
        }
        assert_eq!(counter.load(Ordering::SeqCst), 2);
    });
    assert!(msg.contains("model check failed"), "got: {msg}");
}

#[test]
fn release_acquire_publish_is_sound() {
    model(|| {
        let data = Arc::new(AtomicU64::new(0));
        let flag = Arc::new(AtomicBool::new(false));
        let (d, f) = (Arc::clone(&data), Arc::clone(&flag));
        let t = thread::spawn(move || {
            d.store(42, Ordering::Relaxed);
            f.store(true, Ordering::Release);
        });
        if flag.load(Ordering::Acquire) {
            // Acquire saw the Release store: the data store
            // happens-before us, stale 0 is unreadable.
            assert_eq!(data.load(Ordering::Relaxed), 42);
        }
        t.join();
    });
}

#[test]
fn relaxed_publish_reads_stale_data_and_is_caught() {
    // Memory-ordering bug, NOT an interleaving bug: under sequential
    // consistency this would pass every schedule. Only the store
    // history + vector-clock layer can see the stale read.
    let msg = expect_caught(|| {
        let data = Arc::new(AtomicU64::new(0));
        let flag = Arc::new(AtomicBool::new(false));
        let (d, f) = (Arc::clone(&data), Arc::clone(&flag));
        let t = thread::spawn(move || {
            d.store(42, Ordering::Relaxed);
            f.store(true, Ordering::Relaxed); // broken: no Release
        });
        if flag.load(Ordering::Relaxed) {
            // broken: no Acquire
            assert_eq!(data.load(Ordering::Relaxed), 42);
        }
        t.join();
    });
    assert!(msg.contains("model check failed"), "got: {msg}");
}

#[test]
fn mutex_provides_mutual_exclusion_and_sync() {
    let report = model(|| {
        let total = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let total = Arc::clone(&total);
                thread::spawn(move || {
                    let mut g = total.lock();
                    *g += 1;
                })
            })
            .collect();
        for h in handles {
            h.join();
        }
        assert_eq!(*total.lock(), 2);
    });
    assert!(report.schedules >= 2);
}

#[test]
fn ab_ba_deadlock_is_detected() {
    let msg = expect_caught(|| {
        let a = Arc::new(Mutex::new(()));
        let b = Arc::new(Mutex::new(()));
        let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
        let t = thread::spawn(move || {
            let _ga = a2.lock();
            let _gb = b2.lock();
        });
        let _gb = b.lock();
        let _ga = a.lock();
        drop((_ga, _gb));
        t.join();
    });
    assert!(msg.contains("deadlock"), "got: {msg}");
}

#[test]
fn preemption_bound_caps_the_search() {
    let bounded = Config {
        preemption_bound: Some(1),
        ..Config::default()
    }
    .check(|| {
        let counter = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let counter = Arc::clone(&counter);
                thread::spawn(move || {
                    counter.fetch_add(1, Ordering::Relaxed);
                    counter.fetch_add(1, Ordering::Relaxed);
                })
            })
            .collect();
        for h in handles {
            h.join();
        }
        assert_eq!(counter.load(Ordering::Relaxed), 4);
    });
    let unbounded = model(|| {
        let counter = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let counter = Arc::clone(&counter);
                thread::spawn(move || {
                    counter.fetch_add(1, Ordering::Relaxed);
                    counter.fetch_add(1, Ordering::Relaxed);
                })
            })
            .collect();
        for h in handles {
            h.join();
        }
        assert_eq!(counter.load(Ordering::Relaxed), 4);
    });
    assert!(bounded.max_preemptions <= 1);
    assert!(
        bounded.schedules < unbounded.schedules,
        "bound {} vs exhaustive {}",
        bounded.schedules,
        unbounded.schedules
    );
}

#[test]
fn rmw_never_reads_stale_values() {
    // fetch_max with Relaxed ordering still acts on the latest value
    // in modification order (C11 RMW atomicity) — the checker must
    // NOT report a lost max here.
    model(|| {
        let max = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = [3u64, 7, 5]
            .into_iter()
            .map(|v| {
                let max = Arc::clone(&max);
                thread::spawn(move || {
                    max.fetch_max(v, Ordering::Relaxed);
                })
            })
            .collect();
        for h in handles {
            h.join();
        }
        assert_eq!(max.load(Ordering::Relaxed), 7);
    });
}

#[test]
fn coherence_loads_never_go_backward() {
    model(|| {
        let x = Arc::new(AtomicU64::new(0));
        let x2 = Arc::clone(&x);
        let t = thread::spawn(move || {
            x2.store(1, Ordering::Relaxed);
            x2.store(2, Ordering::Relaxed);
        });
        let a = x.load(Ordering::Relaxed);
        let b = x.load(Ordering::Relaxed);
        assert!(b >= a, "coherence violated: read {a} then {b}");
        t.join();
    });
}
