//! The exploration runtime: one scheduler token, a DFS over a choice
//! tree, vector clocks for release/acquire visibility.
//!
//! Execution model: every model thread is a real OS thread, but only
//! one — the *active* thread — runs user code at a time. Each shared
//! event (atomic op, lock op, spawn, join) first calls
//! [`switch_point`], which picks the next thread to run from the
//! current runnable set. Which thread is picked, and which store a
//! relaxed load returns, are *choices*; the driver in `lib.rs` replays
//! a recorded prefix of choices and takes the first untried
//! alternative at the frontier, depth-first, until the whole tree is
//! exhausted.
//!
//! Memory model (a deliberately small slice of C11, over-approximating
//! where it simplifies — extra behaviors can cause false alarms only
//! for SC-dependent algorithms, never missed bugs for the
//! release/acquire kernels this repo checks):
//!
//! - Every atomic location keeps its full store history in
//!   modification order. A load may read any store not yet overwritten
//!   by a store that happens-before the load (per-thread coherence is
//!   also enforced: reads never go backward in modification order).
//! - `Release`-or-stronger stores carry the writer's vector clock;
//!   `Acquire`-or-stronger loads that read them join it. `Relaxed`
//!   never synchronizes.
//! - RMW operations read the *latest* store in modification order
//!   (C11 atomicity: no RMW ever acts on a stale value).
//! - `SeqCst` is approximated as `AcqRel` (no global SC order), which
//!   only ever *adds* behaviors.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex as StdMutex};

pub(crate) type Tid = usize;

/// A vector clock; index = thread id.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub(crate) struct VClock(Vec<u32>);

impl VClock {
    pub(crate) fn tick(&mut self, tid: Tid) {
        if self.0.len() <= tid {
            self.0.resize(tid + 1, 0);
        }
        self.0[tid] += 1;
    }

    pub(crate) fn join(&mut self, other: &VClock) {
        if self.0.len() < other.0.len() {
            self.0.resize(other.0.len(), 0);
        }
        for (a, &b) in self.0.iter_mut().zip(other.0.iter()) {
            *a = (*a).max(b);
        }
    }

    /// Pointwise `self <= other`: does every event below `self` also
    /// sit below `other`?
    pub(crate) fn leq(&self, other: &VClock) -> bool {
        self.0
            .iter()
            .enumerate()
            .all(|(i, &a)| a <= other.0.get(i).copied().unwrap_or(0))
    }
}

/// One store in a location's modification order.
pub(crate) struct StoreRec {
    pub(crate) val: u64,
    /// The writer's clock when it stored — the set of events that
    /// happen-before this store.
    pub(crate) clock: VClock,
    /// `Some(clock)` when the store was `Release` or stronger: the
    /// clock an acquiring reader joins.
    pub(crate) sync: Option<VClock>,
}

pub(crate) struct AtomicState {
    pub(crate) stores: Vec<StoreRec>,
}

pub(crate) struct LockState {
    pub(crate) holder: Option<Tid>,
    /// Clock released by the last unlock (lock/unlock always
    /// synchronize, like `Acquire`/`Release`).
    pub(crate) clock: VClock,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Status {
    Ready,
    BlockedLock(usize),
    BlockedJoin(Tid),
    Finished,
}

pub(crate) struct ThreadMeta {
    pub(crate) status: Status,
    pub(crate) clock: VClock,
    /// Per-location floor in modification order: coherence forbids
    /// this thread from reading any store before `last_seen[loc]`.
    pub(crate) last_seen: Vec<usize>,
}

impl ThreadMeta {
    fn new(clock: VClock) -> Self {
        ThreadMeta {
            status: Status::Ready,
            clock,
            last_seen: Vec::new(),
        }
    }

    fn seen_floor(&self, loc: usize) -> usize {
        self.last_seen.get(loc).copied().unwrap_or(0)
    }

    fn note_seen(&mut self, loc: usize, idx: usize) {
        if self.last_seen.len() <= loc {
            self.last_seen.resize(loc + 1, 0);
        }
        self.last_seen[loc] = self.last_seen[loc].max(idx);
    }
}

/// One node of the DFS choice tree: `n` alternatives existed, `idx`
/// was taken. `sched` distinguishes scheduling choices (subject to the
/// preemption bound) from load-value choices (not).
#[derive(Clone, Copy, Debug)]
pub(crate) struct ChoicePoint {
    pub(crate) n: usize,
    pub(crate) idx: usize,
    pub(crate) sched: bool,
}

pub(crate) struct Exec {
    pub(crate) threads: Vec<ThreadMeta>,
    pub(crate) active: Option<Tid>,
    pub(crate) live: usize,
    pub(crate) atomics: Vec<AtomicState>,
    pub(crate) locks: Vec<LockState>,
    pub(crate) stack: Vec<ChoicePoint>,
    pub(crate) cursor: usize,
    pub(crate) preemptions: usize,
    pub(crate) preemption_bound: Option<usize>,
    pub(crate) failure: Option<String>,
    pub(crate) abort: bool,
}

impl Exec {
    pub(crate) fn new(stack: Vec<ChoicePoint>, preemption_bound: Option<usize>) -> Self {
        let mut root = VClock::default();
        root.tick(0);
        Exec {
            threads: vec![ThreadMeta::new(root)],
            active: Some(0),
            live: 1,
            atomics: Vec::new(),
            locks: Vec::new(),
            stack,
            cursor: 0,
            preemptions: 0,
            preemption_bound,
            failure: None,
            abort: false,
        }
    }

    /// Takes the next branch index for a choice with `n` alternatives:
    /// replayed from the prefix when inside it, else recorded as a new
    /// frontier node taking alternative 0.
    fn choose(&mut self, n: usize, sched: bool) -> usize {
        debug_assert!(n > 0);
        let idx = if self.cursor < self.stack.len() {
            let cp = self.stack[self.cursor];
            assert_eq!(
                cp.n, n,
                "interleave: nondeterministic model (replay diverged); \
                 model closures must be deterministic apart from interleaving"
            );
            cp.idx
        } else {
            self.stack.push(ChoicePoint { n, idx: 0, sched });
            0
        };
        self.cursor += 1;
        idx
    }

    fn runnable(&self) -> Vec<Tid> {
        self.threads
            .iter()
            .enumerate()
            .filter(|(_, t)| t.status == Status::Ready)
            .map(|(tid, _)| tid)
            .collect()
    }

    /// Picks and activates the next thread. `from` is the caller (its
    /// status already reflects whether it can keep running).
    fn schedule_next(&mut self, from: Tid) {
        if self.abort {
            self.active = None;
            return;
        }
        let mut cands = self.runnable();
        if cands.is_empty() {
            if self.live > 0 {
                self.fail(format!(
                    "deadlock: {} thread(s) blocked with no runnable thread",
                    self.live
                ));
            }
            self.active = None;
            return;
        }
        let from_ready = self.threads[from].status == Status::Ready;
        let bound_hit = self.preemption_bound.is_some_and(|b| self.preemptions >= b);
        if from_ready && bound_hit {
            // Out of preemption budget: keep running the current
            // thread (it only yields when it blocks or finishes).
            cands = vec![from];
        }
        let chosen = if cands.len() == 1 {
            cands[0]
        } else {
            let idx = self.choose(cands.len(), true);
            cands[idx]
        };
        if chosen != from && from_ready {
            self.preemptions += 1;
        }
        self.active = Some(chosen);
    }

    pub(crate) fn fail(&mut self, msg: String) {
        if self.failure.is_none() {
            self.failure = Some(msg);
        }
        self.abort = true;
        self.active = None;
    }
}

/// Payload used to unwind parked threads when an iteration aborts; the
/// thread wrapper recognizes and swallows it.
pub(crate) struct Abort;

pub(crate) struct Runtime {
    pub(crate) exec: StdMutex<Exec>,
    pub(crate) cv: Condvar,
    /// OS handles of every model thread in the current iteration, so
    /// the driver can join them all before the next iteration.
    pub(crate) os_handles: StdMutex<VecDeque<std::thread::JoinHandle<()>>>,
}

impl Runtime {
    pub(crate) fn new(stack: Vec<ChoicePoint>, preemption_bound: Option<usize>) -> Self {
        Runtime {
            exec: StdMutex::new(Exec::new(stack, preemption_bound)),
            cv: Condvar::new(),
            os_handles: StdMutex::new(VecDeque::new()),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Exec> {
        self.exec
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Blocks `me` until it is the active thread. Panics with [`Abort`]
    /// when the iteration is being torn down.
    fn wait_for_turn<'a>(
        &'a self,
        mut ex: std::sync::MutexGuard<'a, Exec>,
        me: Tid,
    ) -> std::sync::MutexGuard<'a, Exec> {
        loop {
            if ex.abort {
                drop(ex);
                std::panic::panic_any(Abort);
            }
            if ex.active == Some(me) {
                return ex;
            }
            ex = self
                .cv
                .wait(ex)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// The pre-event scheduling point: every shared operation calls
    /// this first, so any runnable thread may slot in before the
    /// operation takes effect.
    pub(crate) fn switch_point(&self, me: Tid) {
        let mut ex = self.lock();
        debug_assert_eq!(ex.active, Some(me));
        ex.schedule_next(me);
        self.cv.notify_all();
        let ex = self.wait_for_turn(ex, me);
        drop(ex);
    }

    /// Called by a thread wrapper when user code is done (or panicked).
    pub(crate) fn finish(&self, me: Tid, panic_msg: Option<String>) {
        let mut ex = self.lock();
        ex.threads[me].status = Status::Finished;
        ex.live -= 1;
        if let Some(msg) = panic_msg {
            ex.fail(msg);
        } else {
            // Wake joiners.
            for t in ex.threads.iter_mut() {
                if t.status == Status::BlockedJoin(me) {
                    t.status = Status::Ready;
                }
            }
            ex.schedule_next(me);
        }
        self.cv.notify_all();
    }

    /// Registers a spawned model thread; the OS thread is created by
    /// the caller. Spawning is a synchronizing event (the child starts
    /// with the parent's clock).
    pub(crate) fn register_thread(&self, parent: Tid) -> Tid {
        let mut ex = self.lock();
        let tid = ex.threads.len();
        let mut clock = ex.threads[parent].clock.clone();
        clock.tick(tid);
        ex.threads.push(ThreadMeta::new(clock));
        ex.threads[parent].clock.tick(parent);
        ex.live += 1;
        tid
    }

    /// First call made by a freshly spawned model thread: park until
    /// scheduled for the first time.
    pub(crate) fn first_turn(&self, me: Tid) {
        let ex = self.lock();
        let ex = self.wait_for_turn(ex, me);
        drop(ex);
    }

    pub(crate) fn join_thread(&self, me: Tid, target: Tid) {
        self.switch_point(me);
        let mut ex = self.lock();
        loop {
            if ex.threads[target].status == Status::Finished {
                let tclock = ex.threads[target].clock.clone();
                ex.threads[me].clock.join(&tclock);
                return;
            }
            ex.threads[me].status = Status::BlockedJoin(target);
            ex.schedule_next(me);
            self.cv.notify_all();
            ex = self.wait_for_turn(ex, me);
        }
    }

    // ---- atomics ----------------------------------------------------

    pub(crate) fn new_atomic(&self, me: Tid, val: u64) -> usize {
        let mut ex = self.lock();
        let loc = ex.atomics.len();
        ex.threads[me].clock.tick(me);
        let clock = ex.threads[me].clock.clone();
        ex.atomics.push(AtomicState {
            stores: vec![StoreRec {
                val,
                clock: clock.clone(),
                sync: Some(clock),
            }],
        });
        ex.threads[me].note_seen(loc, 0);
        loc
    }

    pub(crate) fn atomic_load(&self, me: Tid, loc: usize, acquire: bool) -> u64 {
        self.switch_point(me);
        let mut ex = self.lock();
        let my_clock = ex.threads[me].clock.clone();
        let floor = ex.threads[me].seen_floor(loc);
        // Coherence + happens-before: the earliest readable store is
        // the latest one that happens-before this load (everything
        // before it is hb-overwritten), or this thread's own floor,
        // whichever is later.
        let (lo, hi) = {
            let stores = &ex.atomics[loc].stores;
            let mut latest_hb = 0;
            for (i, s) in stores.iter().enumerate() {
                if s.clock.leq(&my_clock) {
                    latest_hb = i;
                }
            }
            (floor.max(latest_hb), stores.len() - 1)
        };
        // Candidates newest-first, so branch 0 of the DFS is the
        // sequentially-consistent-looking run.
        let idx = if lo == hi {
            hi
        } else {
            hi - ex.choose(hi - lo + 1, false)
        };
        let val = ex.atomics[loc].stores[idx].val;
        if acquire {
            if let Some(sync) = ex.atomics[loc].stores[idx].sync.clone() {
                ex.threads[me].clock.join(&sync);
            }
        }
        ex.threads[me].note_seen(loc, idx);
        val
    }

    pub(crate) fn atomic_store(&self, me: Tid, loc: usize, val: u64, release: bool) {
        self.switch_point(me);
        let mut ex = self.lock();
        ex.threads[me].clock.tick(me);
        let clock = ex.threads[me].clock.clone();
        let sync = release.then(|| clock.clone());
        ex.atomics[loc].stores.push(StoreRec { val, clock, sync });
        let idx = ex.atomics[loc].stores.len() - 1;
        ex.threads[me].note_seen(loc, idx);
    }

    /// Atomic read-modify-write: reads the *latest* store (C11 RMW
    /// atomicity), writes `f(old)` right after it in modification
    /// order. Returns the old value.
    pub(crate) fn atomic_rmw(
        &self,
        me: Tid,
        loc: usize,
        acquire: bool,
        release: bool,
        f: impl FnOnce(u64) -> Option<u64>,
    ) -> u64 {
        self.switch_point(me);
        let mut ex = self.lock();
        let last = ex.atomics[loc].stores.len() - 1;
        let old = ex.atomics[loc].stores[last].val;
        if acquire {
            if let Some(sync) = ex.atomics[loc].stores[last].sync.clone() {
                ex.threads[me].clock.join(&sync);
            }
        }
        ex.threads[me].note_seen(loc, last);
        if let Some(new) = f(old) {
            ex.threads[me].clock.tick(me);
            let clock = ex.threads[me].clock.clone();
            let sync = release.then(|| clock.clone());
            ex.atomics[loc].stores.push(StoreRec {
                val: new,
                clock,
                sync,
            });
            let idx = ex.atomics[loc].stores.len() - 1;
            ex.threads[me].note_seen(loc, idx);
        }
        old
    }

    // ---- locks ------------------------------------------------------

    pub(crate) fn new_lock(&self, me: Tid) -> usize {
        let mut ex = self.lock();
        let id = ex.locks.len();
        ex.threads[me].clock.tick(me);
        let clock = ex.threads[me].clock.clone();
        ex.locks.push(LockState {
            holder: None,
            clock,
        });
        id
    }

    pub(crate) fn lock_acquire(&self, me: Tid, lock: usize) {
        self.switch_point(me);
        let mut ex = self.lock();
        loop {
            if ex.locks[lock].holder.is_none() {
                ex.locks[lock].holder = Some(me);
                let lclock = ex.locks[lock].clock.clone();
                ex.threads[me].clock.join(&lclock);
                return;
            }
            ex.threads[me].status = Status::BlockedLock(lock);
            ex.schedule_next(me);
            self.cv.notify_all();
            ex = self.wait_for_turn(ex, me);
        }
    }

    pub(crate) fn lock_release(&self, me: Tid, lock: usize) {
        let mut ex = self.lock();
        debug_assert_eq!(ex.locks[lock].holder, Some(me));
        ex.threads[me].clock.tick(me);
        let clock = ex.threads[me].clock.clone();
        ex.locks[lock].holder = None;
        ex.locks[lock].clock.join(&clock);
        for t in ex.threads.iter_mut() {
            if t.status == Status::BlockedLock(lock) {
                t.status = Status::Ready;
            }
        }
        drop(ex);
        self.cv.notify_all();
    }

    /// Raw (no scheduling) unlock used while unwinding a panic, where
    /// taking another scheduling turn would double-panic.
    pub(crate) fn lock_release_raw(&self, me: Tid, lock: usize) {
        let mut ex = self.lock();
        if ex.locks[lock].holder == Some(me) {
            ex.locks[lock].holder = None;
            for t in ex.threads.iter_mut() {
                if t.status == Status::BlockedLock(lock) {
                    t.status = Status::Ready;
                }
            }
        }
        drop(ex);
        self.cv.notify_all();
    }
}
