//! Model threads: [`spawn`] mirrors `std::thread::spawn`, but the
//! spawned closure runs under the exploration scheduler — it only
//! executes while the scheduler token is on it.

use crate::rt::{Runtime, Tid};
use crate::{is_abort, payload_message};
use std::cell::RefCell;
use std::panic::AssertUnwindSafe;
use std::sync::{Arc, Mutex as StdMutex};

thread_local! {
    /// The runtime + model-thread id of the OS thread we're on, set
    /// for the duration of the model closure.
    static CURRENT: RefCell<Option<(Arc<Runtime>, Tid)>> = const { RefCell::new(None) };
}

/// The current model-thread context; panics when called outside a
/// [`model`](crate::model) run.
pub(crate) fn current() -> (Arc<Runtime>, Tid) {
    CURRENT.with(|c| {
        c.borrow()
            .clone()
            // audit: allow(unwrap, "using a model primitive outside
            // interleave::model is a harness misuse bug; panicking with
            // this message is the designed diagnostic")
            .expect("interleave primitives may only be used inside interleave::model")
    })
}

/// Runs `f` as model thread `tid`: waits for its first scheduling
/// turn, runs, records panics, and hands the token onward.
pub(crate) fn run_model_thread(rt: Arc<Runtime>, tid: Tid, f: impl FnOnce()) {
    CURRENT.with(|c| *c.borrow_mut() = Some((Arc::clone(&rt), tid)));
    rt.first_turn(tid);
    let outcome = std::panic::catch_unwind(AssertUnwindSafe(f));
    let panic_msg = match outcome {
        Ok(()) => None,
        Err(payload) if is_abort(payload.as_ref()) => None,
        Err(payload) => Some(payload_message(payload.as_ref())),
    };
    CURRENT.with(|c| *c.borrow_mut() = None);
    rt.finish(tid, panic_msg);
}

/// Handle to a spawned model thread; [`JoinHandle::join`] blocks (in
/// model time) until it finishes and returns its result.
pub struct JoinHandle<T> {
    target: Tid,
    result: Arc<StdMutex<Option<T>>>,
}

/// Spawns a model thread. Unlike `std`, the closure's panic does not
/// surface through [`JoinHandle::join`]: any model-thread panic fails
/// the whole model check with the offending schedule.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let (rt, me) = current();
    let tid = rt.register_thread(me);
    let result: Arc<StdMutex<Option<T>>> = Arc::new(StdMutex::new(None));
    let os = {
        let rt_child = Arc::clone(&rt);
        let result = Arc::clone(&result);
        std::thread::spawn(move || {
            run_model_thread(Arc::clone(&rt_child), tid, move || {
                let out = f();
                *result
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(out);
            });
        })
    };
    rt.os_handles
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .push_back(os);
    // Let the scheduler consider running the child right away.
    rt.switch_point(me);
    JoinHandle {
        target: tid,
        result,
    }
}

impl<T> JoinHandle<T> {
    /// Blocks until the target model thread finishes; returns its
    /// closure's value.
    pub fn join(self) -> T {
        let (rt, me) = current();
        rt.join_thread(me, self.target);
        self.result
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .take()
            // audit: allow(unwrap, "join_thread returns only after the model
            // thread finished, which always stores a result; absence is an
            // internal checker invariant violation")
            .expect("joined model thread stored its result")
    }
}

/// A scheduling point with no memory effect (`std::thread::yield_now`
/// analog) — lets the DFS consider running another thread here.
pub fn yield_now() {
    let (rt, me) = current();
    rt.switch_point(me);
}
