//! Offline stand-in for a `loom`-style exhaustive interleaving
//! checker (crates.io is unreachable in this build environment, so
//! the real `loom` cannot be used).
//!
//! [`model`] runs a closure over and over, exploring **every**
//! schedule of its [`thread::spawn`]ed model threads and every value a
//! relaxed atomic load may legally return, by depth-first search over
//! a recorded choice tree. Shared state must go through the types in
//! [`sync`] ([`sync::atomic::AtomicU64`], [`sync::Mutex`], …) — plain
//! `std` types would be invisible to the scheduler.
//!
//! ```
//! use interleave::sync::atomic::{AtomicU64, Ordering};
//! use interleave::{model, thread};
//! use std::sync::Arc;
//!
//! let report = model(|| {
//!     let counter = Arc::new(AtomicU64::new(0));
//!     let handles: Vec<_> = (0..2)
//!         .map(|_| {
//!             let counter = Arc::clone(&counter);
//!             thread::spawn(move || {
//!                 counter.fetch_add(1, Ordering::Relaxed);
//!             })
//!         })
//!         .collect();
//!     for h in handles {
//!         h.join();
//!     }
//!     assert_eq!(counter.load(Ordering::Relaxed), 2);
//! });
//! assert!(report.schedules >= 2);
//! ```
//!
//! A failed assertion (or an explicit panic) in any schedule aborts
//! the exploration and re-panics with the failing schedule's choice
//! trace, so `cargo test` reports model-check failures like ordinary
//! test failures. Deadlocks (all threads blocked) are failures too.
//!
//! # What the memory model does and does not cover
//!
//! See `rt.rs` for the precise rules. In short: full store histories
//! with coherence, release/acquire synchronization via vector clocks,
//! C11 RMW atomicity (RMWs never read stale values), and `SeqCst`
//! approximated as `AcqRel`. The approximation only ever *adds*
//! behaviors, so a kernel that passes here is sound under
//! release/acquire semantics; algorithms that genuinely require the
//! global SeqCst order (e.g. Dekker's) may report false alarms.
//! Non-atomic shared memory is not modeled — route shared data through
//! the provided atomics or [`sync::Mutex`].
//!
//! # Bounded preemption
//!
//! [`Config::preemption_bound`] caps how many times the scheduler may
//! switch away from a *runnable* thread, the classic iterative
//! context-bounding trick: almost all real concurrency bugs manifest
//! with ≤ 2 preemptions, and the bound turns an exponential schedule
//! space into a small polynomial one. `None` (the default) explores
//! exhaustively.

// audit: allow-file(unwrap, "checker runtime: a poisoned internal mutex or
// empty store history is an internal invariant violation; aborting the model
// run with a panic is the designed failure mode")

mod rt;
pub mod sync;
pub mod thread;

use rt::{Abort, ChoicePoint, Runtime};
use std::sync::Arc;

/// Exploration statistics returned by a successful [`model`] run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Report {
    /// Distinct schedules (complete executions) explored.
    pub schedules: usize,
    /// Highest preemption count used by any explored schedule.
    pub max_preemptions: usize,
}

/// Exploration limits; see [`Config::check`].
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Max times the scheduler may switch away from a runnable thread
    /// per schedule (`None` = unbounded, fully exhaustive).
    pub preemption_bound: Option<usize>,
    /// Hard cap on explored schedules: exceeding it panics with advice
    /// to set a preemption bound (a model too big to enumerate is a
    /// model that silently proves nothing).
    pub max_schedules: usize,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            preemption_bound: None,
            max_schedules: 1_000_000,
        }
    }
}

/// Exhaustively model-checks `f` with the default [`Config`].
///
/// # Panics
/// When any schedule panics (assertion failure), deadlocks, or the
/// schedule cap is exceeded.
pub fn model<F>(f: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    Config::default().check(f)
}

impl Config {
    /// Runs the DFS over every schedule of `f` under this config.
    pub fn check<F>(&self, f: F) -> Report
    where
        F: Fn() + Send + Sync + 'static,
    {
        let f: Arc<dyn Fn() + Send + Sync> = Arc::new(f);
        let mut stack: Vec<ChoicePoint> = Vec::new();
        let mut schedules = 0usize;
        let mut max_preemptions = 0usize;
        loop {
            schedules += 1;
            assert!(
                schedules <= self.max_schedules,
                "interleave: exceeded {} schedules; set Config::preemption_bound \
                 to keep the model tractable",
                self.max_schedules
            );
            let rt = Arc::new(Runtime::new(
                std::mem::take(&mut stack),
                self.preemption_bound,
            ));
            run_iteration(&rt, &f);
            let mut ex = rt
                .exec
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            if let Some(msg) = ex.failure.take() {
                // audit: allow(panic, "re-raising a model-check failure to
                // the caller's test harness is the checker's entire output
                // contract")
                panic!(
                    "model check failed on schedule #{schedules} \
                     (after {} choices: {}): {msg}",
                    ex.stack.len(),
                    trace(&ex.stack),
                    msg = msg
                );
            }
            max_preemptions = max_preemptions.max(ex.preemptions);
            stack = std::mem::take(&mut ex.stack);
            drop(ex);
            // Depth-first backtrack: advance the deepest choice that
            // still has an untried alternative, drop everything below.
            loop {
                match stack.last_mut() {
                    None => {
                        return Report {
                            schedules,
                            max_preemptions,
                        }
                    }
                    Some(cp) if cp.idx + 1 < cp.n => {
                        cp.idx += 1;
                        break;
                    }
                    Some(_) => {
                        stack.pop();
                    }
                }
            }
        }
    }
}

/// Runs one complete execution of the model closure under `rt`'s
/// replay stack, blocking until every model thread has finished.
fn run_iteration(rt: &Arc<Runtime>, f: &Arc<dyn Fn() + Send + Sync>) {
    let main = {
        let rt = Arc::clone(rt);
        let f = Arc::clone(f);
        std::thread::spawn(move || thread::run_model_thread(rt, 0, move || f()))
    };
    // Wait for the whole iteration to drain.
    {
        let mut ex = rt
            .exec
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        while ex.live > 0 {
            ex = rt
                .cv
                .wait(ex)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }
    let _ = main.join();
    loop {
        let h = rt.os_handles.lock().unwrap().pop_front();
        match h {
            Some(h) => {
                let _ = h.join();
            }
            None => break,
        }
    }
}

/// Compact `thread-or-value:alternative` rendering of a schedule, for
/// failure messages.
fn trace(stack: &[ChoicePoint]) -> String {
    stack
        .iter()
        .map(|cp| format!("{}{}/{}", if cp.sched { 's' } else { 'v' }, cp.idx, cp.n))
        .collect::<Vec<_>>()
        .join(" ")
}

pub(crate) fn is_abort(payload: &(dyn std::any::Any + Send)) -> bool {
    payload.is::<Abort>()
}

pub(crate) fn payload_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "model thread panicked (non-string payload)".to_string()
    }
}
