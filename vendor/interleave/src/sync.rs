//! Model-aware shared-state primitives: atomics with full store
//! histories and a schedulable [`Mutex`].
//!
//! This module holds the crate's only `unsafe` code: [`Mutex`] keeps
//! its data in an `UnsafeCell` and is shared across model threads,
//! which is sound because the exploration scheduler in `rt.rs` runs
//! exactly one model thread at a time and the lock discipline is
//! enforced by the model itself (a second `lock()` blocks in model
//! time before any aliasing access can happen).

use crate::thread::current;
use std::cell::UnsafeCell;

pub mod atomic {
    //! Model atomics. `Ordering` is re-exported from `std` so model
    //! code reads exactly like the kernel it mirrors.

    use super::*;
    pub use std::sync::atomic::Ordering;

    fn acq(o: Ordering) -> bool {
        matches!(o, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst)
    }

    fn rel(o: Ordering) -> bool {
        matches!(o, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst)
    }

    /// Registers and drives one model atomic location (u64 backing).
    #[derive(Debug)]
    struct Loc(usize);

    impl Loc {
        fn new(v: u64) -> Loc {
            let (rt, me) = current();
            Loc(rt.new_atomic(me, v))
        }

        fn load(&self, o: Ordering) -> u64 {
            let (rt, me) = current();
            rt.atomic_load(me, self.0, acq(o))
        }

        fn store(&self, v: u64, o: Ordering) {
            let (rt, me) = current();
            rt.atomic_store(me, self.0, v, rel(o));
        }

        fn rmw(&self, o: Ordering, f: impl FnOnce(u64) -> Option<u64>) -> u64 {
            let (rt, me) = current();
            rt.atomic_rmw(me, self.0, acq(o), rel(o), f)
        }
    }

    /// Model `std::sync::atomic::AtomicU64`.
    #[derive(Debug)]
    pub struct AtomicU64(Loc);

    impl AtomicU64 {
        pub fn new(v: u64) -> Self {
            AtomicU64(Loc::new(v))
        }

        pub fn load(&self, o: Ordering) -> u64 {
            self.0.load(o)
        }

        pub fn store(&self, v: u64, o: Ordering) {
            self.0.store(v, o)
        }

        pub fn fetch_add(&self, v: u64, o: Ordering) -> u64 {
            self.0.rmw(o, |old| Some(old.wrapping_add(v)))
        }

        pub fn fetch_max(&self, v: u64, o: Ordering) -> u64 {
            self.0.rmw(o, |old| Some(old.max(v)))
        }

        pub fn swap(&self, v: u64, o: Ordering) -> u64 {
            self.0.rmw(o, |_| Some(v))
        }

        /// C11 strong compare-exchange. On failure the failure
        /// ordering is approximated by the success ordering's acquire
        /// half (over-approximation: never hides a bug).
        pub fn compare_exchange(
            &self,
            cur: u64,
            new: u64,
            o: Ordering,
            _fail: Ordering,
        ) -> Result<u64, u64> {
            let old = self.0.rmw(o, |old| (old == cur).then_some(new));
            if old == cur {
                Ok(old)
            } else {
                Err(old)
            }
        }
    }

    /// Model `std::sync::atomic::AtomicUsize`.
    #[derive(Debug)]
    pub struct AtomicUsize(Loc);

    impl AtomicUsize {
        pub fn new(v: usize) -> Self {
            AtomicUsize(Loc::new(v as u64))
        }

        pub fn load(&self, o: Ordering) -> usize {
            self.0.load(o) as usize
        }

        pub fn store(&self, v: usize, o: Ordering) {
            self.0.store(v as u64, o)
        }

        pub fn fetch_add(&self, v: usize, o: Ordering) -> usize {
            self.0.rmw(o, |old| Some(old.wrapping_add(v as u64))) as usize
        }
    }

    /// Model `std::sync::atomic::AtomicBool`.
    #[derive(Debug)]
    pub struct AtomicBool(Loc);

    impl AtomicBool {
        pub fn new(v: bool) -> Self {
            AtomicBool(Loc::new(v as u64))
        }

        pub fn load(&self, o: Ordering) -> bool {
            self.0.load(o) != 0
        }

        pub fn store(&self, v: bool, o: Ordering) {
            self.0.store(v as u64, o)
        }

        pub fn swap(&self, v: bool, o: Ordering) -> bool {
            self.0.rmw(o, |_| Some(v as u64)) != 0
        }
    }
}

/// Model mutex: blocking in model time, release/acquire
/// synchronization on unlock→lock edges, deadlock-detected.
#[derive(Debug)]
pub struct Mutex<T> {
    id: usize,
    data: UnsafeCell<T>,
}

// audit: allow(unsafe, "the exploration scheduler serializes model threads:
// at most one runs between switch points, and lock() blocks in model time
// before any aliasing deref can occur")
unsafe impl<T: Send> Send for Mutex<T> {}
// audit: allow(unsafe, "see Send impl above: model-time mutual exclusion
// guarantees no concurrent &mut aliasing through the UnsafeCell")
unsafe impl<T: Send> Sync for Mutex<T> {}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        let (rt, me) = current();
        Mutex {
            id: rt.new_lock(me),
            data: UnsafeCell::new(value),
        }
    }

    /// Acquires the lock, blocking (in model time) until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let (rt, me) = current();
        rt.lock_acquire(me, self.id);
        MutexGuard { mutex: self }
    }
}

/// Guard returned by [`Mutex::lock`]; unlocks (a release event) on
/// drop.
pub struct MutexGuard<'a, T> {
    mutex: &'a Mutex<T>,
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        // audit: allow(unsafe, "guard existence proves this model thread
        // holds the model lock; the scheduler runs no other thread")
        unsafe { &*self.mutex.data.get() }
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // audit: allow(unsafe, "guard existence proves exclusive model-time
        // access; see Deref")
        unsafe { &mut *self.mutex.data.get() }
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        let (rt, me) = current();
        if std::thread::panicking() {
            // Unwinding (user assertion failure or iteration abort):
            // taking a scheduling turn here would panic inside a
            // panic. Release raw so other model threads can drain.
            rt.lock_release_raw(me, self.mutex.id);
        } else {
            rt.lock_release(me, self.mutex.id);
        }
    }
}
