//! Deploying **several applications** on one hierarchy — the paper's last
//! future-work item, end to end: plan the shared tree, partition the
//! servers among the services, predict with the mix model, and measure in
//! the simulator.
//!
//! ```text
//! cargo run --release --example multiservice_deployment
//! ```

use adept::core::model::mix::evaluate_mix;
use adept::core::planner::MixPlanner;
use adept::prelude::*;

fn main() {
    let platform = generator::heterogenized_cluster(
        "orsay",
        36,
        MflopRate(400.0),
        BackgroundLoad::default(),
        CapacityProbe::exact(),
        17,
    );
    // Two applications with a 2:1 request mix.
    let mix = ServiceMix::new(vec![
        (Dgemm::new(100).service(), 2.0),
        (Dgemm::new(310).service(), 1.0),
    ]);
    println!(
        "mix: {} ({}%), {} ({}%)",
        mix.service(0),
        (mix.share(0) * 100.0) as u32,
        mix.service(1),
        (mix.share(1) * 100.0) as u32,
    );

    // Plan tree and server partition jointly on the batched incremental
    // evaluator (one growth loop for the whole mix).
    let params = ModelParams::from_platform(&platform);
    let planned = MixPlanner::default()
        .plan_mix_unbounded(&platform, &mix)
        .expect("36 nodes suffice");
    let (plan, assignment) = (planned.plan, planned.assignment);
    println!("\nshared hierarchy: {}", HierarchyStats::of(&plan));
    println!(
        "partition: {} servers for {}, {} for {}",
        assignment.count_for(0),
        mix.service(0).name,
        assignment.count_for(1),
        mix.service(1).name,
    );

    // Predict and simulate.
    let report = evaluate_mix(&params, &platform, &plan, &mix, &assignment)
        .expect("the planner assigns every server");
    println!(
        "\npredicted mix throughput: {:.1} req/s (sched {:.1}; per-service {:?}; binding: {:?})",
        report.rho,
        report.rho_sched,
        report
            .rho_service
            .iter()
            .map(|r| (r * 10.0).round() / 10.0)
            .collect::<Vec<_>>(),
        report.binding_service,
    );

    let pairs: Vec<(NodeId, usize)> = assignment
        .service_of
        .iter()
        .map(|(&n, &s)| (n, s))
        .collect();
    let cfg = SimConfig::paper().with_windows(Seconds(5.0), Seconds(20.0));
    let mut sim = Simulation::new_mix(&platform, &plan, &mix, &pairs, cfg);
    let out = sim.run_ramp(&ClientRamp::paper(96, Seconds(25.0)), &cfg);
    println!(
        "measured at 96 clients: {:.1} req/s, per-service completions {:?}",
        out.throughput, out.completed_per_service
    );
}
