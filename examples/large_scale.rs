//! Large-scale planning end-to-end: a 4-site n=100 000 platform planned
//! by every scalable stage of the stack, with per-phase wall-clock
//! timings.
//!
//! Run with `--release` (debug builds are ~30× slower at this size):
//!
//! ```sh
//! cargo run --release --example large_scale
//! ```
//!
//! Pass a node count to override the default (the CI smoke step runs
//! `large_scale 20000` to keep the example under a second):
//!
//! ```sh
//! cargo run --release --example large_scale -- 1000000
//! ```

use adept::prelude::*;
use std::time::Instant;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(100_000);

    let t0 = Instant::now();
    let platform = generator::multi_site_grid(
        4,
        n / 4,
        MflopRate(400.0),
        MbitRate(100.0),
        MbitRate(10.0),
        7,
    );
    let t_platform = t0.elapsed();
    println!(
        "platform   4 sites x {} nodes        {:>9.1?}",
        n / 4,
        t_platform
    );

    let service = Dgemm::new(310).service();

    // Phase 1: the paper's Algorithm 1 on the incremental engine.
    let t = Instant::now();
    let plan = HeuristicPlanner::paper()
        .plan(&platform, &service, ClientDemand::Unbounded)
        .expect("platform is large enough");
    let t_plan = t.elapsed();
    println!(
        "heuristic  {} agents / {} servers   {:>9.1?}",
        plan.agent_count(),
        plan.server_count(),
        t_plan
    );

    // Phase 2: model evaluation of the result (Eq. 13–16).
    let t = Instant::now();
    let report = ModelParams::from_platform(&platform).evaluate(&platform, &plan, &service);
    let t_eval = t.elapsed();
    println!(
        "evaluate   rho = {:.3} req/s          {:>9.1?}",
        report.rho, t_eval
    );

    // Phase 3: engine build — the incremental evaluator over the full
    // plan (what every online replan starts from).
    let t = Instant::now();
    let params = ModelParams::from_platform(&platform);
    let eval = IncrementalEval::from_plan(&params, &platform, &plan, &service);
    let t_engine = t.elapsed();
    println!(
        "engine     rho = {:.3} req/s          {:>9.1?}",
        eval.rho(),
        t_engine
    );

    // Phase 4: coarsen-then-refine multi-site sweep (site-granular
    // coarse plan, per-site refinement on the thread pool).
    let t = Instant::now();
    let sweep = SweepPlanner::default()
        .plan(&platform, &service, ClientDemand::Unbounded)
        .expect("platform is large enough");
    let t_sweep = t.elapsed();
    let sweep_report = params.evaluate(&platform, &sweep, &service);
    println!(
        "sweep      rho = {:.3} req/s          {:>9.1?}",
        sweep_report.rho, t_sweep
    );

    println!(
        "total      n = {n}                     {:>9.1?}",
        t0.elapsed()
    );
}
