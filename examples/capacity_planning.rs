//! Capacity planning with a demand target: the heuristic stops growing
//! once the client demand is met, preferring the deployment "using the
//! least resources" (paper, Section 4).
//!
//! ```text
//! cargo run --example capacity_planning
//! ```

use adept::prelude::*;

fn main() {
    let platform = generator::lyon_cluster(64);
    let service = Dgemm::new(1000).service();
    let params = ModelParams::from_platform(&platform);

    println!("Planning dgemm-1000 deployments on a 64-node cluster for rising demand:\n");
    println!(
        "{:>12} {:>8} {:>8} {:>12} {:>10}",
        "demand(r/s)", "agents", "servers", "rho(req/s)", "met?"
    );

    for target in [0.5, 1.0, 2.0, 4.0, 8.0, 12.0] {
        let demand = ClientDemand::target(target);
        let plan = HeuristicPlanner::paper()
            .plan(&platform, &service, demand)
            .expect("64 nodes suffice");
        let report = params.evaluate(&platform, &plan, &service);
        println!(
            "{:>12.1} {:>8} {:>8} {:>12.2} {:>10}",
            target,
            plan.agent_count(),
            plan.server_count(),
            report.rho,
            if demand.satisfied_by(report.rho) {
                "yes"
            } else {
                "NO"
            },
        );
    }

    let unbounded = HeuristicPlanner::paper()
        .plan(&platform, &service, ClientDemand::Unbounded)
        .expect("64 nodes suffice");
    let max = params.evaluate(&platform, &unbounded, &service);
    println!(
        "\nUnbounded demand uses {} nodes for {:.2} req/s ({}).",
        unbounded.len(),
        max.rho,
        max.bottleneck
    );
    println!("Targets beyond the platform's capacity simply get the best achievable plan.");
}
