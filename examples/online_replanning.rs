//! Online re-planning of a *running* deployment under a disruption
//! budget: demand rises, then falls, and the planner adjusts the running
//! hierarchy a few nodes at a time instead of redeploying from scratch.
//!
//! ```text
//! cargo run --release --example online_replanning
//! ```

use adept::prelude::*;

fn rho(platform: &Platform, plan: &DeploymentPlan, svc: &ServiceSpec) -> f64 {
    ModelParams::from_platform(platform)
        .evaluate(platform, plan, svc)
        .rho
}

fn main() {
    let platform = generator::lyon_cluster(48);
    let service = Dgemm::new(1000).service();

    // Day 1: deploy for a modest 2 req/s.
    let mut running = HeuristicPlanner::paper()
        .plan(&platform, &service, ClientDemand::target(2.0))
        .expect("48 nodes suffice");
    println!(
        "running: {} -> {:.2} req/s",
        HierarchyStats::of(&running),
        rho(&platform, &running, &service)
    );

    // Day 2: demand doubles. Re-plan with at most 4 node changes.
    let replanner = OnlinePlanner {
        max_changes: 4,
        ..Default::default()
    };
    let up = replanner.replan(&platform, &running, &service, ClientDemand::target(4.0));
    println!("\ndemand 2.0 -> 4.0 req/s, budget 4 changes:");
    print!("{}", up.diff);
    println!(
        "revised: {} -> {:.2} req/s",
        HierarchyStats::of(&up.plan),
        up.rho
    );
    running = up.plan;

    // Day 3: demand collapses to 1 req/s; retire machines.
    let down = replanner.replan(&platform, &running, &service, ClientDemand::target(1.0));
    println!("\ndemand 4.0 -> 1.0 req/s:");
    print!("{}", down.diff);
    println!(
        "revised: {} -> {:.2} req/s (freed {} nodes)",
        HierarchyStats::of(&down.plan),
        down.rho,
        running.len() - down.plan.len()
    );

    // Sanity: the revised plan still simulates.
    let cfg = SimConfig::paper().with_windows(Seconds(2.0), Seconds(10.0));
    let out = measure_throughput(&platform, &down.plan, &service, 8, &cfg);
    println!(
        "\nsimulated check at 8 clients: {:.2} req/s",
        out.throughput
    );
}
