//! Multi-site evaluation with the heterogeneous-communication extension:
//! the same nodes, priced with the homogeneous-B scalarization versus the
//! per-link model (which [`ModelParams::evaluate`] dispatches to
//! automatically on a multi-site network). See
//! `examples/multi_site_deployment.rs` for the full planner-vs-planner
//! walk-through.
//!
//! ```text
//! cargo run --release --example multisite_planning
//! ```

use adept::prelude::*;

fn main() {
    // Two 10-node sites with fast internal links and a slow WAN between.
    let mut b = Platform::builder(Network::PerSitePair {
        intra: vec![MbitRate(100.0), MbitRate(100.0)],
        inter: MbitRate(5.0),
        latency: Seconds(5e-4),
    });
    let site_a = b.add_site("lyon");
    let site_b = b.add_site("orsay");
    for i in 0..10 {
        b.add_node(format!("lyon-{i}"), MflopRate(400.0), site_a)
            .expect("unique");
    }
    for i in 0..10 {
        b.add_node(format!("orsay-{i}"), MflopRate(300.0), site_b)
            .expect("unique");
    }
    let platform = b.build().expect("non-empty");
    let service = Dgemm::new(310).service();
    let params = ModelParams::from_platform(&platform);

    // The planner now prices links while it plans (site-aware default).
    let plan = HeuristicPlanner::paper()
        .plan(&platform, &service, ClientDemand::Unbounded)
        .expect("20 nodes suffice");
    println!("site-aware heuristic plan: {}", HierarchyStats::of(&plan));

    let scalar = params.scalarized().evaluate(&platform, &plan, &service);
    println!("homogeneous-B model (B = min link): {scalar}");
    let het = params.evaluate(&platform, &plan, &service);
    println!("per-link model (extension):         {het}");

    // A deliberately bad idea: put the servers on the far site.
    let ids_b: Vec<NodeId> = platform.nodes_on_site(site_b);
    let mut cross = DeploymentPlan::with_root(platform.nodes_on_site(site_a)[0]);
    for &s in ids_b.iter().take(8) {
        cross.add_server(cross.root(), s).expect("distinct nodes");
    }
    let cross_het = params.evaluate(&platform, &cross, &service);
    println!("\ncross-site star (servers behind the WAN): {cross_het}");
    println!("the per-link model exposes the WAN penalty that the paper's");
    println!("homogeneous-B model spreads uniformly over all deployments.");
}
