//! The mix-aware sweep reference at production scale: the accelerated
//! composition walk (coarsened composition grid, `MixPlanner` warm
//! incumbents, dominance pruning) planning a 4-service mix on a large
//! heterogeneous cluster, with its `SweepStats` search telemetry and
//! the anytime `time_budget` knob.
//!
//! Run with `--release` (debug builds are much slower at this size):
//!
//! ```sh
//! cargo run --release --example mix_sweep_scale
//! ```
//!
//! Pass a node count to override the default:
//!
//! ```sh
//! cargo run --release --example mix_sweep_scale -- 10000
//! ```

use adept::prelude::*;
use std::time::{Duration, Instant};

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(2_000);

    let platform = generator::uniform_random_cluster("p", n, MflopRate(100.0), MflopRate(400.0), 7);
    let mix = ServiceMix::new(vec![
        (Dgemm::new(100).service(), 4.0),
        (Dgemm::new(220).service(), 2.0),
        (Dgemm::new(310).service(), 1.0),
        (Dgemm::new(450).service(), 1.0),
    ]);

    // The accelerated walk, with search telemetry: every visited grid
    // point is either expanded or pruned by exactly one of the three
    // pruning layers, so the counters explain where the speedup comes
    // from.
    let t = Instant::now();
    let (plan, stats) = SweepPlanner::default()
        .best_mix_plan_stats(&platform, &mix, MixObjective::WeightedMin)
        .expect("platform is large enough");
    let elapsed = t.elapsed();
    println!(
        "sweep      n = {n}: objective {:.3} req/s, {} agents / {} servers   {:>9.1?}",
        plan.objective_value,
        plan.plan.agent_count(),
        plan.plan.server_count(),
        elapsed
    );
    println!(
        "telemetry  visited {} = expanded {} + pruned {} \
         (bound {} / cap {} / dominance {}), {} refine steps",
        stats.visited,
        stats.expanded,
        stats.pruned(),
        stats.pruned_by_bound,
        stats.pruned_by_cap,
        stats.pruned_by_dominance,
        stats.refine_steps
    );

    // The heuristic the sweep is the quality bar for: the warm
    // incumbent seeding guarantees the sweep never returns less.
    let t = Instant::now();
    let heur = MixPlanner::default()
        .plan_mix_unbounded(&platform, &mix)
        .expect("platform is large enough");
    println!(
        "heuristic  objective {:.3} req/s ({:.1}% of the reference)   {:>9.1?}",
        heur.objective_value,
        100.0 * heur.objective_value / plan.objective_value,
        t.elapsed()
    );

    // The anytime knob: an already-expired budget skips the walk
    // entirely and returns the best-so-far answer — here the warm
    // incumbent — flagged `truncated` so callers know no optimality
    // claim is being made.
    let budgeted = SweepPlanner {
        time_budget: Some(Duration::ZERO),
        ..SweepPlanner::default()
    };
    let t = Instant::now();
    let (anytime, astats) = budgeted
        .best_mix_plan_stats(&platform, &mix, MixObjective::WeightedMin)
        .expect("platform is large enough");
    println!(
        "anytime    objective {:.3} req/s, truncated = {}   {:>9.1?}",
        anytime.objective_value,
        astats.truncated,
        t.elapsed()
    );
    assert!(astats.truncated, "a zero budget always truncates");
    assert!(
        anytime.objective_value <= plan.objective_value + 1e-9,
        "the truncated answer never beats the full walk"
    );
}
