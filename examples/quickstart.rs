//! Quickstart: plan a deployment, predict its throughput, print the tree.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use adept::prelude::*;

fn main() {
    // A 21-node homogeneous cluster like the paper's Lyon site, and the
    // DGEMM 310×310 workload of Table 4 / Figure 6.
    let platform = generator::lyon_cluster(21);
    let service = Dgemm::new(310).service();

    // Plan with the paper's heuristic (Algorithm 1).
    let planner = HeuristicPlanner::paper();
    let plan = planner
        .plan(&platform, &service, ClientDemand::Unbounded)
        .expect("21 nodes are plenty for a hierarchy");

    println!("Planned deployment for {service}:");
    print!("{}", plan.render());
    println!("{}", HierarchyStats::of(&plan));

    // Predict the steady-state throughput (paper Eq. 16) and identify the
    // bottleneck.
    let report = ModelParams::from_platform(&platform).evaluate(&platform, &plan, &service);
    println!("\nModel prediction: {report}");

    // Compare against the naive star on the same nodes.
    let star = StarPlanner
        .plan(&platform, &service, ClientDemand::Unbounded)
        .expect("same platform");
    let star_report = ModelParams::from_platform(&platform).evaluate(&platform, &star, &service);
    println!("Star would give:  {star_report}");

    // Emit the GoDIET-style XML descriptor the deployment tool consumes.
    println!(
        "\nGoDIET descriptor:\n{}",
        xml::write_xml(&plan, Some(&platform))
    );
}
