//! The autonomic replanning control loop, end to end: a two-site
//! platform serves a three-service mix through a scripted day — ramp,
//! plateau, spike, night-time decay — and every capacity change is
//! decided, planned, and migrated by [`Controller::tick`]. No replan is
//! ever invoked by hand.
//!
//! ```text
//! cargo run --release --example autonomic_loop
//! ```

use adept::prelude::*;

fn main() {
    // Two 30-node sites joined by a 10 Mb/s WAN.
    let platform = std::sync::Arc::new(generator::multi_site_grid(
        2,
        30,
        MflopRate(400.0),
        MbitRate(100.0),
        MbitRate(10.0),
        7,
    ));
    let mix = ServiceMix::new(vec![
        (Dgemm::new(310).service(), 2.0),  // light: ~6.7 req/s per server
        (Dgemm::new(700).service(), 1.0),  // mid:  ~0.58 req/s per server
        (Dgemm::new(1000).service(), 1.0), // heavy: ~0.2 req/s per server
    ]);

    // Deploy once for the morning's demand...
    let planned = MixDemand::targets(vec![1.0, 0.5, 0.4]);
    let initial = MixPlanner::default()
        .plan_mix(&platform, &mix, &planned)
        .expect("60 nodes cover the morning");
    println!(
        "initial deployment: {} ({} servers) for demand {:?}",
        HierarchyStats::of(&initial.plan),
        initial.plan.server_count(),
        [1.0, 0.5, 0.4],
    );

    // ...then hand it to the controller: drift-triggered, hysteresis-
    // damped, online-revised under a disruption budget, migrated by a
    // launcher that injects failures (and heals them with spares).
    let mut controller = Controller::new(
        platform.clone(),
        mix,
        initial.plan,
        initial.assignment,
        &planned,
        Box::new(OnlinePlanner {
            max_changes: 20,
            ..Default::default()
        }),
        GoDiet::with_failures(0.4, 17),
        ControllerConfig {
            triggers: vec![TriggerPolicy::ForecastDrift { threshold: 0.2 }],
            demand_alpha: 0.7,
            ..Default::default()
        },
    );

    let day: &[(&str, usize, [f64; 3])] = &[
        ("morning steady", 6, [1.0, 0.5, 0.4]),
        ("ramp step 1", 6, [1.0, 0.5, 0.8]),
        ("ramp step 2", 6, [1.0, 0.5, 1.2]),
        ("plateau", 8, [1.0, 0.5, 1.2]),
        ("spike", 8, [1.0, 2.5, 1.2]),
        ("night decay", 10, [0.4, 0.3, 0.2]),
    ];

    for &(phase, ticks, rates) in day {
        println!("\n== {phase}: observed demand {rates:?} ==");
        for t in 0..ticks {
            let migration = controller
                .tick(&Observations::rates(rates.to_vec()))
                .expect("the loop heals its own failures");
            if let Some(m) = migration {
                println!("tick {t}: REPLAN — {}", m.reason);
                println!(
                    "  planned for {:?} req/s",
                    (0..3).map(|j| m.planned_demand.rate(j)).collect::<Vec<_>>()
                );
                println!(
                    "  diff: {} node change(s), {} reinstall(s); script: {} stage(s), \
                     {} action(s)",
                    m.replan.diff.len(),
                    m.replan.reassigned.len(),
                    m.script.stages.len(),
                    m.script.len(),
                );
                print!("{}", m.script);
                if m.report.failures > 0 {
                    println!(
                        "  launcher: {} failed attempt(s), {} spare substitution(s), \
                         makespan {:.1}s",
                        m.report.failures,
                        m.report.substitutions.len(),
                        m.report.makespan.value()
                    );
                    for &(failed, spare) in &m.report.substitutions {
                        println!("    {failed} kept failing -> spare {spare} took its place");
                    }
                }
                let report = controller.predicted();
                println!(
                    "  now running: {} servers, predicted per-service {:?} req/s",
                    controller.running().server_count(),
                    report
                        .rho_service
                        .iter()
                        .map(|r| (r * 100.0).round() / 100.0)
                        .collect::<Vec<_>>()
                );
            }
        }
    }

    println!(
        "\nday done: {} replan round(s), {} migration(s), final deployment {}",
        controller.replans(),
        controller.migrations(),
        HierarchyStats::of(controller.running()),
    );

    // Closing sanity: the simulator confirms the final deployment
    // sustains the night-time demand.
    let pairs: Vec<(NodeId, usize)> = controller
        .assignment()
        .service_of
        .iter()
        .map(|(&n, &s)| (n, s))
        .collect();
    let cfg = SimConfig::ideal().with_windows(Seconds(5.0), Seconds(1.0));
    let offered = 0.4 + 0.3 + 0.2;
    let arrivals = ArrivalProcess::Uniform { rate: offered }.arrivals(Seconds(60.0));
    let night_mix = ServiceMix::new(
        controller
            .mix()
            .services()
            .iter()
            .cloned()
            .zip([0.4, 0.3, 0.2])
            .collect(),
    );
    let mut sim = Simulation::new_mix(&platform, controller.running(), &night_mix, &pairs, cfg);
    let measured = sim.run_open_loop(&arrivals, &cfg).throughput;
    println!("simulated night-time check: {measured:.2} req/s sustained of {offered:.2} offered");
}
