//! The mix planner against its **quality bar** — the mix-aware sweep
//! reference ([`SweepPlanner::best_mix_plan`]):
//!
//! 1. on a heterogeneous single-site cluster, sweep agent count ×
//!    per-service server-count compositions (the Table-4 "optimal"
//!    extended to service mixes) and compare [`MixPlanner`]'s one-loop
//!    heuristic against it under both objectives;
//! 2. repeat on a 2-site grid, where the reference adds per-site
//!    sub-sweeps with (multiple) mid-agents per site;
//! 3. print the ratio CI gates at ≥ 90% (`mix_vs_sweep` in
//!    `bench_gate`).
//!
//! ```text
//! cargo run --release --example mix_quality_bar
//! ```

use adept::prelude::*;

fn bar(name: &str, platform: &Platform, mix: &ServiceMix) {
    println!(
        "\n== {name}: {} nodes, {} services ==",
        platform.node_count(),
        mix.len()
    );
    for objective in [MixObjective::WeightedMin, MixObjective::WeightedSum] {
        let sweep = SweepPlanner::default()
            .best_mix_plan(platform, mix, objective)
            .expect("platform fits the mix");
        let heur = MixPlanner::with_objective(objective)
            .plan_mix_unbounded(platform, mix)
            .expect("platform fits the mix");
        let ratio = heur.objective_value / sweep.objective_value;
        println!(
            "{:>13}: heuristic {:8.2} req/s on {:3} nodes | sweep reference {:8.2} req/s on {:3} \
             nodes | heuristic at {:5.1}% of the bar",
            objective.label(),
            heur.objective_value,
            heur.plan.len(),
            sweep.objective_value,
            sweep.plan.len(),
            ratio * 100.0,
        );
        for j in 0..mix.len() {
            println!(
                "               {:>10}  heuristic {:>3} servers / sweep {:>3}",
                mix.service(j).name,
                heur.assignment.count_for(j),
                sweep.assignment.count_for(j),
            );
        }
    }
}

fn main() {
    // Scenario 1: 4-service mix, one heterogeneous site (the gated
    // `mix_vs_sweep/4svc-1site` shape).
    let cluster = generator::heterogenized_cluster(
        "orsay",
        48,
        MflopRate(400.0),
        BackgroundLoad::default(),
        CapacityProbe::exact(),
        7,
    );
    let mix4 = ServiceMix::new(vec![
        (Dgemm::new(100).service(), 4.0),
        (Dgemm::new(220).service(), 2.0),
        (Dgemm::new(310).service(), 1.0),
        (Dgemm::new(450).service(), 1.0),
    ]);
    bar("heterogeneous cluster, 4-service mix", &cluster, &mix4);

    // Scenario 2: 2-service mix across a 2-site grid (the gated
    // `mix_vs_sweep/2svc-2site` shape): the reference's cross-site
    // phase opens steal-rebalanced mid-agents per site.
    let grid =
        generator::multi_site_grid(2, 18, MflopRate(400.0), MbitRate(100.0), MbitRate(10.0), 7);
    let mix2 = ServiceMix::new(vec![
        (Dgemm::new(310).service(), 2.0),
        (Dgemm::new(450).service(), 1.0),
    ]);
    bar("2-site grid, 2-service mix", &grid, &mix2);

    println!(
        "\nCI holds the weighted-min ratio >= 90% on both scenarios \
         (bench_gate's mix_vs_sweep quality floor)."
    );
}
