//! Site-aware deployment planning on a 2-site Grid'5000-style platform —
//! the heterogeneous-communication extension end to end.
//!
//! Two heterogenized 20-node clusters with fast internal links and a slow
//! WAN between them. The same heuristic runs twice: once with the
//! historical **min-bandwidth scalarization** (the paper's homogeneous-B
//! model fed the conservative minimum link, here the 5 Mb/s WAN), and
//! once **site-aware** (the incremental engine prices every link, attach
//! targets are ranked by power *and* link jointly, conversions steal
//! concrete children). Both plans are then judged under the per-link
//! model — the throughput gap is what link-blindness costs.
//!
//! ```text
//! cargo run --release --example multi_site_deployment
//! ```

use adept::platform::generator::multi_site_grid;
use adept::platform::SiteId;
use adept::prelude::*;

fn site_profile(platform: &Platform, plan: &DeploymentPlan) -> String {
    let mut cross_links = 0usize;
    let mut per_site = vec![0usize; platform.site_count()];
    for slot in plan.slots() {
        per_site[platform.site_of(plan.node(slot)).index()] += 1;
        if let Some(parent) = plan.parent(slot) {
            if platform.site_of(plan.node(slot)) != platform.site_of(plan.node(parent)) {
                cross_links += 1;
            }
        }
    }
    format!("{per_site:?} nodes per site, {cross_links} cross-site tree links")
}

fn main() {
    // Two 20-node sites: 100 Mb/s inside each, a 5 Mb/s WAN between.
    let platform = multi_site_grid(2, 20, MflopRate(400.0), MbitRate(100.0), MbitRate(5.0), 11);
    let service = Dgemm::new(310).service();
    let params = ModelParams::from_platform(&platform);
    println!(
        "platform: {} nodes on {} sites, scalarized B = {} (the WAN)\n",
        platform.node_count(),
        platform.site_count(),
        platform.bandwidth()
    );

    // The historical pipeline: every link priced at the minimum bandwidth.
    let scalarized = HeuristicPlanner {
        params: Some(params.scalarized()),
        ..HeuristicPlanner::paper()
    }
    .plan(&platform, &service, ClientDemand::Unbounded)
    .expect("40 nodes suffice");

    // The site-aware planner (default on a multi-site platform).
    let aware = HeuristicPlanner::paper()
        .plan(&platform, &service, ClientDemand::Unbounded)
        .expect("40 nodes suffice");

    // Both judged under the per-link model (`ModelParams::evaluate`
    // dispatches to the hetero generalization on this network).
    let rho_scalar = params.evaluate(&platform, &scalarized, &service);
    let rho_aware = params.evaluate(&platform, &aware, &service);

    println!("min-B scalarized plan: {}", HierarchyStats::of(&scalarized));
    println!("  {}", site_profile(&platform, &scalarized));
    println!("  per-link model: {rho_scalar}");
    println!();
    println!("site-aware plan:       {}", HierarchyStats::of(&aware));
    println!("  {}", site_profile(&platform, &aware));
    println!("  per-link model: {rho_aware}");
    println!();
    println!(
        "site-aware gain: {:+.1}% throughput",
        (rho_aware.rho / rho_scalar.rho - 1.0) * 100.0
    );

    // The multi-site sweep reference (per-site sweeps + cross-site
    // server-count sweep) bounds how much a better plan could still buy.
    let (sweep_plan, sweep_rho) = SweepPlanner::default()
        .best_plan(&platform, &service)
        .expect("40 nodes suffice");
    println!(
        "\nmulti-site sweep reference: {:.1} req/s on {} nodes \
         (heuristic reaches {:.0}% of it)",
        sweep_rho,
        sweep_plan.len(),
        rho_aware.rho / sweep_rho * 100.0
    );

    // Clients are a site too: declaring them on site 1 re-prices the
    // root's parent link and every Eq. 15 client transfer.
    let wan_clients = params.with_client_site(SiteId(1));
    let report = wan_clients.evaluate(&platform, &aware, &service);
    println!("\nwith clients declared on site 1 (behind the WAN): {report}");
}
