//! Closing the paper's future-work loop: **forecast the execution time,
//! then plan.**
//!
//! "In this model we consider that we have a function to know the
//! execution time but we should study another approach with statistical
//! mathematical function to forecast the execution time." (Section 6)
//!
//! We observe a handful of *small* DGEMM runs in the simulator, fit the
//! scaling law, forecast `Wapp` for a size nobody has run, and hand the
//! forecast service to the planner.
//!
//! ```text
//! cargo run --release --example forecast_planning
//! ```

use adept::prelude::*;

fn main() {
    let platform = generator::lyon_cluster(45);

    // 1. Observe small problem sizes (the kind of pilot runs a user can
    //    afford): measure mean service-phase latency in the simulator on
    //    a known node, convert to MFlop samples.
    let mut forecaster = ScalingForecaster::new();
    let cfg = SimConfig::ideal().with_windows(Seconds(1.0), Seconds(8.0));
    let probe_ids: Vec<NodeId> = platform.ids_by_power_desc();
    for &n in &[40u32, 80, 120, 160] {
        let svc = Dgemm::new(n).service();
        let plan = builder::star(&probe_ids[0..2]);
        let out = measure_throughput(&platform, &plan, &svc, 1, &cfg);
        let power = platform.power(probe_ids[1]);
        forecaster.observe(ScalingSample {
            size: n as f64,
            duration: Seconds(out.mean_service_time),
            power,
        });
        println!(
            "observed dgemm-{n}: service phase {:.6}s on a {power} node",
            out.mean_service_time
        );
    }

    // 2. Fit and forecast the big size.
    let fit = forecaster.fit().expect("four sizes observed");
    println!(
        "\nfitted Wapp(n) = {:.3e} · n^{:.3}  (log-log r = {:.4})",
        fit.coefficient, fit.exponent, fit.r
    );
    let target = 310.0;
    let forecast = fit.service("dgemm-310-forecast", target);
    let truth = Dgemm::new(310).wapp();
    println!(
        "forecast Wapp(310) = {:.2} MFlop (ground truth {:.2}, {:+.2}% off)",
        forecast.wapp.value(),
        truth.value(),
        100.0 * (forecast.wapp.value() - truth.value()) / truth.value()
    );

    // 3. Plan with the forecast service and compare against planning with
    //    the true Wapp.
    let planned = HeuristicPlanner::paper()
        .plan(&platform, &forecast, ClientDemand::Unbounded)
        .expect("45 nodes suffice");
    let oracle = HeuristicPlanner::paper()
        .plan(
            &platform,
            &Dgemm::new(310).service(),
            ClientDemand::Unbounded,
        )
        .expect("45 nodes suffice");
    let params = ModelParams::from_platform(&platform);
    let truth_svc = Dgemm::new(310).service();
    println!(
        "\nplan from forecast: {} -> {:.1} req/s under the true workload",
        HierarchyStats::of(&planned),
        params.evaluate(&platform, &planned, &truth_svc).rho
    );
    println!(
        "plan from oracle:   {} -> {:.1} req/s",
        HierarchyStats::of(&oracle),
        params.evaluate(&platform, &oracle, &truth_svc).rho
    );
}
