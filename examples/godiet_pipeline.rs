//! The full deployment pipeline: plan → XML descriptor → GoDIET-style
//! staged launch (with injected failures and spare substitution) →
//! simulate the *actually running* deployment.
//!
//! ```text
//! cargo run --release --example godiet_pipeline
//! ```

use adept::prelude::*;

fn main() {
    // A 40-node heterogeneous cluster; the planner leaves some nodes
    // unused, which become spares for the launcher.
    let platform = generator::heterogenized_cluster(
        "orsay",
        40,
        MflopRate(400.0),
        BackgroundLoad::default(),
        CapacityProbe::exact(),
        11,
    );
    let service = Dgemm::new(310).service();
    let params = ModelParams::from_platform(&platform);

    let plan = HeuristicPlanner::paper()
        .plan(&platform, &service, ClientDemand::Unbounded)
        .expect("40 nodes suffice");
    println!("planned: {}", HierarchyStats::of(&plan));

    // 1. The planner writes the descriptor (paper Table 1, `write_xml`).
    let descriptor = xml::write_xml(&plan, Some(&platform));
    println!("descriptor: {} bytes of XML", descriptor.len());

    // 2. GoDIET launches it, stage by stage. 15% of launch attempts fail;
    //    failing nodes are retried and eventually replaced by spares.
    let tool = GoDiet::with_failures(0.15, 2024);
    let report: DeploymentReport = tool
        .deploy_xml(&platform, &descriptor)
        .expect("enough spare nodes to absorb failures");
    println!(
        "launched: {} stages, {} attempts ({} failures), {} substitutions, makespan {:.1}",
        report.stages,
        report.launches,
        report.failures,
        report.substitutions.len(),
        report.makespan,
    );
    for (failed, spare) in &report.substitutions {
        println!("  substituted {failed} -> {spare}");
    }

    // 3. What actually runs may differ from what was planned; predict and
    //    simulate the *running* plan.
    let predicted = params.evaluate(&platform, &report.plan, &service);
    println!("running plan prediction: {predicted}");

    let config = SimConfig::paper().with_windows(Seconds(5.0), Seconds(20.0));
    let outcome = measure_throughput(&platform, &report.plan, &service, 64, &config);
    println!(
        "simulated at 64 clients: {:.2} req/s (completed {} requests)",
        outcome.throughput, outcome.completed
    );
}
