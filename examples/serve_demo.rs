//! Planner-as-a-service, end to end: boot the `adept-serve` daemon
//! in-process, register two tenants on a shared platform catalog, drive
//! their control loops through a demand shift **over the wire**, kill
//! the daemon, restart it on the same journals, and show every tenant
//! resuming exactly where it stopped.
//!
//! ```text
//! cargo run --release --example serve_demo
//! ```
//!
//! The wire protocol is documented frame by frame in
//! `docs/WIRE_API.md`; the operator's guide (journals, recovery,
//! capacity) is `docs/OPERATIONS.md`.

use adept::prelude::*;

fn services() -> Vec<ServiceDef> {
    vec![
        ServiceDef {
            name: "dgemm-310".into(),
            wapp_mflop: Dgemm::new(310).wapp().value(),
            weight: 2.0,
        },
        ServiceDef {
            name: "dgemm-1000".into(),
            wapp_mflop: Dgemm::new(1000).wapp().value(),
            weight: 1.0,
        },
    ]
}

fn main() {
    let journal_dir = std::env::temp_dir().join(format!("adept-serve-demo-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&journal_dir);
    let config = || {
        ServeConfig::new(
            "127.0.0.1:0",
            journal_dir.clone(),
            vec![("lyon40".into(), generator::lyon_cluster(40))],
        )
    };

    // ---- Boot, and size a deployment statelessly first.
    let daemon = Daemon::start(config()).expect("daemon boots");
    println!("daemon listening on {}", daemon.addr());
    let mut client = ServeClient::connect(daemon.addr()).expect("connect");
    let (plan, objective) = client
        .plan("lyon40", &services(), Some(&[2.0, 0.3]))
        .expect("the catalog fits the mix");
    println!(
        "stateless plan: {} servers / {} agents, rho {:.2} req/s (objective {:.3})",
        plan.servers, plan.agents, plan.rho, objective
    );
    // The same question again hits the shared plan cache exactly; a
    // nearby demand is answered by revising the cached neighbor.
    client
        .plan("lyon40", &services(), Some(&[2.0, 0.3]))
        .expect("cached");
    client
        .plan("lyon40", &services(), Some(&[2.1, 0.32]))
        .expect("revised from the cached neighbor");
    let cache = client.status().expect("status").cache;
    println!(
        "plan cache: {} exact hit(s), {} near hit(s), {} miss(es), {} entries",
        cache.exact_hits, cache.near_hits, cache.misses, cache.entries
    );

    // ---- Two tenants share the catalog, each with its own loop.
    let tenant_config = SessionConfig {
        demand_alpha: 1.0,
        failure_probability: 0.3,
        failure_seed: 11,
        ..SessionConfig::default()
    };
    for (tenant, demand) in [("acme", [2.0, 0.3]), ("globex", [1.0, 0.6])] {
        let status = client
            .register(tenant, "lyon40", &services(), &demand, &tenant_config)
            .expect("registration plans and claims cleanly");
        println!(
            "registered {tenant:>6}: {} servers for demand {demand:?}",
            status.plan.servers
        );
    }

    // ---- A scripted demand shift, driven over the wire: the heavy
    // service's demand quadruples and sustains for each tenant.
    for (tenant, rates) in [("acme", [2.0, 1.2]), ("globex", [1.0, 2.4])] {
        for tick in 1..=8 {
            let outcome = client.observe(tenant, &rates, &[]).expect("observe");
            if let Some(m) = outcome.migration {
                println!(
                    "{tenant:>6} tick {tick}: migrated ({}; {} changes, {} stages, \
                     {} spare substitutions) -> {} servers",
                    m.reason, m.changes, m.stages, m.substitutions, m.servers_after
                );
            }
        }
    }

    // ---- Preview vs apply: what would a further doubling cost?
    let preview = client.replan("acme", &[2.0, 2.4]).expect("dry run");
    println!(
        "acme replan preview for [2.0, 2.4]: {} changes (+{} nodes, {} reassigned), rho {:.2}",
        preview.changes, preview.added, preview.reassigned, preview.rho
    );

    // ---- Kill the daemon and restart it on the same journal dir.
    let ticks_before = status_of(&mut client, "acme").ticks;
    drop(client);
    daemon.stop();
    println!("daemon killed; restarting on the same journals...");
    let daemon = Daemon::start(config()).expect("daemon reboots");
    assert!(daemon.resume_errors().is_empty(), "all journals resume");
    let mut client = ServeClient::connect(daemon.addr()).expect("reconnect");
    let status = client.status().expect("status");
    for t in &status.tenants {
        println!(
            "resumed {:>6}: tick {}, {} migrations ({}/{} replans warm), {} servers, rho {:.2}",
            t.tenant, t.ticks, t.migrations, t.warm_replans, t.replans, t.plan.servers, t.plan.rho
        );
    }
    assert_eq!(status.tenants.len(), 2, "both tenants resumed");
    assert_eq!(
        status_of(&mut client, "acme").ticks,
        ticks_before,
        "replay rebuilt the loop exactly where it stopped"
    );

    // ---- Drain both tenants and shut down.
    for tenant in ["acme", "globex"] {
        let archived = client.drain(tenant).expect("drain");
        println!("drained {tenant:>6}: journal archived at {archived}");
    }
    client.shutdown().expect("shutdown acknowledged");
    daemon.stop();
    let _ = std::fs::remove_dir_all(&journal_dir);
    println!("done.");
}

fn status_of(client: &mut ServeClient, tenant: &str) -> TenantStatus {
    client
        .status()
        .expect("status")
        .tenants
        .into_iter()
        .find(|t| t.tenant == tenant)
        .expect("tenant is live")
}
