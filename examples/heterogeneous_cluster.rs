//! Heterogeneity changes the right deployment: the same 45 nodes, planned
//! as a homogeneous cluster and as a background-loaded heterogeneous one
//! (the paper's Section 5.3 methodology).
//!
//! ```text
//! cargo run --example heterogeneous_cluster
//! ```

use adept::prelude::*;

fn describe(platform: &Platform, label: &str) {
    let powers: Vec<f64> = platform.nodes().iter().map(|n| n.power.value()).collect();
    let min = powers.iter().copied().fold(f64::INFINITY, f64::min);
    let max = powers.iter().copied().fold(0.0f64, f64::max);
    let mean = powers.iter().sum::<f64>() / powers.len() as f64;
    println!(
        "{label}: {} nodes, power min {min:.0} / mean {mean:.0} / max {max:.0} MFlop/s",
        powers.len()
    );
}

fn plan_and_report(platform: &Platform, service: &ServiceSpec) {
    let params = ModelParams::from_platform(platform);
    let plan = HeuristicPlanner::paper()
        .plan(platform, service, ClientDemand::Unbounded)
        .expect("45 nodes suffice");
    let report = params.evaluate(platform, &plan, service);
    let stats = HierarchyStats::of(&plan);
    println!("  heuristic plan: {stats}");
    println!("  prediction:     {report}");
    // Root node of the heterogeneous plan should be the strongest node.
    let root_power = platform.power(plan.node(plan.root()));
    println!("  root node power: {root_power}");
}

fn main() {
    let service = Dgemm::new(310).service();

    let homogeneous = generator::lyon_cluster(45);
    describe(&homogeneous, "homogeneous cluster");
    plan_and_report(&homogeneous, &service);

    println!();

    // Heterogenize exactly as the paper did: background matrix
    // multiplications on 3/4 of the nodes, then re-measure capacity with a
    // (noisy) Linpack-like probe.
    let heterogeneous = generator::heterogenized_cluster(
        "orsay",
        45,
        MflopRate(400.0),
        BackgroundLoad::default(),
        CapacityProbe::with_noise(0.02, 7),
        7,
    );
    describe(&heterogeneous, "heterogenized cluster");
    plan_and_report(&heterogeneous, &service);

    println!();
    println!("Note how the heterogeneous plan keeps the strongest nodes near the root");
    println!("(agents are scheduling-bound) and absorbs weak nodes as servers, where");
    println!("Eq. 10 lets them contribute proportionally to their power.");
}
