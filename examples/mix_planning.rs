//! Planning a **service mix** in one growth loop — the batched
//! multi-service evaluator end to end:
//!
//! 1. plan a 4-service mix (skewed 4:2:1:1 request shares) on a
//!    heterogeneous cluster with [`MixPlanner`], which chooses the
//!    shared hierarchy and the server→service partition jointly;
//! 2. compare against the pre-batched pipeline (Algorithm 1 on the
//!    demand-weighted mean service, then `partition_servers`);
//! 3. shift the per-service demand and revise the running deployment
//!    incrementally with [`OnlinePlanner::replan_mix`] under a
//!    disruption budget.
//!
//! ```text
//! cargo run --release --example mix_planning
//! ```

use adept::core::model::mix::{evaluate_mix, partition_servers};
use adept::prelude::*;

fn main() {
    let platform = generator::heterogenized_cluster(
        "orsay",
        100,
        MflopRate(400.0),
        BackgroundLoad::default(),
        CapacityProbe::exact(),
        29,
    );
    let mix = ServiceMix::new(vec![
        (Dgemm::new(100).service(), 4.0),
        (Dgemm::new(220).service(), 2.0),
        (Dgemm::new(310).service(), 1.0),
        (Dgemm::new(450).service(), 1.0),
    ]);
    println!(
        "platform: 100 heterogeneous nodes; mix of {} services",
        mix.len()
    );

    // 1. One growth loop for the whole mix.
    let planned = MixPlanner::default()
        .plan_mix_unbounded(&platform, &mix)
        .expect("100 nodes suffice");
    println!("\njoint plan: {}", HierarchyStats::of(&planned.plan));
    println!(
        "partition:  {}",
        PartitionStats::of(&planned.plan, &planned.assignment.service_of, mix.len())
    );
    println!(
        "mix rate:   {:.1} req/s (sched {:.1}; binding service {:?})",
        planned.report.rho, planned.report.rho_sched, planned.report.binding_service
    );
    for j in 0..mix.len() {
        println!(
            "  {}: share {:.0}%, {} servers, {:.1} req/s capacity",
            mix.service(j).name,
            mix.share(j) * 100.0,
            planned.assignment.count_for(j),
            planned.report.rho_service[j],
        );
    }

    // 2. The replaced pipeline: mean-service tree + hindsight partition.
    let params = ModelParams::from_platform(&platform);
    let mean = ServiceSpec::new("mix-mean", Mflop(mix.mean_wapp()));
    let tree = HeuristicPlanner::paper()
        .plan(&platform, &mean, ClientDemand::Unbounded)
        .expect("fits");
    let part = partition_servers(&params, &platform, &tree, &mix).expect("enough servers");
    let old = evaluate_mix(&params, &platform, &tree, &mix, &part).expect("complete assignment");
    println!(
        "\nmean-service + partition pipeline: {:.1} req/s — joint planning {}",
        old.rho,
        if planned.report.rho >= old.rho * (1.0 - 1e-9) {
            "matches or beats it"
        } else {
            "trails it (unexpected)"
        }
    );

    // 3. Demand shifts: service 3 (the heaviest) grows 40% while
    //    service 0 quiets down; revise within a 6-change budget. With
    //    the platform nearly saturated, reinstalls (slack service →
    //    starved service, no tree edit) do most of the work.
    let base = planned.report.rho;
    let demand = MixDemand::targets(vec![
        0.2 * base * mix.share(0),
        0.9 * base * mix.share(1),
        0.9 * base * mix.share(2),
        1.4 * base * mix.share(3),
    ]);
    let replanner = OnlinePlanner {
        max_changes: 6,
        ..Default::default()
    };
    let revised = replanner
        .replan_mix(&platform, &planned.plan, &mix, &planned.assignment, &demand)
        .expect("assignment covers the running plan");
    println!(
        "\nafter the demand shift ({} change(s) within budget 6: {} tree edit(s) + {} reinstall(s)):",
        revised.changes(),
        revised.diff.len(),
        revised.reassigned.len()
    );
    println!(
        "partition:  {}",
        PartitionStats::of(&revised.plan, &revised.assignment.service_of, mix.len())
    );
    for j in 0..mix.len() {
        println!(
            "  {}: demand {:.1} req/s, capacity {:.1} req/s",
            mix.service(j).name,
            demand.rate(j),
            revised.report.rho_service[j],
        );
    }
    println!("diff vs running plan:\n{}", revised.diff);
}
